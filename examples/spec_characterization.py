#!/usr/bin/env python3
"""Regenerate the paper's characterization data (Figures 2-7, 10, Table 3).

Usage::

    python examples/spec_characterization.py [--benchmarks ...] [--insts N]

Prints the machine-independent stream characterization (Figures 2/3) and
the scheduler/register-file characterizations measured on the base 4- and
8-wide machines (Figures 4, 6, 7, 10 and Table 3).
"""

import argparse

from repro.analysis import experiments, render
from repro.analysis.runner import ExperimentRunner
from repro.workloads import SPEC_BENCHMARKS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", default=",".join(SPEC_BENCHMARKS))
    parser.add_argument("--insts", type=int, default=10_000)
    parser.add_argument("--warmup", type=int, default=15_000)
    args = parser.parse_args()

    names = tuple(b for b in args.benchmarks.split(",") if b in SPEC_BENCHMARKS)
    runner = ExperimentRunner(insts=args.insts, warmup=args.warmup, benchmarks=names)

    for exp_id in ("table2", "fig2", "fig3", "fig4", "fig6", "table3", "fig7", "fig10"):
        result = experiments.ALL_EXPERIMENTS[exp_id](runner)
        print(render(result))
        print()


if __name__ == "__main__":
    main()
