#!/usr/bin/env python3
"""Define a custom synthetic workload profile and study it.

Usage::

    python examples/custom_workload.py

Builds a pointer-chasing, branchy workload that is NOT one of the SPEC
clones, then examines how the half-price techniques behave on it — the
kind of sensitivity study the library supports beyond the paper's own
benchmarks.
"""

from repro.pipeline import FOUR_WIDE, RegFileModel, SchedulerModel, simulate
from repro.workloads import BenchmarkProfile, SyntheticWorkload


def main() -> None:
    profile = BenchmarkProfile(
        name="linkedlist-heavy",
        frac_load=0.32,
        frac_store=0.06,
        frac_branch=0.14,
        frac_nop2=0.01,
        frac_alu_two_src_format=0.5,
        frac_demoted=0.3,
        dep_distance_p=0.35,
        frac_long_lived_src=0.35,
        branch_bias=0.75,
        frac_noisy_branches=0.25,
        working_set_bytes=8 << 20,
        frac_random_access=0.5,
        frac_pointer_chase=0.5,
        loop_trip_mean=6.0,
    )
    workload = SyntheticWorkload(profile, seed=7)
    print(f"workload: {profile.name} ({workload.static_size} static instructions)")

    base = simulate(workload, FOUR_WIDE, max_insts=8000, warmup=12000)
    print(f"\nbase 4-wide: IPC={base.ipc:.3f}  "
          f"load-miss replays={base.stats.load_miss_replays}  "
          f"branch MR={base.stats.branch_mispredict_rate:.1%}")
    print(f"  0-ready 2-source fraction: {base.stats.frac_two_pending:.1%}")
    print(f"  simultaneous wakeups: {base.stats.frac_simultaneous:.1%}")
    print(f"  needs-2-RF-reads: {base.stats.frac_two_rf_reads:.1%}")

    for label, config in {
        "seq wakeup": FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP),
        "tag elim": FOUR_WIDE.with_techniques(scheduler=SchedulerModel.TAG_ELIM),
        "seq RF": FOUR_WIDE.with_techniques(regfile=RegFileModel.SEQUENTIAL),
        "combined": FOUR_WIDE.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, regfile=RegFileModel.SEQUENTIAL
        ),
    }.items():
        result = simulate(workload, config, max_insts=8000, warmup=12000)
        print(f"  {label:12s} IPC={result.ipc:.3f} "
              f"({(result.ipc / base.ipc - 1):+.2%} vs base)")

    print("\nEven on a hostile, memory-bound workload the half-price "
          "techniques stay within a few percent of the base machine.")


if __name__ == "__main__":
    main()
