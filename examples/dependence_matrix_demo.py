#!/usr/bin/env python3
"""Demonstrate the Figure 5 argument: why tag elimination cannot use
selective recovery, while sequential wakeup can.

Usage::

    python examples/dependence_matrix_demo.py

Runs the dependence-matrix machinery (ancestor matrices carried on the
wakeup bus, kill-bus matching) alongside the simulator's reference
scoreboard cascade and reports the number of *mismatches* — operands the
cascade had to invalidate although their matrix never saw the dependence
broadcast.  Sequential wakeup delivers every broadcast (late, but
delivered), so its matrices agree everywhere; tag elimination's removed
comparator leaves its matrices blind.
"""

import dataclasses

from repro.pipeline import FOUR_WIDE, RecoveryModel, SchedulerModel
from repro.pipeline.processor import Processor
from repro.workloads import SyntheticWorkload, get_profile


def run(label: str, scheduler: SchedulerModel) -> None:
    config = dataclasses.replace(
        FOUR_WIDE.with_techniques(scheduler=scheduler, predictor_entries=1024)
        if scheduler is not SchedulerModel.BASE
        else FOUR_WIDE,
        recovery=RecoveryModel.SELECTIVE,
        use_dependence_matrix=True,
    )
    workload = SyntheticWorkload(get_profile("mcf"), seed=7)  # miss-heavy
    processor = Processor(workload, config)
    processor.run(max_insts=6000, warmup=8000)
    stats = processor.stats
    print(f"{label:20s} load-miss kills={stats.load_miss_replays:4d}  "
          f"replayed={stats.replayed:5d}  "
          f"matrix mismatches={processor.matrix_mismatches}")


def main() -> None:
    print(__doc__.split("Usage::")[0])
    run("base wakeup", SchedulerModel.BASE)
    run("sequential wakeup", SchedulerModel.SEQ_WAKEUP)
    run("tag elimination", SchedulerModel.TAG_ELIM)
    print("\nZero mismatches = the Figure 5 matrices alone could drive the")
    print("replay (selective recovery works).  Tag elimination's mismatches")
    print("are invalidations the matrices missed — it must fall back to")
    print("non-selective replay, exactly as Section 3.1 argues.")


if __name__ == "__main__":
    main()
