#!/usr/bin/env python3
"""Explore the circuit-level timing models (Sections 3.3 and 4).

Usage::

    python examples/circuit_timing.py

Reproduces the paper's two anchor claims and sweeps the analytic models
over window sizes and port counts to show the scaling trends the paper's
argument rests on.
"""

from repro.timing.regfile_delay import RegisterFileDelayModel
from repro.timing.technology import TECH_0_13_UM, TECH_0_18_UM, TECH_0_25_UM
from repro.timing.wakeup_delay import WakeupDelayModel


def main() -> None:
    wakeup = WakeupDelayModel()
    regfile = RegisterFileDelayModel()

    print("Paper anchors (Section 3.3 / Section 4)")
    conventional = wakeup.conventional_delay(64, 4)
    sequential = wakeup.sequential_wakeup_delay(64, 4)
    print(f"  wakeup, 4-wide 64-entry: {conventional:.0f} ps conventional, "
          f"{sequential:.0f} ps sequential "
          f"({(conventional - sequential) / sequential:.1%} speedup; paper: 24.6%)")
    full, reduced = regfile.paper_anchor()
    print(f"  register file, 160 entries: {full:.2f} ns @24 ports, "
          f"{reduced:.2f} ns @16 ports "
          f"({(full - reduced) / full:.1%} drop; paper: 20.5%)")

    print("\nWakeup delay vs. window size (ps, 0.18um)")
    print(f"  {'entries':>8} {'conventional':>13} {'sequential':>11} {'saved':>7}")
    for entries in (16, 32, 64, 128, 256):
        base = wakeup.conventional_delay(entries)
        fast = wakeup.sequential_wakeup_delay(entries)
        print(f"  {entries:>8} {base:>13.0f} {fast:>11.0f} {base - fast:>6.0f}")

    print("\nScheduler (wakeup+select) delay vs. machine width (ps, 64 entries)")
    for width in (2, 4, 8, 16):
        base = wakeup.scheduler_delay(64, 2.0, width)
        fast = wakeup.scheduler_delay(64, 1.0, width)
        print(f"  {width:>2}-wide: {base:>6.0f} -> {fast:>6.0f}")

    print("\nRegister file access time vs. read+write ports (ns, 160 entries)")
    for ports in (8, 12, 16, 20, 24, 32):
        time = regfile.access_time(160, ports)
        area = regfile.relative_area(160, ports) / regfile.relative_area(160, 8)
        print(f"  {ports:>2} ports: {time:5.2f} ns, {area:4.1f}x area (vs 8 ports)")

    print("\nTechnology scaling of the wakeup anchor (conventional 64-entry)")
    for tech in (TECH_0_25_UM, TECH_0_18_UM, TECH_0_13_UM):
        model = WakeupDelayModel(tech)
        print(f"  {tech.name}: {model.conventional_delay(64):.0f} ps")


if __name__ == "__main__":
    main()
