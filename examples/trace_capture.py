#!/usr/bin/env python3
"""Capture a workload to a trace file and replay it.

Usage::

    python examples/trace_capture.py [--benchmark gcc] [--ops 20000]

Shows the trace-file workflow: generate once, persist, replay across
machine variants with bit-identical inputs (useful for sharing inputs or
isolating the generator's cost from the simulator's).
"""

import argparse
import os
import tempfile
import time

from repro.pipeline import FOUR_WIDE, SchedulerModel, simulate
from repro.workloads import (
    SPEC_BENCHMARKS,
    SyntheticWorkload,
    get_profile,
    load_trace,
    save_trace,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="gcc", choices=SPEC_BENCHMARKS)
    parser.add_argument("--ops", type=int, default=20_000)
    args = parser.parse_args()

    workload = SyntheticWorkload(get_profile(args.benchmark), seed=42)
    path = os.path.join(tempfile.gettempdir(), f"{args.benchmark}.trace.gz")

    start = time.time()
    written = save_trace(workload, path, limit=args.ops, name=args.benchmark)
    size_kb = os.path.getsize(path) / 1024
    print(f"captured {written} ops to {path} ({size_kb:.0f} KiB gzip) "
          f"in {time.time() - start:.2f}s")

    feed = load_trace(path)
    budget = args.ops // 3
    base = simulate(feed, FOUR_WIDE, max_insts=budget, warmup=budget)
    seq = simulate(
        feed,
        FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP),
        max_insts=budget, warmup=budget,
    )
    print(f"replayed on base:        IPC={base.ipc:.3f}")
    print(f"replayed on seq wakeup:  IPC={seq.ipc:.3f} "
          f"({seq.ipc / base.ipc - 1:+.2%})")
    print("\nThe trace file pins the exact dynamic instruction stream, so")
    print("machine comparisons are input-identical by construction.")


if __name__ == "__main__":
    main()
