#!/usr/bin/env python3
"""Quickstart: assemble a kernel, run it functionally, then simulate timing.

Usage::

    python examples/quickstart.py [kernel] [--width {4,8}]

Shows the three layers of the library working together:

1. the HPRISC assembler + functional emulator execute a real program;
2. the cycle-level out-of-order processor replays the committed stream;
3. the half-price techniques are switched on for comparison.
"""

import argparse

from repro.isa.emulator import Emulator
from repro.pipeline import EIGHT_WIDE, FOUR_WIDE, SchedulerModel, RegFileModel, simulate
from repro.workloads import EmulatorFeed, KERNELS, kernel_program


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("kernel", nargs="?", default="dotproduct", choices=sorted(KERNELS))
    parser.add_argument("--width", type=int, default=4, choices=(4, 8))
    args = parser.parse_args()

    program = kernel_program(args.kernel)
    print(f"kernel: {args.kernel} ({len(program)} static instructions)")

    # Layer 1: architectural execution.
    emulator = Emulator(program)
    steps = emulator.run()
    print(f"functional emulation: {steps} instructions, r1 = {emulator.int_reg(1)}")

    # Layer 2: cycle-level timing on the base machine.
    base_config = FOUR_WIDE if args.width == 4 else EIGHT_WIDE
    feed = EmulatorFeed(program, name=args.kernel)
    base = simulate(feed, base_config, max_insts=10**6, warmup=0)
    stats = base.stats
    print(f"\nbase {base_config.name} machine:")
    print(f"  cycles={stats.cycles}  committed={stats.committed}  IPC={stats.ipc:.3f}")
    print(f"  branch mispredict rate: {stats.branch_mispredict_rate:.1%}")
    print(f"  load-miss replays: {stats.load_miss_replays}")
    print(f"  2-source instructions dispatched: {stats.two_source_dispatched}")

    # Layer 3: the half-price machine (both techniques).
    halfprice_config = base_config.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP, regfile=RegFileModel.SEQUENTIAL
    )
    halfprice = simulate(feed, halfprice_config, max_insts=10**6, warmup=0)
    delta = (base.ipc - halfprice.ipc) / base.ipc if base.ipc else 0.0
    print(f"\nhalf-price machine ({halfprice_config.name}):")
    print(f"  IPC={halfprice.ipc:.3f}  ({delta:+.2%} vs base)")
    print(f"  sequential register accesses: {halfprice.stats.sequential_rf_accesses}")
    print("\nThe half-price machine halves wakeup-bus load and register read")
    print("ports; the IPC cost above is what the paper argues is negligible.")


if __name__ == "__main__":
    main()
