#!/usr/bin/env python3
"""Compare every half-price technique against the base machine (Figs 14-16).

Usage::

    python examples/halfprice_comparison.py [--benchmarks bzip,mcf,...]
                                            [--width {4,8}] [--insts N]

Runs the synthetic SPEC CINT2000 clones on the base machine and on each
technique variant, printing normalized IPC — a condensed view of the
paper's Figures 14, 15 and 16.
"""

import argparse

from repro.analysis.report import render_bars
from repro.analysis.runner import ExperimentRunner
from repro.pipeline import EIGHT_WIDE, FOUR_WIDE, RegFileModel, SchedulerModel
from repro.workloads import SPEC_BENCHMARKS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", default="bzip,crafty,mcf,perl")
    parser.add_argument("--width", type=int, default=4, choices=(4, 8))
    parser.add_argument("--insts", type=int, default=10_000)
    parser.add_argument("--warmup", type=int, default=15_000)
    args = parser.parse_args()

    names = tuple(b for b in args.benchmarks.split(",") if b in SPEC_BENCHMARKS)
    runner = ExperimentRunner(insts=args.insts, warmup=args.warmup, benchmarks=names)
    base = FOUR_WIDE if args.width == 4 else EIGHT_WIDE

    variants = {
        "seq wakeup (pred)": base.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP),
        "seq wakeup (nopred)": base.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=None
        ),
        "tag elimination": base.with_techniques(scheduler=SchedulerModel.TAG_ELIM),
        "seq RF access": base.with_techniques(regfile=RegFileModel.SEQUENTIAL),
        "1 extra RF stage": base.with_techniques(regfile=RegFileModel.EXTRA_STAGE),
        "reg + crossbar": base.with_techniques(regfile=RegFileModel.CROSSBAR),
        "combined": base.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, regfile=RegFileModel.SEQUENTIAL
        ),
    }

    for name in names:
        base_ipc = runner.base(name, args.width).ipc
        print(f"\n{name}: base IPC {base_ipc:.3f} ({base.name})")
        bars = {
            label: runner.normalized_ipc(name, config)
            for label, config in variants.items()
        }
        print(render_bars("  normalized IPC (1.0 = base)", bars))

    print("\naverages across selected benchmarks:")
    for label, config in variants.items():
        values = [runner.normalized_ipc(name, config) for name in names]
        mean = sum(values) / len(values)
        print(f"  {label:22s} {mean:.4f}  ({mean - 1.0:+.2%})")


if __name__ == "__main__":
    main()
