#!/usr/bin/env python
"""CI smoke test for the job server (see docs/SERVING.md).

Boots ``repro serve`` as a real subprocess, submits a 20-job sweep with
overlapping specs, asserts that coalescing actually happened (coalesce-hit
counter > 0, simulations <= distinct fingerprints) and that batched
dispatch engaged (a ``serve.batch_size`` bucket > 1) with zero lost jobs,
then SIGTERMs the server and asserts a clean drain.  The final metrics
snapshot (queue depth, latency histogram, counters) lands in
``serve-smoke-artifacts/`` for CI to upload.

Run from the repository root:  PYTHONPATH=src python scripts/serve_smoke.py
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.serve.client import ServeClient  # noqa: E402

ARTIFACTS = Path(os.environ.get("SERVE_SMOKE_ARTIFACTS", "serve-smoke-artifacts"))


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    spool = tempfile.mkdtemp(prefix="serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--spool", spool, "--no-cache"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"serving on (http://\S+)", line)
        if not match:
            fail(f"server did not announce its address: {line!r}")
        base_url = match.group(1)
        print(f"server up at {base_url}")

        client = ServeClient(base_url, timeout=30)
        # 20 jobs over 5 distinct configs: 4-way overlap per fingerprint.
        sweep = [
            {"benchmark": benchmark, "seed": seed, "insts": 300, "warmup": 150}
            for benchmark in ("gzip", "gcc", "bzip", "mcf", "twolf")
            for _repeat in range(4)
            for seed in (11,)
        ]
        receipts = client.submit(sweep)
        if len(receipts) != 20:
            fail(f"expected 20 receipts, got {len(receipts)}")
        for receipt in receipts:
            document = client.wait(receipt["id"], timeout=300)
            if document["status"] != "done":
                fail(f"job {receipt['id']} ended {document['status']}")

        snapshot = client.metrics()
        ARTIFACTS.mkdir(parents=True, exist_ok=True)
        (ARTIFACTS / "server_metrics.json").write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        metrics = snapshot["metrics"]
        coalesce_hits = metrics.get("serve.coalesce_hits", 0)
        simulated = metrics.get("serve.simulated", 0)
        print(f"20 jobs done: {coalesce_hits} coalesce hits, {simulated} simulations")
        if coalesce_hits <= 0:
            fail("no coalesce hits on an overlapping sweep")
        if simulated > 5:
            fail(f"{simulated} simulations for 5 distinct configs")
        # Batched dispatch must engage (all 5 primaries land in one POST
        # before a worker wakes) and must not lose or fail a single job.
        batches = metrics.get("serve.batch_size", {})
        print(f"batch sizes drained: {batches}")
        if not any(int(size) > 1 for size in batches):
            fail(f"batched dispatch never engaged: serve.batch_size={batches}")
        if metrics.get("serve.failed", 0):
            fail(f"{metrics['serve.failed']} job(s) failed during the sweep")

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            fail("server did not exit within 60s of SIGTERM")
        tail = process.stdout.read()
        print(tail, end="")
        if code != 0:
            fail(f"server exited {code} on SIGTERM")
        if "drained:" not in tail:
            fail("server did not report a drain summary")
        print("PASS: serve smoke")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


if __name__ == "__main__":
    main()
