#!/usr/bin/env python
"""CI smoke test for the trace subsystem (see docs/TRACES.md).

End to end, from source, with no committed fixtures trusted blindly:

1. recaptures one committed corpus tracefile and asserts bit-identity
   with the checked-in file (capture determinism / corpus drift);
2. replays a committed trace through every installed cycle-loop backend
   and asserts the serialized statistics are byte-identical;
3. captures the uncommitted 1M-instruction scale trace
   (``vector_sum_1m``) and proves the acceptance bound: SimPoint-style
   sampled simulation touches <= 10% of the instructions while landing
   within 2% of the full-trace weighted IPC.

Artifacts (sampling report + summary JSON) land in
``trace-smoke-artifacts/`` for CI to upload.

Run from the repository root:  PYTHONPATH=src python scripts/trace_smoke.py
"""

import json
import os
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.analysis.cache import serialize_result  # noqa: E402
from repro.fastsim import apply_backend, available_backends, make_processor  # noqa: E402
from repro.pipeline.config import FOUR_WIDE  # noqa: E402
from repro.trace import (  # noqa: E402
    CORPUS_BY_NAME,
    TraceFeed,
    capture_corpus_entry,
    corpus_path,
    simulate_sampled,
)

ARTIFACTS = Path(os.environ.get("TRACE_SMOKE_ARTIFACTS", "trace-smoke-artifacts"))

#: The committed trace used for the drift and parity legs.
PARITY_TRACE = "sieve_105k"
#: The acceptance-bound trace (not committed; captured here from source).
SCALE_TRACE = "vector_sum_1m"
MAX_COVERAGE = 0.10
MAX_ERROR = 0.02


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    summary: dict = {"backends": list(available_backends())}
    print(f"installed backends: {', '.join(summary['backends'])}")
    scratch = Path(tempfile.mkdtemp(prefix="trace-smoke-"))

    # -- 1. capture determinism vs the committed corpus file ------------
    committed = corpus_path(PARITY_TRACE)
    if not committed.is_file():
        fail(f"committed corpus file missing: {committed}")
    fresh = scratch / committed.name
    capture_corpus_entry(CORPUS_BY_NAME[PARITY_TRACE], fresh)
    if fresh.read_bytes() != committed.read_bytes():
        fail(f"{PARITY_TRACE}: fresh capture differs from the committed file")
    print(f"capture determinism: {PARITY_TRACE} matches the committed bytes")

    # -- 2. cross-backend byte parity on a full trace replay ------------
    feed = TraceFeed(committed)
    blobs = {}
    for backend in summary["backends"]:
        config = apply_backend(FOUR_WIDE, backend)
        processor = make_processor(feed, config, backend=backend)
        result = processor.run(max_insts=len(feed.ops))
        blobs[backend] = json.dumps(serialize_result(result), sort_keys=True)
        print(f"full replay [{backend}]: IPC {result.ipc:.4f}")
    if len(set(blobs.values())) != 1:
        fail("serialized stats differ across backends")
    summary["parity"] = {"trace": PARITY_TRACE, "insts": len(feed.ops)}
    print(f"cross-backend parity: {len(blobs)} backend(s) byte-identical")

    # -- 3. the acceptance bound at 1M-instruction scale ----------------
    backend = "native" if "native" in summary["backends"] else summary["backends"][-1]
    config = apply_backend(FOUR_WIDE, backend)
    scale_path = scratch / f"{SCALE_TRACE}.hpt"
    header = capture_corpus_entry(CORPUS_BY_NAME[SCALE_TRACE], scale_path)
    if header["insts"] < 1_000_000:
        fail(f"{SCALE_TRACE} is only {header['insts']} instructions")
    scale = TraceFeed(scale_path)
    full = make_processor(scale, config, backend=backend).run(max_insts=len(scale.ops))
    report = simulate_sampled(scale, config)
    error = abs(report["weighted_ipc"] - full.ipc) / full.ipc
    summary["scale"] = {
        "trace": SCALE_TRACE,
        "backend": backend,
        "insts": header["insts"],
        "full_ipc": full.ipc,
        "weighted_ipc": report["weighted_ipc"],
        "error": error,
        "coverage": report["coverage"],
    }
    print(
        f"sampled [{backend}]: weighted IPC {report['weighted_ipc']:.4f} vs "
        f"full {full.ipc:.4f}  (err {100 * error:.2f}%, "
        f"coverage {report['coverage']:.3f})"
    )

    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    (ARTIFACTS / "sampling-report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    (ARTIFACTS / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    if report["coverage"] > MAX_COVERAGE:
        fail(f"coverage {report['coverage']:.3f} > {MAX_COVERAGE}")
    if error > MAX_ERROR:
        fail(f"sampled IPC error {100 * error:.2f}% > {100 * MAX_ERROR}%")
    print("OK: trace smoke passed")


if __name__ == "__main__":
    main()
