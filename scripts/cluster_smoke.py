#!/usr/bin/env python
"""CI soak test for the cluster serving tier (docs/SERVING.md, Cluster mode).

Boots one router and three workers as real subprocesses over a shared
result store, drives a 1000-job sweep with heavy fingerprint overlap,
SIGKILLs one worker mid-run, and asserts the cluster's core guarantees:

* zero lost jobs — every one of the 1000 submissions reaches ``done``;
* bounded work — the store holds exactly one blob per unique
  fingerprint, and the surviving workers' simulation counters sum to at
  most the unique-fingerprint count (the shared store turns the dead
  worker's finished work into hits, never recomputes of published blobs
  into duplicates);
* byte parity — every unique result served through the cluster is
  byte-identical to what offline ``repro export-stats`` writes for the
  same inputs.

A metrics snapshot (router queue depth, latency quantiles, steal and
re-dispatch counters, per-worker state) is written to
``cluster-smoke-artifacts/`` for CI to upload.

Run from the repository root:  PYTHONPATH=src python scripts/cluster_smoke.py
"""

import json
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.analysis.cache import ResultCache  # noqa: E402
from repro.analysis.runner import ExperimentRunner  # noqa: E402
from repro.analysis.store import QUARANTINE_DIR  # noqa: E402
from repro.obs.export import write_stats_json  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.protocol import parse_spec  # noqa: E402

WORKERS = 3
JOBS = 1000
BATCH = 50
RUN = {"insts": 300, "warmup": 150}
BENCHMARKS = ("gzip", "gcc", "bzip", "mcf", "twolf")
SEEDS = (11, 12, 13, 14, 15)
ARTIFACTS = Path(os.environ.get("CLUSTER_SMOKE_ARTIFACTS", "cluster-smoke-artifacts"))

_processes: list[subprocess.Popen] = []


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def boot(args: list[str], announce_re: str, env: dict) -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    _processes.append(process)
    line = process.stdout.readline()
    match = re.search(announce_re, line)
    if not match:
        fail(f"no announce line matching {announce_re!r}: {line!r}")
    return process, match.group(1)


def main() -> None:
    scratch = Path(tempfile.mkdtemp(prefix="cluster-smoke-"))
    store = scratch / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    # Shrink the claim-stale horizon so the SIGKILLed worker's abandoned
    # store claims are taken over in seconds, not minutes.
    env["REPRO_CLAIM_STALE_S"] = "5"

    workers = []
    for index in range(WORKERS):
        process, url = boot(
            ["--worker", "--port", "0", "--workers", "2",
             "--name", f"w{index}", "--store", str(store),
             "--spool", str(scratch / f"spool-w{index}")],
            r"worker \[w\d\] on (http://\S+)", env,
        )
        workers.append((process, url))
        print(f"worker w{index} up at {url}")

    router_process, router_url = boot(
        ["--router", "--port", "0", "--spool", str(scratch / "router-spool"),
         *(part for _p, url in workers for part in ("--worker-url", url))],
        r"routing on (http://\S+)", env,
    )
    print(f"router up at {router_url}")

    client = ServeClient(router_url, timeout=60)

    # 1000 jobs over 25 unique fingerprints (5 benchmarks x 5 seeds),
    # shuffled so overlap arrives interleaved, like a real sweep fanout.
    unique = [
        {"benchmark": benchmark, "seed": seed, **RUN}
        for benchmark in BENCHMARKS
        for seed in SEEDS
    ]
    sweep = [dict(spec) for spec in unique * (JOBS // len(unique))]
    random.Random(7).shuffle(sweep)

    receipts = []
    killed = False
    started = time.monotonic()
    for offset in range(0, len(sweep), BATCH):
        receipts.extend(client.submit(sweep[offset:offset + BATCH]))
        if not killed and offset >= len(sweep) // 2:
            # Mid-run, with work in flight: hard-kill one worker.  Its
            # jobs must re-dispatch to the survivors with no losses.
            victim, victim_url = workers[0]
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            killed = True
            print(f"SIGKILLed worker w0 ({victim_url}) mid-run")
    if len(receipts) != JOBS:
        fail(f"expected {JOBS} receipts, got {len(receipts)}")

    statuses = {}
    for receipt in receipts:
        document = client.wait(receipt["id"], timeout=600, poll=2.0)
        statuses[receipt["id"]] = document["status"]
    elapsed = time.monotonic() - started

    # Zero lost jobs.
    if len(statuses) != JOBS:
        fail(f"{JOBS - len(statuses)} job ids were dropped")
    not_done = [job_id for job_id, status in statuses.items() if status != "done"]
    if not_done:
        fail(f"{len(not_done)} jobs did not finish: {not_done[:5]}")

    fingerprints = {receipt["fingerprint"] for receipt in receipts}
    if len(fingerprints) != len(unique):
        fail(f"expected {len(unique)} unique fingerprints, saw {len(fingerprints)}")

    # Bounded work: one published blob per fingerprint, and the surviving
    # workers simulated at most once per fingerprint.
    blobs = [
        blob for blob in store.rglob("*.json") if QUARANTINE_DIR not in blob.parts
    ]
    if len(blobs) != len(fingerprints):
        fail(f"store holds {len(blobs)} blobs for {len(fingerprints)} fingerprints")
    survivor_simulated = 0
    for _process, url in workers[1:]:
        metrics = ServeClient(url, timeout=30).metrics()["metrics"]
        survivor_simulated += metrics.get("serve.simulated", 0)
    if survivor_simulated > len(fingerprints):
        fail(
            f"survivors simulated {survivor_simulated} times for "
            f"{len(fingerprints)} unique fingerprints"
        )
    print(
        f"{JOBS} jobs done in {elapsed:.1f}s: {len(fingerprints)} unique "
        f"fingerprints, {len(blobs)} store blobs, "
        f"{survivor_simulated} survivor simulations"
    )

    # Byte parity: every unique result == the offline export-stats bytes.
    offline = ExperimentRunner(
        insts=RUN["insts"], warmup=RUN["warmup"],
        cache=ResultCache(scratch / "offline-cache"),
    )
    by_fingerprint = {}
    for index, receipt in enumerate(receipts):
        by_fingerprint.setdefault(receipt["fingerprint"], (receipt["id"], sweep[index]))
    for fingerprint, (job_id, wire) in sorted(by_fingerprint.items()):
        spec = parse_spec(dict(wire))
        document = client.job(job_id)["result"]["stats"]
        served = write_stats_json(document, scratch / "served")
        direct = offline.export_run(
            spec.benchmark, spec.config(), scratch / "offline", seed=spec.seed
        )
        if served.read_bytes() != direct.read_bytes():
            fail(f"served stats for {spec.benchmark}/seed={spec.seed} differ from offline export")
    print(f"byte parity verified for all {len(by_fingerprint)} unique results")

    # Snapshot router metrics for the CI artifact before draining.
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    router_metrics = client.metrics()
    (ARTIFACTS / "router_metrics.json").write_text(
        json.dumps(router_metrics, indent=2, sort_keys=True) + "\n"
    )
    workers_view = client.request("GET", "/v1/workers")
    (ARTIFACTS / "workers.json").write_text(
        json.dumps(workers_view, indent=2, sort_keys=True) + "\n"
    )
    counters = router_metrics["metrics"]
    print(
        "router: "
        f"dispatches={counters.get('router.dispatches', 0)} "
        f"redispatches={counters.get('router.redispatches', 0)} "
        f"steals={counters.get('router.steals', 0)} "
        f"evictions={counters.get('router.worker_evictions', 0)} "
        f"coalesce_hits={counters.get('router.coalesce_hits', 0)}"
    )
    if counters.get("router.worker_evictions", 0) < 1:
        fail("the SIGKILLed worker was never evicted from the ring")
    # Each submitted batch holds at most len(unique) distinct fingerprints,
    # so at least BATCH - len(unique) jobs per batch must coalesce (more
    # coalesce when a primary from an earlier batch is still pending).
    floor = (JOBS // BATCH) * (BATCH - len(unique))
    if counters.get("router.coalesce_hits", 0) < floor:
        fail("cluster-wide coalescing fell short of the overlap in the sweep")

    # Graceful drain of the whole cluster: router first, then survivors.
    for process, label in [(router_process, "router")] + [
        (process, url) for process, url in workers[1:]
    ]:
        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            fail(f"{label} did not exit within 60s of SIGTERM")
        if code != 0:
            fail(f"{label} exited {code} on SIGTERM")
    print("PASS: cluster smoke")


if __name__ == "__main__":
    try:
        main()
    finally:
        for process in _processes:
            if process.poll() is None:
                process.kill()
                process.wait()
