#!/usr/bin/env bash
# Regenerate the committed CI regression-gate baseline.
#
# Run this after an INTENTIONAL timing-model change, eyeball the diff of
# results/ci_baseline/, and commit it together with the model change.  The
# arguments must stay in sync with GATE_BENCHMARKS / GATE_ARGS in
# .github/workflows/ci.yml — the gate job replays exactly this command and
# scorecards the result against the committed tree.
set -euo pipefail
cd "$(dirname "$0")/.."

rm -rf results/ci_baseline
PYTHONPATH=src python -m repro export-stats gzip gcc \
  --insts 2000 --warmup 1000 --seed 7 --no-cache --jobs 1 \
  --out results/ci_baseline

echo "Baseline regenerated:"
ls -l results/ci_baseline
