#!/usr/bin/env bash
# Regenerate the committed CI regression-gate baseline, one subtree per
# cycle-loop backend:
#
#   results/ci_baseline/python/   reference Processor
#   results/ci_baseline/vector/   repro.fastsim vector backend (needs numpy)
#
# The two trees differ only in the embedded config.backend field and the
# fingerprint — every simulated counter is bit-identical (pinned by the
# cross-backend fuzz gate).
#
# Run this after an INTENTIONAL timing-model change, eyeball the diff of
# results/ci_baseline/, and commit it together with the model change.  The
# arguments must stay in sync with GATE_BENCHMARKS / GATE_ARGS in
# .github/workflows/ci.yml — the gate job replays exactly this command and
# scorecards the result against the committed tree.  The sync check below
# fails fast if the two ever drift apart.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHMARKS="gzip gcc"
ARGS="--insts 2000 --warmup 1000 --seed 7 --no-cache"

WORKFLOW=.github/workflows/ci.yml
ci_benchmarks=$(sed -n 's/^  GATE_BENCHMARKS: //p' "$WORKFLOW")
ci_args=$(sed -n 's/^  GATE_ARGS: //p' "$WORKFLOW")
if [[ "$ci_benchmarks" != "$BENCHMARKS" || "$ci_args" != "$ARGS" ]]; then
  echo "error: $WORKFLOW and $0 disagree on the gate command:" >&2
  echo "  ci.yml:  GATE_BENCHMARKS='$ci_benchmarks' GATE_ARGS='$ci_args'" >&2
  echo "  script:  GATE_BENCHMARKS='$BENCHMARKS' GATE_ARGS='$ARGS'" >&2
  echo "Update both together, then rerun." >&2
  exit 1
fi

rm -rf results/ci_baseline
for backend in python vector; do
  PYTHONPATH=src REPRO_BACKEND=$backend python -m repro export-stats $BENCHMARKS \
    $ARGS --jobs 1 \
    --out "results/ci_baseline/$backend"
done

echo "Baseline regenerated:"
ls -lR results/ci_baseline
