#!/usr/bin/env bash
# Regenerate the committed CI regression-gate baseline, one subtree per
# cycle-loop backend:
#
#   results/ci_baseline/python/   reference Processor
#   results/ci_baseline/vector/   repro.fastsim vector backend (needs numpy)
#   results/ci_baseline/native/   compiled C-extension backend (needs a
#                                 built repro.fastsim._native artifact)
#
# The trees differ only in the embedded config.backend field and the
# fingerprint — every simulated counter is bit-identical (pinned by the
# cross-backend fuzz gate).
#
# A backend whose prerequisite is missing is SKIPPED WITH A LOUD WARNING
# and listed in the summary below — a partial regeneration must never
# look complete.  CI's regression gate covers all three subtrees, so a
# baseline refresh intended for CI needs all three present (install
# numpy via `pip install -e .[fast]` and build the extension via
# `pip install -e .[native]` first).
#
# Run this after an INTENTIONAL timing-model change, eyeball the diff of
# results/ci_baseline/, and commit it together with the model change.  The
# arguments must stay in sync with GATE_BENCHMARKS / GATE_ARGS in
# .github/workflows/ci.yml — the gate job replays exactly this command and
# scorecards the result against the committed tree.  The sync check below
# fails fast if the two ever drift apart.
#
# `make_ci_baseline.sh --check` regenerates NOTHING: it verifies that the
# committed baseline is one this checkout can actually reproduce — every
# backend subtree present with the expected per-benchmark exports, and no
# subtree for a backend available_backends() cannot produce here.  CI's
# regression gate runs it before exporting, so a baseline committed from a
# machine with a stale or exotic toolchain fails loudly instead of gating
# against files nothing can regenerate.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
elif [[ $# -gt 0 ]]; then
  echo "usage: $0 [--check]" >&2
  exit 2
fi

BENCHMARKS="gzip gcc"
ARGS="--insts 2000 --warmup 1000 --seed 7 --no-cache"

WORKFLOW=.github/workflows/ci.yml
ci_benchmarks=$(sed -n 's/^  GATE_BENCHMARKS: //p' "$WORKFLOW")
ci_args=$(sed -n 's/^  GATE_ARGS: //p' "$WORKFLOW")
if [[ "$ci_benchmarks" != "$BENCHMARKS" || "$ci_args" != "$ARGS" ]]; then
  echo "error: $WORKFLOW and $0 disagree on the gate command:" >&2
  echo "  ci.yml:  GATE_BENCHMARKS='$ci_benchmarks' GATE_ARGS='$ci_args'" >&2
  echo "  script:  GATE_BENCHMARKS='$BENCHMARKS' GATE_ARGS='$ARGS'" >&2
  echo "Update both together, then rerun." >&2
  exit 1
fi

backend_ready() {
  case "$1" in
    python) return 0 ;;
    vector) PYTHONPATH=src python -c 'import numpy' 2>/dev/null ;;
    native) PYTHONPATH=src python -c \
      'import sys; from repro.fastsim import native_available; sys.exit(0 if native_available() else 1)' ;;
  esac
}

if ((CHECK)); then
  producible=$(PYTHONPATH=src python -c \
    'from repro.fastsim import available_backends; print(" ".join(available_backends()))')
  status=0
  # Every committed subtree must name a backend this checkout can run.
  for tree in results/ci_baseline/*/; do
    [[ -d "$tree" ]] || { echo "error: no committed baseline subtrees under results/ci_baseline/" >&2; exit 1; }
    backend=$(basename "$tree")
    if [[ " $producible " != *" $backend "* ]]; then
      echo "error: committed baseline '$backend' is not producible here (available: $producible)" >&2
      status=1
    fi
  done
  # Every gated backend+benchmark must have its export committed.
  for backend in python vector native; do
    if ! backend_ready "$backend"; then
      echo "note: backend '$backend' not installed here; skipping its presence check" >&2
      continue
    fi
    for benchmark in $BENCHMARKS; do
      count=$(find "results/ci_baseline/$backend" -name "${benchmark}__*.stats.json" 2>/dev/null | wc -l)
      if ((count == 0)); then
        echo "error: results/ci_baseline/$backend/ has no export for benchmark '$benchmark'" >&2
        status=1
      fi
    done
  done
  if ((status)); then
    echo "Baseline check FAILED — regenerate with scripts/make_ci_baseline.sh" >&2
    exit 1
  fi
  echo "Baseline check OK: committed subtrees match producible backends ($producible)"
  exit 0
fi

rm -rf results/ci_baseline
baselined=()
skipped=()
for backend in python vector native; do
  if ! backend_ready "$backend"; then
    skipped+=("$backend")
    case "$backend" in
      vector) hint="pip install -e .[fast]" ;;
      native) hint="pip install -e .[native]  (needs a C compiler)" ;;
      *) hint="" ;;
    esac
    echo "WARNING: skipping backend '$backend' — not installed here ($hint)" >&2
    continue
  fi
  PYTHONPATH=src REPRO_BACKEND=$backend python -m repro export-stats $BENCHMARKS \
    $ARGS --jobs 1 \
    --out "results/ci_baseline/$backend"
  baselined+=("$backend")
done

echo "Baseline regenerated."
echo "  baselined: ${baselined[*]}"
if ((${#skipped[@]})); then
  echo "  SKIPPED:   ${skipped[*]}  (CI gates all three backends;"
  echo "             do not commit a partial baseline for a CI refresh)"
fi
ls -lR results/ci_baseline
