#!/usr/bin/env python
"""(Re)generate the committed trace corpus under workloads/traces/.

Capture is byte-deterministic (deterministic emulator, no timestamps in
the tracefile format), so running this script on a clean checkout must
reproduce the committed files bit-for-bit; with ``--check`` it verifies
exactly that without touching the committed files and exits non-zero on
any drift.  Entries marked ``committed=False`` (the 1M-instruction scale
trace) are skipped unless ``--all`` is given.

Run from the repository root:  PYTHONPATH=src python scripts/make_corpus.py
"""

import argparse
import hashlib
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.trace import CORPUS, capture_corpus_entry, corpus_path  # noqa: E402


def file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify committed files match a fresh capture instead of writing",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="include entries not committed to the repo (the 1M-inst trace)",
    )
    args = parser.parse_args()

    failures = 0
    for entry in CORPUS:
        if not entry.committed and not args.all:
            continue
        target = corpus_path(entry)
        if args.check:
            if not target.is_file():
                print(f"MISSING  {entry.name}: {target}")
                failures += 1
                continue
            with tempfile.TemporaryDirectory() as scratch:
                fresh = Path(scratch) / target.name
                header = capture_corpus_entry(entry, fresh)
                if file_digest(fresh) != file_digest(target):
                    print(f"DRIFT    {entry.name}: committed file != fresh capture")
                    failures += 1
                else:
                    print(f"ok       {entry.name}  insts={header['insts']}")
        else:
            header = capture_corpus_entry(entry, target)
            print(
                f"captured {entry.name}  insts={header['insts']}  "
                f"sha={header['trace_sha256'][:12]}  -> {target}"
            )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
