"""Build shim: pure-python package + an *optional* compiled cycle loop.

The ``repro.fastsim._native`` C extension is a best-effort build: on
machines without a C compiler (or with a broken toolchain) the package
must still install and run on the python/vector backends, so any build
failure downgrades the extension to "absent" instead of failing the
install.  ``repro.fastsim.native_available()`` reports what happened and
the backend selector raises a one-line actionable error if ``native`` is
requested anyway.

Set ``REPRO_NATIVE_REQUIRE=1`` to turn a failed extension build back
into a hard error — CI's build-native job uses this so a toolchain
regression cannot silently ship an interpreter-only artifact.
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

_REQUIRE = os.environ.get("REPRO_NATIVE_REQUIRE") == "1"


class OptionalBuildExt(build_ext):
    """build_ext that downgrades compiler failures to a loud warning."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 - any toolchain failure
            if _REQUIRE:
                raise
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # noqa: BLE001 - any toolchain failure
            if _REQUIRE:
                raise
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(
            "WARNING: repro.fastsim._native failed to build "
            f"({type(exc).__name__}: {exc}); the 'native' backend will be "
            "unavailable and runs fall back to vector/python. "
            "Set REPRO_NATIVE_REQUIRE=1 to make this fatal."
        )


setup(
    ext_modules=[
        Extension(
            "repro.fastsim._native",
            sources=["src/repro/fastsim/_native.c"],
            optional=not _REQUIRE,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
