"""Figure 6: wakeup slack between the two operand wakeups.

Paper: the vast majority of 2-pending-source instructions have at least
one cycle of slack between their two wakeups; simultaneous wakeups (the
only case sequential wakeup always penalizes) are under 3% of them.
"""

import pytest

from repro.analysis import experiments


def test_fig6_wakeup_slack(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig6(runner), rounds=1, iterations=1
    )
    publish(result)
    simultaneous = [row[1] for row in result.rows]
    # Shape: simultaneous wakeups are the uncommon case everywhere.
    assert sum(simultaneous) / len(simultaneous) <= 25.0
    for row in result.rows:
        assert row[1] + row[2] + row[3] + row[4] == pytest.approx(100.0, abs=0.5)
