"""Figure 16: combined sequential wakeup + sequential register access.

Paper: 2.2% average IPC degradation; worst case 4.8% (bzip, 8-wide).  The
combination is slightly worse than the sum of the parts because wakeup
penalties force sequential register accesses (only nowL survives).
"""

import pytest

from repro.analysis import experiments


@pytest.mark.parametrize("width", [4, 8])
def test_fig16_combined(benchmark, runner, publish, width):
    result = benchmark.pedantic(
        lambda: experiments.fig16(runner, width=width), rounds=1, iterations=1
    )
    publish(result)
    average = result.row_for("average")[1]
    assert average >= 0.90, "combined degradation must stay single-digit"
    for row in result.rows[:-1]:
        assert row[1] >= 0.85, f"{row[0]}: combined loss too large"
