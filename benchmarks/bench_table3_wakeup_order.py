"""Table 3: wakeup-order stability and last-arriving operand side.

Paper: around 90% of the time a static instruction repeats the wakeup
order of its previous execution, while the left/right split of the
last-arriving operand is roughly balanced with per-benchmark outliers
(vortex 28.5% left, perl 72.9% left).
"""

from repro.analysis import experiments


def test_table3_wakeup_order(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.table3(runner), rounds=1, iterations=1
    )
    publish(result)
    same_fracs = [row[1] for row in result.rows]
    # Shape: order stability is high on average (the predictability the
    # last-arriving predictor exploits).
    assert sum(same_fracs) / len(same_fracs) >= 60.0
    for row in result.rows:
        assert 0.0 <= row[3] <= 100.0
