"""Figure 15: register file configurations (normalized IPC).

Paper: sequential register access loses 1.1%/0.7% on average (4/8-wide,
worst 2.2% in eon); a conventional file with one extra pipeline stage and
a half-ported file behind a global crossbar are the compared alternatives.
"""

import pytest

from repro.analysis import experiments


@pytest.mark.parametrize("width", [4, 8])
def test_fig15_register_file(benchmark, runner, publish, width):
    result = benchmark.pedantic(
        lambda: experiments.fig15(runner, width=width), rounds=1, iterations=1
    )
    publish(result)
    average = result.row_for("average")
    seq_rf, extra_stage, crossbar = average[1], average[2], average[3]
    assert seq_rf >= 0.95, "sequential register access must be near-base"
    assert crossbar >= 0.95, "crossbar arbitration rarely binds"
    assert extra_stage >= 0.90, "extra stage costs only pipeline depth"
