"""Circuit timing claims: wakeup 466->374 ps, register file 1.71->1.36 ns."""

import pytest

from repro.analysis import experiments


def test_timing_claims(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.timing_claims(runner), rounds=5, iterations=1
    )
    publish(result)
    for row in result.rows:
        quantity, measured, paper = row
        assert measured == pytest.approx(paper, rel=0.01), quantity
