"""Figure 14: sequential wakeup vs. tag elimination (normalized IPC).

Paper: sequential wakeup loses 0.4%/0.6% on average (4/8-wide) with a
1k-entry bimodal predictor, 1.6%/2.6% without one; the tag elimination
baseline is worse in most benchmarks (worst case 10.6%, crafty 8-wide)
because its mispredictions trigger non-selective replay.
"""

import pytest

from repro.analysis import experiments


@pytest.mark.parametrize("width", [4, 8])
def test_fig14_sequential_wakeup(benchmark, runner, publish, width):
    result = benchmark.pedantic(
        lambda: experiments.fig14(runner, width=width), rounds=1, iterations=1
    )
    publish(result)
    average = result.row_for("average")
    seq_wakeup, tag_elim, nopred = average[1], average[2], average[3]
    # Shape checks from the paper's conclusions:
    assert seq_wakeup >= 0.95, "sequential wakeup must be near-base"
    assert nopred >= 0.90, "even predictor-less placement stays close"
    assert seq_wakeup >= nopred - 0.02, "the predictor should not hurt"
    assert seq_wakeup >= tag_elim - 0.01, (
        "sequential wakeup must not lose to tag elimination on average"
    )
