"""Figure 4: ready operands of 2-source instructions at scheduler insert.

Paper: only 4~16% of 2-source instructions have two unresolved operands at
insert time — the bulk of the over-designed dual comparators sit idle.
"""

import pytest

from repro.analysis import experiments


def test_fig4_ready_at_insert(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig4(runner), rounds=1, iterations=1
    )
    publish(result)
    for row in result.rows:
        name, zero, one, two, zero8 = row
        assert zero + one + two == pytest.approx(100.0, abs=0.5)
        # The paper's core observation: 0-ready is the uncommon case.
        assert zero <= 40.0, f"{name}: 0-ready fraction {zero}% too dominant"
