"""Table 1: machine configurations (construction + validation cost)."""

from repro.analysis import experiments


def test_table1_machine_configurations(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.table1(runner), rounds=3, iterations=1
    )
    publish(result)
    assert result.row_for("RUU entries")[1:] == [64, 128]
    assert result.row_for("memory ports")[1:] == [2, 4]
