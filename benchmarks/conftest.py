"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Simulation
results are memoized in a session-wide runner so e.g. the base-machine runs
feeding Figures 4/6/10/14/15/16 happen exactly once.  Rendered tables are
printed (visible with ``pytest -s``) and appended to
``results/experiments.txt``.

Environment knobs (see repro.analysis.runner): REPRO_INSTS, REPRO_WARMUP,
REPRO_SEED, REPRO_BENCHMARKS.
"""

import pathlib

import pytest

from repro.analysis.report import ExperimentResult, render
from repro.analysis.runner import default_runner

_RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner():
    return default_runner()


@pytest.fixture(scope="session")
def report_sink():
    _RESULTS_DIR.mkdir(exist_ok=True)
    path = _RESULTS_DIR / "experiments.txt"
    handle = path.open("a")
    yield handle
    handle.close()


@pytest.fixture
def publish(report_sink):
    """Print a rendered experiment and persist it under results/."""

    def _publish(result: ExperimentResult) -> ExperimentResult:
        text = render(result)
        print()
        print(text)
        report_sink.write(text + "\n\n")
        report_sink.flush()
        return result

    return _publish
