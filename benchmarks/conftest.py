"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Simulation
results are memoized in a session-wide runner so e.g. the base-machine runs
feeding Figures 4/6/10/14/15/16 happen exactly once.  Rendered tables are
printed (visible with ``pytest -s``) and appended to
``results/experiments.txt``.

At session start the runner bulk-prefetches every base-machine run through
the parallel engine (and the persistent on-disk cache under
``results/cache/``), so a repeat session serves them without simulating;
see docs/PERFORMANCE.md.

Environment knobs (see repro.analysis.runner): REPRO_INSTS, REPRO_WARMUP,
REPRO_SEED, REPRO_BENCHMARKS, REPRO_JOBS, REPRO_CACHE, REPRO_CACHE_DIR.
"""

import pathlib

import pytest

from repro.analysis.report import ExperimentResult, render
from repro.analysis.runner import default_runner

_RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner():
    shared = default_runner()
    # Resolve the base-machine runs every figure shares up front: misses fan
    # out over the parallel engine, and everything lands in the disk cache.
    shared.prefetch_base()
    return shared


@pytest.fixture(scope="session")
def report_sink():
    _RESULTS_DIR.mkdir(exist_ok=True)
    path = _RESULTS_DIR / "experiments.txt"
    handle = path.open("a")
    yield handle
    handle.close()


@pytest.fixture
def publish(report_sink):
    """Print a rendered experiment and persist it under results/."""

    def _publish(result: ExperimentResult) -> ExperimentResult:
        text = render(result)
        print()
        print(text)
        report_sink.write(text + "\n\n")
        report_sink.flush()
        return result

    return _publish
