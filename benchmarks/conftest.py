"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Simulation
results are memoized in a session-wide runner so e.g. the base-machine runs
feeding Figures 4/6/10/14/15/16 happen exactly once.  Rendered tables are
printed (visible with ``pytest -s``) and appended to
``results/experiments.txt``.

At session start the runner bulk-prefetches every base-machine run through
the parallel engine (and the persistent on-disk cache under
``results/cache/``), so a repeat session serves them without simulating;
see docs/PERFORMANCE.md.

At session end the base-machine runs are exported as schema-versioned
stats JSON under ``results/stats/`` (see docs/OBSERVABILITY.md) — CI
uploads that tree as a workflow artifact, and ``repro report --baseline``
can diff it against a committed baseline.  Set ``REPRO_STATS_DIR`` to
redirect, or ``REPRO_STATS_EXPORT=0`` to skip.

Environment knobs (see repro.analysis.runner): REPRO_INSTS, REPRO_WARMUP,
REPRO_SEED, REPRO_BENCHMARKS, REPRO_JOBS, REPRO_CACHE, REPRO_CACHE_DIR,
REPRO_STATS_DIR, REPRO_STATS_EXPORT.
"""

import os
import pathlib

import pytest

from repro.analysis.report import ExperimentResult, render
from repro.analysis.runner import default_runner
from repro.pipeline.config import EIGHT_WIDE, FOUR_WIDE

_RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def _stats_export_enabled() -> bool:
    return os.environ.get("REPRO_STATS_EXPORT", "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


@pytest.fixture(scope="session")
def runner():
    shared = default_runner()
    # Resolve the base-machine runs every figure shares up front: misses fan
    # out over the parallel engine, and everything lands in the disk cache.
    shared.prefetch_base()
    yield shared
    if _stats_export_enabled():
        # Manifest the base runs the session leaned on: one stats JSON per
        # (benchmark, width, seed), served straight from the memo/disk
        # layers — no extra simulation.
        stats_dir = os.environ.get("REPRO_STATS_DIR") or (_RESULTS_DIR / "stats")
        for benchmark in shared.benchmarks:
            for config in (FOUR_WIDE, EIGHT_WIDE):
                for seed in shared.seeds:
                    shared.export_run(benchmark, config, stats_dir, seed=seed)


@pytest.fixture(scope="session")
def report_sink():
    _RESULTS_DIR.mkdir(exist_ok=True)
    path = _RESULTS_DIR / "experiments.txt"
    handle = path.open("a")
    yield handle
    handle.close()


@pytest.fixture
def publish(report_sink):
    """Print a rendered experiment and persist it under results/."""

    def _publish(result: ExperimentResult) -> ExperimentResult:
        text = render(result)
        print()
        print(text)
        report_sink.write(text + "\n\n")
        report_sink.flush()
        return result

    return _publish
