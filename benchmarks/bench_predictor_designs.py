"""Section 3.2 predictor design comparison: bimodal vs. sophisticated."""

from repro.analysis import experiments


def test_predictor_design_comparison(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.predictor_designs(runner), rounds=1, iterations=1
    )
    publish(result)
    for row in result.rows:
        name, bimodal, two_level, gshare, static = row
        # The paper's claim: the bimodal design is competitive with the
        # sophisticated alternatives at equal capacity...
        assert bimodal >= max(two_level, gshare) - 6.0, row
        # ...and a trained predictor beats the static placement policy.
        assert bimodal >= static - 3.0, row
