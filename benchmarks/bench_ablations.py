"""Ablation benches beyond the paper's figures.

These sweep the design choices DESIGN.md calls out:

* last-arriving predictor size (does Figure 7's flatness carry to IPC?);
* load speculative-window length (replay shadow cost);
* recovery policy (non-selective vs. selective) under sequential wakeup,
  exercising the Section 3.1 argument that sequential wakeup composes with
  selective recovery while tag elimination cannot.
"""

import dataclasses

import pytest

from repro.analysis.report import ExperimentResult
from repro.pipeline.config import FOUR_WIDE, RecoveryModel, SchedulerModel

_BENCHES = ("bzip", "mcf", "gcc")


def _normalized(runner, benchmark_name, config):
    # Seed-averaged ratio: single runs carry percent-level scheduling noise.
    return runner.normalized_ipc(benchmark_name, config)


def test_ablation_predictor_size(benchmark, runner, publish):
    """Sequential wakeup IPC vs. predictor table size (128 .. 4096)."""
    sizes = (128, 512, 1024, 4096)

    def sweep():
        result = ExperimentResult(
            "Ablation A",
            "Seq wakeup normalized IPC vs. predictor entries (4-wide)",
            ["benchmark"] + [f"{s}e" for s in sizes] + ["nopred"],
        )
        for name in _BENCHES:
            row = [name]
            for size in sizes:
                config = FOUR_WIDE.with_techniques(
                    scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=size
                )
                row.append(_normalized(runner, name, config))
            nopred = FOUR_WIDE.with_techniques(
                scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=None
            )
            row.append(_normalized(runner, name, nopred))
            result.rows.append(row)
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(result)
    for row in result.rows:
        # The paper's claim: performance is insensitive to predictor
        # accuracy because the misprediction penalty is one cycle.
        assert max(row[1:]) - min(row[1:]) < 0.06, row


def test_ablation_spec_window(benchmark, runner, publish):
    """Base-machine IPC vs. load speculative-window length."""

    def sweep():
        result = ExperimentResult(
            "Ablation B",
            "Normalized IPC vs. load spec window (replay shadow)",
            ["benchmark", "window=1", "window=2", "window=3"],
        )
        for name in _BENCHES:
            row = [name]
            for window in (1, 2, 3):
                config = dataclasses.replace(
                    FOUR_WIDE, load_spec_window=window,
                    name=f"4-wide+win{window}",
                )
                row.append(_normalized(runner, name, config))
            result.rows.append(row)
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(result)
    for row in result.rows:
        # A longer replay shadow can only squash more: IPC must not rise
        # much as the window grows.
        assert row[1] >= row[3] - 0.05, row


def test_ablation_recovery_policy(benchmark, runner, publish):
    """Sequential wakeup under non-selective vs. selective recovery.

    Section 3.1: sequential wakeup is fully compatible with selective
    recovery (both operands observe dependence broadcasts), so it should
    benefit from the cheaper replays, especially on miss-heavy mcf.
    """

    def sweep():
        result = ExperimentResult(
            "Ablation C",
            "Seq wakeup IPC: non-selective vs. selective recovery (4-wide)",
            ["benchmark", "non-selective", "selective"],
        )
        for name in _BENCHES:
            row = [name]
            for recovery in (RecoveryModel.NON_SELECTIVE, RecoveryModel.SELECTIVE):
                config = FOUR_WIDE.with_techniques(
                    scheduler=SchedulerModel.SEQ_WAKEUP, recovery=recovery
                )
                row.append(_normalized(runner, name, config))
            result.rows.append(row)
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(result)
    for row in result.rows:
        # Replay-chaos noise survives even seed averaging on mcf-class
        # workloads; the claim is "selective is not systematically worse".
        assert row[2] >= row[1] - 0.05, f"{row[0]}: selective recovery regressed"
