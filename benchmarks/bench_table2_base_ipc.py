"""Table 2: per-benchmark base IPC on the 4- and 8-wide machines.

Paper values range from 0.71 (mcf) to 2.02 (vortex) at 4-wide; the shape
check asserts the synthetic clones keep the ordering extremes and that the
wider machine is at least as fast everywhere.
"""

from repro.analysis import experiments


def test_table2_base_ipc(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.table2(runner), rounds=1, iterations=1
    )
    publish(result)
    by_name = {row[0]: row for row in result.rows}
    if "mcf" in by_name:
        others = [row[2] for name, row in by_name.items() if name != "mcf"]
        if others:
            assert by_name["mcf"][2] < min(others), "mcf must be the slowest"
    for row in result.rows:
        assert row[4] >= row[2] * 0.9, f"{row[0]}: 8-wide slower than 4-wide"
