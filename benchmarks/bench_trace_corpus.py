"""Real-workload trace corpus: full vs SimPoint-sampled IPC per trace.

One row per committed corpus tracefile: the full-trace IPC, the sampled
weighted IPC, the relative error and the sampled instruction coverage.
Homogeneous traces are gated at 2% error; the branchy outliers
(hash_probe, bubble_sort) fluctuate with branch-predictor window noise at
10k-instruction intervals (docs/TRACES.md) and are reported against a
looser bound rather than tightly gated here — the CI trace-smoke job
proves the 2%-at-≤10%-coverage acceptance bound on the 1M-instruction
trace.
"""

from repro.analysis.report import ExperimentResult
from repro.fastsim import apply_backend, available_backends
from repro.pipeline.config import FOUR_WIDE
from repro.trace import CORPUS, load_corpus_feed, run_full, run_sampled

#: Traces whose sampled error must stay within the paper-style 2% bound.
TIGHT = {"vector_sum_80k", "dotproduct_96k", "sieve_105k", "strsearch_76k"}

#: Branchy traces: predictor window noise dominates at small intervals.
LOOSE_BOUND = 0.10


def trace_corpus_table(cache=None) -> ExperimentResult:
    backends = available_backends()
    config = apply_backend(
        FOUR_WIDE, "native" if "native" in backends else backends[-1]
    )
    rows = []
    for entry in CORPUS:
        if not entry.committed:
            continue
        feed = load_corpus_feed(entry.name)
        full = run_full(feed, config, cache=cache)
        report = run_sampled(feed, config, cache=cache)
        error = abs(report["weighted_ipc"] - full.ipc) / full.ipc
        rows.append(
            [
                entry.name,
                len(feed.ops),
                round(full.ipc, 4),
                round(report["weighted_ipc"], 4),
                round(100 * error, 2),
                round(report["coverage"], 3),
            ]
        )
    return ExperimentResult(
        exp_id="Traces",
        title="Corpus traces: full vs sampled IPC (4-wide base)",
        headers=["trace", "insts", "full IPC", "sampled IPC", "err %", "coverage"],
        rows=rows,
        notes=[
            "sampled = SimPoint-style: 10k intervals, k=8, cache-state "
            "reconstruction warming (docs/TRACES.md)",
        ],
    )


def test_trace_corpus_sampling_accuracy(benchmark, publish):
    result = benchmark.pedantic(trace_corpus_table, rounds=1, iterations=1)
    publish(result)
    assert result.rows, "corpus tracefiles missing — run scripts/make_corpus.py"
    for name, _insts, full_ipc, sampled_ipc, error_pct, coverage in result.rows:
        # Coverage includes warmup + cache-reconstruction overhead, which is
        # amortized by trace length: it is gated (≤10%) on the 1M-instruction
        # CI trace, and only sanity-checked on these ~100k corpus entries.
        assert 0 < coverage, f"{name}: empty sample set"
        bound = 2.0 if name in TIGHT else 100 * LOOSE_BOUND
        assert error_pct <= bound, (
            f"{name}: sampled IPC {sampled_ipc} vs full {full_ipc} "
            f"({error_pct}% > {bound}%)"
        )
