"""Figure 10: register access characterization of 2-source instructions.

Paper: less than 4% of dynamic instructions require two register-file port
reads (the rest get at least one value off the bypass network or have
fewer than two register sources).
"""

from repro.analysis import experiments


def test_fig10_register_access(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig10(runner), rounds=1, iterations=1
    )
    publish(result)
    needs_two = [row[4] for row in result.rows]
    # Shape: dual port reads are rare — single-digit percentages.
    assert max(needs_two) <= 15.0
    assert sum(needs_two) / len(needs_two) <= 8.0
