"""Sensitivity sweeps around the paper's design points (not paper figures).

Window-size and machine-width sweeps of the sequential wakeup cost: the
paper's circuit argument strengthens with bigger windows and wider
machines, so the IPC cost must stay flat there for the technique to pay.
"""

from repro.analysis.sweeps import width_sweep, window_size_sweep


def test_sweep_window_size(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: window_size_sweep(runner, runner.benchmarks[0]),
        rounds=1, iterations=1,
    )
    publish(result)
    for row in result.rows:
        assert row[3] >= 0.9, f"window {row[0]}: seq wakeup cost exploded"


def test_sweep_machine_width(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: width_sweep(runner, runner.benchmarks[0]),
        rounds=1, iterations=1,
    )
    publish(result)
    for row in result.rows:
        assert row[2] >= 0.9, f"width {row[0]}: seq wakeup cost exploded"
