"""Shape-preservation scorecard over every regenerated experiment.

The checks need statistical power: at reduced run lengths (REPRO_INSTS
below 8000, or a single seed) the scorecard still prints but does not
fail the build on noisy verdicts.
"""

import pytest

from repro.analysis.validation import scorecard


def test_validation_scorecard(benchmark, runner, publish):
    result = benchmark.pedantic(lambda: scorecard(runner), rounds=1, iterations=1)
    publish(result)
    failures = [row for row in result.rows if row[1] != "PASS"]
    if runner.insts < 8_000 or len(runner.seeds) < 2 or len(runner.benchmarks) < 6:
        if failures:
            pytest.skip(
                "reduced-size run: scorecard verdicts lack statistical "
                f"power (failing: {[row[0] for row in failures]})"
            )
        return
    assert not failures, f"shape checks failed: {[row[0] for row in failures]}"
