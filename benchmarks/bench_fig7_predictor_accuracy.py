"""Figure 7: last-arriving operand predictor accuracy vs. table size.

Paper: a simple PC-indexed bimodal predictor reaches high accuracy, with
only mild sensitivity to table size between 128 and 4096 entries.
"""

from repro.analysis import experiments
from repro.analysis.runner import SHADOW_SIZES


def test_fig7_predictor_accuracy(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig7(runner), rounds=1, iterations=1
    )
    publish(result)
    for row in result.rows:
        name = row[0]
        accuracies = row[1 : 1 + len(SHADOW_SIZES)]
        # Better than a coin flip everywhere, and the biggest table is not
        # meaningfully worse than the smallest (aliasing only ever hurts).
        assert all(acc >= 45.0 for acc in accuracies), f"{name}: {accuracies}"
        assert accuracies[-1] >= accuracies[0] - 8.0, f"{name}: size trend inverted"
