"""Simulator throughput benchmarks (pytest-benchmark, multiple rounds).

Not a paper figure — these track the cost of the substrate itself so
regressions in the cycle loop, the cache model, the generator, the result
cache or the parallel fan-out show up.  Baselines live in
``results/speed_baseline.txt``; the engine itself is described in
``docs/PERFORMANCE.md``.
"""

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.parallel import Job, execute_job, run_jobs
from repro.fastsim import (
    BACKENDS,
    make_processor,
    native_available,
    numpy_available,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import FOUR_WIDE
from repro.workloads.feed import ReplayFeed, collect_stream
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload


@pytest.mark.parametrize("backend", BACKENDS)
def test_speed_processor_cycle_loop(benchmark, backend):
    """Cycle-loop cost per 2k-instruction run, one row per backend.

    Times ``run()`` alone, symmetrically for every backend: the stream is
    pre-materialized into a :class:`ReplayFeed` with the decode cache
    warmed, and the processor is constructed in the per-round setup —
    construction (branch-predictor table init) is not the cycle loop.
    Baselines: ``results/speed_baseline.txt``.
    """
    if backend == "vector" and not numpy_available():
        pytest.skip("vector backend needs numpy (pip install -e .[fast])")
    if backend == "native" and not native_available():
        pytest.skip(
            "native backend needs the compiled extension "
            "(pip install -e .[native])"
        )
    workload = SyntheticWorkload(get_profile("gzip"), seed=3)
    feed = ReplayFeed.from_stream(workload, 2_600)
    feed.columns()  # decode outside the timed region
    fresh = {}

    def setup():
        # A processor is single-run; build a fresh one outside the timer.
        fresh["processor"] = make_processor(feed, FOUR_WIDE, backend=backend)
        return (), {}

    def run_2k():
        return fresh["processor"].run(max_insts=2_000, warmup=0)

    result = benchmark.pedantic(run_2k, setup=setup, rounds=7, warmup_rounds=1)
    assert result.stats.committed >= 2_000


def test_speed_synthetic_generator(benchmark):
    workload = SyntheticWorkload(get_profile("gcc"), seed=3)
    ops = benchmark(lambda: collect_stream(workload, 20_000))
    assert len(ops) == 20_000


def test_speed_cache_hierarchy(benchmark):
    hierarchy = MemoryHierarchy()
    addresses = [((i * 2654435761) >> 8) & 0xFFFFF for i in range(20_000)]

    def sweep():
        total = 0
        for addr in addresses:
            total += hierarchy.load(addr).latency
        return total

    assert benchmark(sweep) > 0


def test_speed_result_cache_hit(benchmark, tmp_path):
    """Disk-cache lookup cost: fingerprint + JSON load + deserialize.

    This is the unit of work a warm figure-regeneration session pays per
    result instead of a full simulation — it should stay milliseconds.
    """
    cache = ResultCache(tmp_path)
    job = Job("gzip", FOUR_WIDE, 3, 1_000, 1_000)
    cache.store("gzip", 3, 1_000, 1_000, FOUR_WIDE, None, execute_job(job))

    def lookup():
        return cache.load("gzip", 3, 1_000, 1_000, FOUR_WIDE, None)

    result = benchmark(lookup)
    assert result is not None and result.total_committed >= 1_000


def test_speed_parallel_fanout_overhead(benchmark, monkeypatch):
    """Legacy fan-out vs. inline: the fixed cost of pickling + worker startup.

    Two tiny jobs through a fresh 2-worker ``ProcessPoolExecutor``
    (``REPRO_POOL=0`` forces the pre-warm-pool path).  The absolute
    number is dominated by process startup; it is the ~100 ms floor the
    persistent pool exists to amortize away (see
    ``test_speed_parallel_fanout_batched`` and docs/PERFORMANCE.md).
    """
    monkeypatch.setenv("REPRO_POOL", "0")
    jobs = [Job("gzip", FOUR_WIDE, seed, 500, 500) for seed in (3, 4)]

    def fan_out():
        return run_jobs(jobs, workers=2)

    results = benchmark(fan_out)
    assert [r.total_committed >= 500 for r in results] == [True, True]


def test_speed_parallel_fanout_batched(benchmark):
    """64 short jobs through the *warm* persistent pool, vs. inline.

    The acceptance bound for the warm-pool engine: amortized per-job
    dispatch overhead (batch wall time minus the pure inline simulation
    time, spread over the batch) must be at most 20 ms — a fifth of the
    legacy ~100 ms single-fan-out floor — and every batched result must
    be byte-identical to its inline run.  The pool is warmed outside the
    measured region; that one-time spin-up is exactly the cost the pool
    stops re-paying on every dispatch.
    """
    from time import perf_counter

    from repro.analysis.cache import serialize_result
    from repro.analysis.pool import pool_enabled

    if not pool_enabled():
        pytest.skip("warm pool disabled via REPRO_POOL=0")
    jobs = [Job("gzip", FOUR_WIDE, seed, 300, 200) for seed in range(64)]

    started = perf_counter()
    inline = [execute_job(job) for job in jobs]
    inline_s = perf_counter() - started

    def fan_out():
        return run_jobs(jobs, workers=2)

    fan_out()  # warm the pool (worker spawn + imports) outside the timer
    started = perf_counter()
    results = fan_out()
    batched_s = perf_counter() - started

    expected = [serialize_result(result) for result in inline]
    assert [serialize_result(result) for result in results] == expected
    overhead_ms = max(0.0, batched_s - inline_s) * 1000 / len(jobs)
    assert overhead_ms <= 20.0, (
        f"amortized dispatch overhead {overhead_ms:.2f} ms/job exceeds the "
        f"20 ms bound (batch {batched_s * 1000:.1f} ms vs inline "
        f"{inline_s * 1000:.1f} ms for {len(jobs)} jobs)"
    )
    assert [serialize_result(result) for result in benchmark(fan_out)] == expected
