"""Simulator throughput benchmarks (pytest-benchmark, multiple rounds).

Not a paper figure — these track the cost of the substrate itself so
regressions in the cycle loop, the cache model or the generator show up.
"""

from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import Processor
from repro.workloads.feed import collect_stream
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload


def test_speed_processor_cycle_loop(benchmark):
    workload = SyntheticWorkload(get_profile("gzip"), seed=3)

    def simulate_2k():
        return Processor(workload, FOUR_WIDE).run(max_insts=2_000, warmup=0)

    result = benchmark(simulate_2k)
    assert result.stats.committed >= 2_000


def test_speed_synthetic_generator(benchmark):
    workload = SyntheticWorkload(get_profile("gcc"), seed=3)
    ops = benchmark(lambda: collect_stream(workload, 20_000))
    assert len(ops) == 20_000


def test_speed_cache_hierarchy(benchmark):
    hierarchy = MemoryHierarchy()
    addresses = [((i * 2654435761) >> 8) & 0xFFFFF for i in range(20_000)]

    def sweep():
        total = 0
        for addr in addresses:
            total += hierarchy.load(addr).latency
        return total

    assert benchmark(sweep) > 0
