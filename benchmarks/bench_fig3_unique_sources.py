"""Figure 3: 2-source-format breakdown by unique non-zero sources.

Paper: 6~23% of dynamic instructions have two unique, non-zero source
operands ("2-source instructions"); the rest of the 2-source-format
population collapses through zero registers, duplicates, or eliminated
alignment nops.
"""

from repro.analysis import experiments


def test_fig3_unique_sources(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig3(runner), rounds=1, iterations=1
    )
    publish(result)
    for row in result.rows:
        name, two_source, demoted, nops = row
        assert 2.0 <= two_source <= 30.0, f"{name}: 2-source {two_source}%"
        assert demoted > 0.0, f"{name}: no demoted instructions generated"
