"""Figure 2: percentage of 2-source-format instructions.

Paper: 18~36% of dynamic instructions have two source operands in their
format, with stores tracked as their own category.
"""

from repro.analysis import experiments


def test_fig2_two_source_format(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig2(runner), rounds=1, iterations=1
    )
    publish(result)
    for row in result.rows:
        name, fmt, stores, other = row
        assert 5.0 <= fmt <= 45.0, f"{name}: 2-source-format {fmt}% out of band"
        assert 2.0 <= stores <= 20.0, f"{name}: stores {stores}% out of band"
