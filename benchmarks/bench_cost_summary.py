"""Cost summary: complexity saved vs. IPC paid (the paper's thesis)."""

from repro.analysis import experiments


def test_cost_summary(benchmark, runner, publish):
    result = benchmark.pedantic(
        lambda: experiments.cost_summary(runner), rounds=1, iterations=1
    )
    publish(result)
    by_name = {row[0]: row for row in result.rows}
    # Hardware savings are large...
    assert by_name["wakeup delay, 64 entries (ps)"][3] < -15.0
    assert by_name["RF access time (ns)"][3] < -15.0
    assert by_name["RF area (rel)"][3] < -30.0
    # ...while the IPC cost stays in single digits.
    assert by_name["IPC, 4-wide (normalized)"][3] > -8.0
    assert by_name["IPC, 8-wide (normalized)"][3] > -8.0
