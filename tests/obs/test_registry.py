"""Tests for the metrics registry, stage profiler and guarded publishing."""

import pytest

from repro.obs.registry import (
    CounterMetric,
    HistogramMetric,
    MetricsRegistry,
    StageProfiler,
    TimerMetric,
)
from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import Processor
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload


class TestMetrics:
    def test_counter_inc_and_set(self):
        counter = CounterMetric("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(42)
        assert counter.as_value() == 42

    def test_histogram_observe_and_merge(self):
        histogram = HistogramMetric("h")
        histogram.observe(0, 3)
        histogram.observe(2)
        histogram.merge({1: 5, "2": 1})
        assert histogram.buckets == {0: 3, 1: 5, 2: 2}
        assert histogram.total == 10
        assert histogram.as_value() == {"0": 3, "1": 5, "2": 2}

    def test_timer_context_manager(self):
        timer = TimerMetric("t")
        with timer:
            pass
        with timer:
            pass
        assert timer.calls == 2
        assert timer.seconds >= 0.0

    def test_registry_creates_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.histogram("a.h").observe(1)
        registry.timer("a.t").add(0.5)
        assert len(registry) == 3
        assert registry.names() == ["a.b", "a.h", "a.t"]
        assert "a.b" in registry and "nope" not in registry
        exported = registry.as_dict()
        assert exported["a.b"] == 1
        assert exported["a.t"] == {"seconds": 0.5, "calls": 1}

    def test_registry_rejects_type_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")


class TestStageProfiler:
    def test_wrap_accumulates(self):
        profiler = StageProfiler()
        calls = []
        timed = profiler.wrap("phase", lambda: calls.append(1))
        timed()
        timed()
        assert calls == [1, 1]
        assert profiler.calls["phase"] == 2
        assert profiler.seconds["phase"] >= 0.0
        assert profiler.as_dict()["phase"]["calls"] == 2

    def test_publish_into_registry(self):
        profiler = StageProfiler()
        profiler.wrap("fetch", lambda: None)()
        registry = MetricsRegistry()
        profiler.publish(registry)
        assert registry.timer("stage.fetch").calls == 1


class TestProcessorObservability:
    def _run(self, profile):
        workload = SyntheticWorkload(get_profile("gzip"), seed=5)
        processor = Processor(workload, FOUR_WIDE, profile=profile)
        result = processor.run(max_insts=500, warmup=200)
        return processor, result

    def test_profile_off_by_default(self):
        processor, _ = self._run(profile=False)
        assert processor.profiler is None

    def test_profiled_run_times_all_five_stages(self):
        processor, _ = self._run(profile=True)
        assert sorted(processor.profiler.seconds) == [
            "commit", "dispatch", "fetch", "process_events", "select_and_issue",
        ]
        # Every stage ran once per cycle.
        assert processor.profiler.calls["fetch"] == processor.now

    def test_profiling_does_not_change_timing(self):
        _, plain = self._run(profile=False)
        _, profiled = self._run(profile=True)
        assert plain.total_cycles == profiled.total_cycles
        assert plain.stats.counter_dict() == profiled.stats.counter_dict()

    def test_publish_metrics_covers_components(self):
        processor, result = self._run(profile=True)
        registry = MetricsRegistry()
        processor.publish_metrics(registry)
        exported = registry.as_dict()
        assert exported["sim.committed"] == result.stats.committed
        assert exported["sim.issued"] == result.stats.issued
        assert exported["select.slots_taken"] >= result.stats.issued
        assert exported["mem.dl1.accesses"] > 0
        assert exported["regfile.crossbar_rejections"] == 0
        assert exported["stage.fetch"]["calls"] == processor.now
        # Distributions ride along as histograms.
        assert sum(
            registry.histogram("sim.ready_at_insert").buckets.values()
        ) == result.stats.two_source_dispatched
