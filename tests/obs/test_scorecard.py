"""Tests for the regression scorecard (export -> load -> compare)."""

import json

from repro.obs.export import build_stats_export, write_stats_json
from repro.obs.scorecard import (
    DEFAULT_TOLERANCES,
    compare_exports,
    compare_trees,
    render_scorecard,
)
from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import Processor
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

RUN = dict(benchmark="gzip", seed=3, insts=300, warmup=150)


def make_document():
    workload = SyntheticWorkload(get_profile(RUN["benchmark"]), seed=RUN["seed"])
    result = Processor(workload, FOUR_WIDE).run(
        max_insts=RUN["insts"], warmup=RUN["warmup"]
    )
    return build_stats_export(result, FOUR_WIDE, **RUN)


def mutate(path, fn):
    document = json.loads(path.read_text())
    fn(document)
    path.write_text(json.dumps(document, sort_keys=True) + "\n")


class TestCompareExports:
    def test_identical_documents_zero_drift(self):
        document = make_document()
        card = compare_exports(document, json.loads(json.dumps(document)))
        assert card.ok and card.exit_code == 0
        assert card.failures == [] and card.problems == []
        assert card.compared_leaves > 50

    def test_ipc_drift_fails(self):
        baseline = make_document()
        current = json.loads(json.dumps(baseline))
        current["derived"]["ipc"] *= 1.02  # > 0.5% tolerance
        card = compare_exports(baseline, current)
        assert not card.ok
        assert any(d.path == "derived.ipc" for d in card.failures)

    def test_within_tolerance_passes(self):
        baseline = make_document()
        current = json.loads(json.dumps(baseline))
        current["derived"]["ipc"] *= 1.0001  # < 0.5%
        card = compare_exports(baseline, current)
        assert card.ok
        # ... but the drift is still visible in the report rows.
        assert any(d.path == "derived.ipc" and d.ok for d in card.drifts)

    def test_fingerprint_mismatch_is_a_problem(self):
        baseline = make_document()
        current = json.loads(json.dumps(baseline))
        current["fingerprint"] = "0" * 64
        card = compare_exports(baseline, current)
        assert not card.ok
        assert any("fingerprint mismatch" in p for p in card.problems)

    def test_profile_subtree_ignored(self):
        baseline = make_document()
        baseline["profile"] = {"fetch": {"seconds": 1.0, "calls": 10}}
        current = json.loads(json.dumps(baseline))
        current["profile"] = {"fetch": {"seconds": 9.0, "calls": 10}}
        card = compare_exports(baseline, current)
        assert card.ok

    def test_custom_tolerances(self):
        baseline = make_document()
        current = json.loads(json.dumps(baseline))
        current["result"]["counters"]["replayed"] = (
            baseline["result"]["counters"]["replayed"] + 10_000
        )
        loose = dict(DEFAULT_TOLERANCES)
        loose[""] = 1e9
        assert compare_exports(baseline, current, loose).ok
        assert not compare_exports(baseline, current).ok


class TestCompareTrees:
    def test_round_trip_zero_drift(self, tmp_path):
        """Export -> load -> scorecard: a re-export of the same run is clean."""
        document = make_document()
        write_stats_json(document, tmp_path / "baseline")
        write_stats_json(document, tmp_path / "current")
        card = compare_trees(tmp_path / "baseline", tmp_path / "current")
        assert card.ok and card.compared_runs == 1

    def test_injected_counter_drift_detected(self, tmp_path):
        document = make_document()
        write_stats_json(document, tmp_path / "baseline")
        path = write_stats_json(document, tmp_path / "current")

        def bump(doc):
            doc["result"]["counters"]["issued"] += max(
                10, doc["result"]["counters"]["issued"]
            )

        mutate(path, bump)
        card = compare_trees(tmp_path / "baseline", tmp_path / "current")
        assert not card.ok
        assert any("issued" in d.path for d in card.failures)
        assert "FAIL" in render_scorecard(card)

    def test_missing_and_extra_runs_are_problems(self, tmp_path):
        document = make_document()
        write_stats_json(document, tmp_path / "baseline")
        (tmp_path / "current").mkdir()
        card = compare_trees(tmp_path / "baseline", tmp_path / "current")
        assert not card.ok
        assert any("missing from current" in p for p in card.problems)
        # And the reverse direction.
        write_stats_json(document, tmp_path / "current")
        other = json.loads(json.dumps(document))
        other["run"]["benchmark"] = "gcc"
        write_stats_json(other, tmp_path / "current")
        card = compare_trees(tmp_path / "baseline", tmp_path / "current")
        assert any("no committed baseline" in p for p in card.problems)

    def test_empty_baseline_dir_is_a_problem(self, tmp_path):
        (tmp_path / "baseline").mkdir()
        (tmp_path / "current").mkdir()
        card = compare_trees(tmp_path / "baseline", tmp_path / "current")
        assert not card.ok
        assert any("no *.stats.json baselines" in p for p in card.problems)

    def test_unreadable_current_is_a_problem(self, tmp_path):
        document = make_document()
        write_stats_json(document, tmp_path / "baseline")
        path = write_stats_json(document, tmp_path / "current")
        path.write_text("{ nope")
        card = compare_trees(tmp_path / "baseline", tmp_path / "current")
        assert not card.ok

    def test_render_mentions_pass(self, tmp_path):
        document = make_document()
        write_stats_json(document, tmp_path / "baseline")
        write_stats_json(document, tmp_path / "current")
        card = compare_trees(tmp_path / "baseline", tmp_path / "current")
        assert "PASS" in render_scorecard(card)
