"""Tests for the Chrome trace-event exporter."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs.chrometrace import export_chrome_trace, write_chrome_trace
from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import Processor
from tests.util import ScriptedFeed, op


def traced(ops):
    processor = Processor(ScriptedFeed(ops), FOUR_WIDE, record_schedule=True)
    processor.run(max_insts=len(ops), warmup=0)
    return processor


class TestExport:
    def test_requires_recording(self):
        processor = Processor(ScriptedFeed([op(0, dest=1)]), FOUR_WIDE)
        processor.run(max_insts=1, warmup=0)
        with pytest.raises(SimulationError):
            export_chrome_trace(processor)

    def test_phases_per_instruction(self):
        processor = traced([op(0, dest=1, srcs=(20,)), op(1, dest=2, srcs=(1,))])
        document = export_chrome_trace(processor)
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        cats = {e["cat"] for e in spans}
        assert "exec" in cats  # every instruction executes
        assert document["otherData"]["instructions"] == 2
        for event in spans:
            assert event["dur"] > 0
            assert event["ts"] >= 0

    def test_lanes_never_overlap(self):
        ops = [op(i, dest=1 + (i % 6), srcs=(20,)) for i in range(24)]
        processor = traced(ops)
        document = export_chrome_trace(processor)
        busy: dict[int, list[tuple[int, int]]] = {}
        for event in document["traceEvents"]:
            if event["ph"] != "X":
                continue
            busy.setdefault(event["tid"], []).append(
                (event["ts"], event["ts"] + event["dur"])
            )
        for intervals in busy.values():
            seqs = sorted({json.dumps(i) for i in intervals})
            assert seqs  # lanes are non-empty
        # Distinct instructions on one lane must not interleave cycles.
        per_lane_instr: dict[int, dict[int, tuple[int, int]]] = {}
        for event in document["traceEvents"]:
            if event["ph"] != "X":
                continue
            lane = per_lane_instr.setdefault(event["tid"], {})
            seq = event["args"]["seq"]
            start, end = event["ts"], event["ts"] + event["dur"]
            if seq in lane:
                start = min(start, lane[seq][0])
                end = max(end, lane[seq][1])
            lane[seq] = (start, end)
        for lane in per_lane_instr.values():
            spans = sorted(lane.values())
            for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
                assert next_start >= prev_end

    def test_squashed_issue_instant_events(self):
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x9000),  # cold miss
            op(1, dest=2, srcs=(1,)),                            # replayed
        ]
        processor = traced(ops)
        document = export_chrome_trace(processor)
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert instants, "the dependent's squashed issue must be an instant event"
        assert all(e["cat"] == "replay" for e in instants)
        assert instants[0]["args"]["replays"] >= 1

    def test_eliminated_nop_has_no_exec_span(self):
        processor = traced([op(0, "NOP2"), op(1, dest=1, srcs=(20,))])
        document = export_chrome_trace(processor)
        nop_spans = [
            e for e in document["traceEvents"]
            if e["ph"] == "X" and e["args"]["seq"] == 0
        ]
        assert all(e["cat"] != "exec" for e in nop_spans)

    def test_first_seq_and_count_window(self):
        ops = [op(i, dest=1 + (i % 5), srcs=(20,)) for i in range(10)]
        processor = traced(ops)
        document = export_chrome_trace(processor, first_seq=8, count=5)
        seqs = {
            e["args"]["seq"]
            for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert seqs == {8, 9}
        empty = export_chrome_trace(processor, first_seq=99)
        assert empty["otherData"]["instructions"] == 0


class TestWrite:
    def test_file_is_valid_json(self, tmp_path):
        processor = traced([op(0, dest=1, srcs=(20,))])
        path = write_chrome_trace(processor, tmp_path / "deep" / "t.trace.json")
        document = json.loads(path.read_text())
        assert "traceEvents" in document
