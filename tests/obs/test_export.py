"""Tests for the versioned stats export (run manifests)."""

import json

import pytest

from repro.analysis.cache import fingerprint
from repro.errors import SimulationError
from repro.obs.export import (
    STATS_SCHEMA_VERSION,
    build_stats_export,
    load_stats_json,
    stats_filename,
    write_stats_json,
)
from repro.obs.registry import MetricsRegistry
from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import TIMING_MODEL_VERSION, Processor
from repro.pipeline.stats import STAT_COUNTER_FIELDS
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

RUN = dict(benchmark="gzip", seed=9, insts=400, warmup=200)


@pytest.fixture(scope="module")
def run():
    workload = SyntheticWorkload(get_profile(RUN["benchmark"]), seed=RUN["seed"])
    processor = Processor(workload, FOUR_WIDE, profile=True)
    result = processor.run(max_insts=RUN["insts"], warmup=RUN["warmup"])
    return processor, result


@pytest.fixture(scope="module")
def document(run):
    processor, result = run
    return build_stats_export(result, FOUR_WIDE, **RUN)


class TestSchema:
    def test_versioned(self, document):
        assert document["schema_version"] == STATS_SCHEMA_VERSION
        assert document["timing_model_version"] == TIMING_MODEL_VERSION

    def test_fingerprint_matches_result_cache(self, document):
        assert document["fingerprint"] == fingerprint(
            RUN["benchmark"], RUN["seed"], RUN["insts"], RUN["warmup"],
            FOUR_WIDE, None,
        )

    def test_run_identity(self, document):
        assert document["run"] == {
            "benchmark": "gzip", "seed": 9, "insts": 400, "warmup": 200,
            "shadow_sizes": None, "workload": "gzip", "config_name": "4-wide",
        }

    def test_every_paper_counter_present(self, document):
        """Table 2/3 and Figure 4/6/7/10 counters all land in the export."""
        counters = document["result"]["counters"]
        for name in STAT_COUNTER_FIELDS:
            assert name in counters, name
        # Figure 4 / Figure 6 distributions.
        assert "ready_at_insert" in document["result"]
        assert "wakeup_slack" in document["result"]
        # Table 3 order stability.
        assert set(document["result"]["order"]) == {
            "same_order", "diff_order", "last_left", "last_right", "simultaneous",
        }
        # Figure-level derived ratios.
        assert set(document["derived"]) == {
            "ipc", "frac_two_pending", "frac_simultaneous", "frac_two_rf_reads",
            "predictor_accuracy", "branch_mispredict_rate",
        }
        assert set(document["order_derived"]) == {"frac_same", "frac_last_left"}

    def test_config_is_fully_expanded(self, document):
        assert document["config"]["width"] == 4
        assert document["config"]["scheduler"] == "base"
        assert document["config"]["mem"]["dl1"]["size_bytes"] == 64 * 1024

    def test_optional_sections(self, run):
        processor, result = run
        registry = MetricsRegistry()
        processor.publish_metrics(registry)
        document = build_stats_export(
            result, FOUR_WIDE, registry=registry, profile=processor.profiler, **RUN
        )
        assert document["metrics"]["sim.committed"] == result.stats.committed
        assert document["profile"]["fetch"]["calls"] == processor.now
        bare = build_stats_export(result, FOUR_WIDE, **RUN)
        assert "metrics" not in bare and "profile" not in bare


class TestRoundTrip:
    def test_write_load_identity(self, document, tmp_path):
        path = write_stats_json(document, tmp_path)
        assert path.name == stats_filename("gzip", "4-wide", 9)
        assert load_stats_json(path) == document

    def test_rewrite_is_byte_identical(self, document, tmp_path):
        first = write_stats_json(document, tmp_path / "a").read_bytes()
        second = write_stats_json(document, tmp_path / "b").read_bytes()
        assert first == second

    def test_load_rejects_wrong_schema_version(self, document, tmp_path):
        path = write_stats_json(document, tmp_path)
        tampered = json.loads(path.read_text())
        tampered["schema_version"] = STATS_SCHEMA_VERSION + 1
        path.write_text(json.dumps(tampered))
        with pytest.raises(SimulationError, match="schema version"):
            load_stats_json(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.stats.json"
        path.write_text("{ truncated")
        with pytest.raises(SimulationError, match="unreadable"):
            load_stats_json(path)
        with pytest.raises(SimulationError):
            load_stats_json(tmp_path / "missing.stats.json")
