"""Public API surface checks: exports exist, docstrings everywhere."""

import importlib
import inspect

import pytest

import repro

_PUBLIC_MODULES = [
    "repro",
    "repro.isa",
    "repro.memory",
    "repro.frontend",
    "repro.core",
    "repro.pipeline",
    "repro.workloads",
    "repro.timing",
    "repro.analysis",
    "repro.verify",
    "repro.cli",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_flow(self):
        """The README quickstart must work as written."""
        from repro import FOUR_WIDE, SchedulerModel, simulate
        from repro.workloads import SyntheticWorkload, get_profile

        workload = SyntheticWorkload(get_profile("gcc"), seed=1)
        base = simulate(workload, FOUR_WIDE, max_insts=300, warmup=200)
        seq = simulate(
            workload,
            FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP),
            max_insts=300,
            warmup=200,
        )
        assert base.ipc > 0 and seq.ipc > 0


class TestDocstrings:
    @pytest.mark.parametrize("module_name", _PUBLIC_MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", _PUBLIC_MODULES)
    def test_public_classes_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                assert item.__doc__, f"{module_name}.{name} lacks a docstring"


class TestSubpackageExports:
    def test_workloads_exports(self):
        from repro.workloads import (  # noqa: F401
            EmulatorFeed,
            SPEC_BENCHMARKS,
            SyntheticWorkload,
            load_trace,
            save_trace,
        )

        assert len(SPEC_BENCHMARKS) == 12

    def test_core_exports(self):
        from repro.core import (  # noqa: F401
            IQEntry,
            LastArrivalPredictor,
            Scoreboard,
            SequentialWakeup,
            TagElimination,
        )

    def test_timing_exports(self):
        from repro.timing import RegisterFileDelayModel, WakeupDelayModel  # noqa: F401

    def test_analysis_exports(self):
        from repro.analysis import ExperimentRunner, experiments, render  # noqa: F401

        assert "fig14" in experiments.ALL_EXPERIMENTS
