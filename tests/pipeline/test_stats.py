"""Unit tests for the statistics recorder."""

import pytest

from repro.core.last_arrival import OperandSide
from repro.pipeline.stats import SimStats, WakeupOrderStats


class TestWakeupOrderStats:
    def test_first_occurrence_sets_history_only(self):
        order = WakeupOrderStats()
        order.observe(10, OperandSide.LEFT)
        assert order.same_order == 0 and order.diff_order == 0
        assert order.last_left == 1

    def test_same_and_diff_tracking(self):
        order = WakeupOrderStats()
        order.observe(10, OperandSide.LEFT)
        order.observe(10, OperandSide.LEFT)
        order.observe(10, OperandSide.RIGHT)
        assert order.same_order == 1 and order.diff_order == 1
        assert order.frac_same == pytest.approx(0.5)

    def test_simultaneous_separate(self):
        order = WakeupOrderStats()
        order.observe(10, None)
        assert order.simultaneous == 1
        assert order.last_left == 0 and order.last_right == 0

    def test_frac_last_left(self):
        order = WakeupOrderStats()
        order.observe(1, OperandSide.LEFT)
        order.observe(2, OperandSide.RIGHT)
        order.observe(3, OperandSide.RIGHT)
        assert order.frac_last_left == pytest.approx(1 / 3)

    def test_empty_fractions(self):
        order = WakeupOrderStats()
        assert order.frac_same == 0.0
        assert order.frac_last_left == 0.0

    def test_reset_keeps_history(self):
        order = WakeupOrderStats()
        order.observe(10, OperandSide.LEFT)
        order.reset()
        assert order.last_left == 0
        order.observe(10, OperandSide.LEFT)
        assert order.same_order == 1  # history survived the reset


class TestSimStats:
    def test_ipc(self):
        stats = SimStats()
        stats.cycles, stats.committed = 100, 150
        assert stats.ipc == pytest.approx(1.5)
        assert SimStats().ipc == 0.0

    def test_record_dispatch(self):
        stats = SimStats()
        stats.record_dispatch(True, 0)
        stats.record_dispatch(True, 2)
        stats.record_dispatch(False, 0)
        assert stats.dispatched == 3
        assert stats.two_source_dispatched == 2
        assert stats.frac_two_pending == pytest.approx(0.5)

    def test_record_wakeup_pair_slack_capped(self):
        stats = SimStats()
        stats.record_wakeup_pair(1, 50, OperandSide.LEFT)
        assert stats.wakeup_slack[8] == 1  # capped histogram bucket

    def test_frac_simultaneous(self):
        stats = SimStats()
        stats.record_wakeup_pair(1, 0, None)
        stats.record_wakeup_pair(1, 3, OperandSide.RIGHT)
        assert stats.frac_simultaneous == pytest.approx(0.5)

    def test_rf_categories(self):
        stats = SimStats()
        stats.committed = 10
        stats.record_rf_category("back_to_back")
        stats.record_rf_category("two_ready")
        stats.record_rf_category("non_back_to_back")
        assert stats.frac_two_rf_reads == pytest.approx(0.2)
        with pytest.raises(ValueError):
            stats.record_rf_category("bogus")

    def test_predictor_accuracy(self):
        stats = SimStats()
        stats.last_arrival_predictions = 10
        stats.last_arrival_mispredictions = 2
        assert stats.predictor_accuracy == pytest.approx(0.8)
        assert SimStats().predictor_accuracy == 0.0

    def test_reset_window_clears_counters(self):
        stats = SimStats()
        stats.cycles = 5
        stats.committed = 9
        stats.ready_at_insert[1] = 4
        stats.sequential_rf_accesses = 3
        stats.rename_port_stalls = 2
        stats.reset_window()
        assert stats.cycles == 0 and stats.committed == 0
        assert not stats.ready_at_insert
        assert stats.sequential_rf_accesses == 0
        assert stats.rename_port_stalls == 0

    def test_branch_rate(self):
        stats = SimStats()
        stats.branches, stats.branch_mispredicts = 20, 2
        assert stats.branch_mispredict_rate == pytest.approx(0.1)
