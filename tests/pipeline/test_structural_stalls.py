"""Tests for structural stall behaviour: ROB/LSQ capacity, IL1 misses."""

import dataclasses

from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import Processor
from tests.util import ScriptedFeed, op


def run(ops, config, max_insts=None):
    processor = Processor(ScriptedFeed(ops), config, record_schedule=True)
    processor.run(max_insts=max_insts or len(ops), warmup=0)
    return processor


class TestROBCapacity:
    def test_small_rob_throttles_dispatch(self):
        """A long-latency head instruction blocks commit; a tiny ROB then
        stalls dispatch of younger instructions until it drains."""
        tiny = dataclasses.replace(FOUR_WIDE, ruu_size=4, lsq_size=4, name="tiny")
        ops = [op(0, "DIV", dest=1, srcs=(20, 21))] + [
            op(i, dest=2 + (i % 8), srcs=(22,)) for i in range(1, 12)
        ]
        small = run(ops, tiny)
        large = run(ops, FOUR_WIDE)
        # With 4 ROB entries the 12th instruction must dispatch much later.
        assert small.trace[11]["insert"] > large.trace[11]["insert"]
        assert small.stats.committed == 12

    def test_dispatch_never_overflows_rob(self):
        tiny = dataclasses.replace(FOUR_WIDE, ruu_size=4, lsq_size=4, name="tiny")
        ops = [op(i, dest=1 + (i % 8), srcs=(20,)) for i in range(40)]
        processor = run(ops, tiny)
        assert processor.stats.committed == 40


class TestLSQCapacity:
    def test_small_lsq_throttles_memory_ops(self):
        tiny = dataclasses.replace(FOUR_WIDE, lsq_size=2, name="tiny-lsq")
        ops = []
        for i in range(12):
            ops.append(op(i, "LDQ", dest=1 + (i % 8), srcs=(24,), mem_addr=0x100 + 16 * i))
        small = run(ops, tiny)
        large = run(ops, FOUR_WIDE)
        assert small.stats.committed == 12
        assert small.trace[11]["insert"] >= large.trace[11]["insert"]

    def test_non_memory_ops_do_not_consume_lsq(self):
        tiny = dataclasses.replace(FOUR_WIDE, lsq_size=1, name="tiny-lsq")
        ops = [op(i, dest=1 + (i % 8), srcs=(20,)) for i in range(10)]
        processor = run(ops, tiny)
        assert processor.stats.committed == 10


class TestInstructionCacheStalls:
    def test_il1_misses_slow_fetch(self):
        """Spreading the code over many lines makes cold fetch slower than
        fetching from one line."""
        dense = [op(i, dest=1 + (i % 8), srcs=(20,), pc=0) for i in range(8)]
        sparse = [
            op(i, dest=1 + (i % 8), srcs=(20,), pc=i * 64)  # 256B apart
            for i in range(8)
        ]
        dense_run = run(dense, FOUR_WIDE)
        sparse_run = run(sparse, FOUR_WIDE)
        assert sparse_run.now > dense_run.now
        assert sparse_run.memory.il1.stats.misses > dense_run.memory.il1.stats.misses


class TestTagElimRecoveryPolicy:
    def test_tag_elim_misschedule_always_uses_window(self):
        """Section 3.1: tag elimination cannot use selective recovery; the
        misschedule window applies even on a selective-recovery machine."""
        from repro.pipeline.config import RecoveryModel, SchedulerModel

        config = FOUR_WIDE.with_techniques(
            scheduler=SchedulerModel.TAG_ELIM,
            recovery=RecoveryModel.SELECTIVE,
            predictor_entries=None,
        )
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, "MUL", dest=2, srcs=(20, 21)),
            op(2, dest=3, srcs=(2, 1)),            # misscheduled
            op(3, "ADDF", dest=40, srcs=(41, 63)),  # independent, in shadow
            op(4, "ADDF", dest=42, srcs=(40,)),
        ]
        processor = run(ops, config)
        assert processor.stats.tag_elim_misschedules >= 1
        # The independent FP consumer is still squashed by the window.
        assert len(processor.trace[4]["issues"]) == 2
