"""Unit tests for functional units, ROB, LSQ and the register-port policy."""

import pytest

from repro.core.iq import EntryState, IQEntry, Operand
from repro.core.last_arrival import OperandSide
from repro.isa.opcodes import OpClass
from repro.pipeline.config import FOUR_WIDE, Latencies, RegFileModel, SchedulerModel
from repro.pipeline.fu import FunctionalUnits
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.regfile import RegisterFilePolicy
from repro.pipeline.rob import ReorderBuffer
from repro.workloads.trace import DynOp


def entry(seq=0, opcode="ADD", op_class=OpClass.INT_ALU, deps=(), mem_addr=None,
          is_store=False):
    op = DynOp(
        seq, seq, opcode, op_class, dest=1,
        sched_deps=tuple(deps), mem_addr=mem_addr,
    )
    operands = [
        Operand(100 + d, OperandSide.LEFT if i == 0 else OperandSide.RIGHT)
        for i, d in enumerate(deps)
    ]
    return IQEntry(op, seq, operands, insert_cycle=0)


class TestFunctionalUnits:
    def setup_method(self):
        self.fu = FunctionalUnits(FOUR_WIDE.fu, Latencies())

    def test_per_cycle_bandwidth(self):
        self.fu.begin_cycle(1)
        for _ in range(4):
            assert self.fu.can_issue(OpClass.INT_ALU, 1)
            self.fu.issue(OpClass.INT_ALU, 1)
        assert not self.fu.can_issue(OpClass.INT_ALU, 1)

    def test_bandwidth_resets_each_cycle(self):
        self.fu.begin_cycle(1)
        for _ in range(4):
            self.fu.issue(OpClass.INT_ALU, 1)
        self.fu.begin_cycle(2)
        assert self.fu.can_issue(OpClass.INT_ALU, 2)

    def test_branches_share_int_alus(self):
        self.fu.begin_cycle(1)
        for _ in range(4):
            self.fu.issue(OpClass.BRANCH, 1)
        assert not self.fu.can_issue(OpClass.INT_ALU, 1)

    def test_mem_ports(self):
        self.fu.begin_cycle(1)
        self.fu.issue(OpClass.LOAD, 1)
        self.fu.issue(OpClass.STORE, 1)
        assert not self.fu.can_issue(OpClass.LOAD, 1)

    def test_divider_not_pipelined(self):
        self.fu.begin_cycle(1)
        self.fu.issue(OpClass.INT_DIV, 1)
        self.fu.issue(OpClass.INT_DIV, 1)   # second divider
        self.fu.begin_cycle(2)
        assert not self.fu.can_issue(OpClass.INT_DIV, 2)  # both busy
        self.fu.begin_cycle(22)             # after 20-cycle divide latency
        assert self.fu.can_issue(OpClass.INT_DIV, 22)

    def test_multiplier_is_pipelined(self):
        self.fu.begin_cycle(1)
        self.fu.issue(OpClass.INT_MULT, 1)
        self.fu.issue(OpClass.INT_MULT, 1)
        self.fu.begin_cycle(2)
        assert self.fu.can_issue(OpClass.INT_MULT, 2)

    def test_div_blocks_mult_pool(self):
        self.fu.begin_cycle(1)
        self.fu.issue(OpClass.INT_DIV, 1)
        self.fu.issue(OpClass.INT_DIV, 1)
        self.fu.begin_cycle(2)
        assert not self.fu.can_issue(OpClass.INT_MULT, 2)

    def test_pool_size(self):
        assert self.fu.pool_size(OpClass.INT_ALU) == 4
        assert self.fu.pool_size(OpClass.LOAD) == 2


class TestReorderBuffer:
    def test_fifo_commit(self):
        rob = ReorderBuffer(4)
        first, second = entry(0), entry(1)
        rob.push(first)
        rob.push(second)
        assert rob.head() is first
        first.state = EntryState.COMPLETED
        assert rob.committable()
        assert rob.commit_head() is first
        assert not rob.committable()  # second not done

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.push(entry(0))
        rob.push(entry(1))
        assert rob.full
        with pytest.raises(OverflowError):
            rob.push(entry(2))

    def test_empty(self):
        rob = ReorderBuffer(2)
        assert rob.empty and rob.head() is None
        assert not rob.committable()

    def test_iteration_in_order(self):
        rob = ReorderBuffer(4)
        for seq in range(3):
            rob.push(entry(seq))
        assert [e.tag for e in rob] == [0, 1, 2]


class TestLoadStoreQueue:
    def make_store(self, seq, addr):
        store = entry(seq, "STQ", OpClass.STORE, mem_addr=addr)
        return store

    def make_load(self, seq, addr):
        return entry(seq, "LDQ", OpClass.LOAD, mem_addr=addr)

    def test_capacity(self):
        lsq = LoadStoreQueue(1)
        lsq.insert(self.make_load(0, 0x10))
        assert lsq.full
        with pytest.raises(OverflowError):
            lsq.insert(self.make_load(1, 0x20))

    def test_forwarding_matches_same_word(self):
        lsq = LoadStoreQueue(8)
        store = self.make_store(0, 0x1004)
        lsq.insert(store)
        load = self.make_load(1, 0x1000)  # same 8-byte word
        assert lsq.forwarding_store(load) is store

    def test_no_forward_from_younger_store(self):
        lsq = LoadStoreQueue(8)
        load = self.make_load(1, 0x1000)
        lsq.insert(load)
        lsq.insert(self.make_store(2, 0x1000))
        assert lsq.forwarding_store(load) is None

    def test_youngest_older_store_wins(self):
        lsq = LoadStoreQueue(8)
        old = self.make_store(0, 0x1000)
        newer = self.make_store(1, 0x1000)
        lsq.insert(old)
        lsq.insert(newer)
        assert lsq.forwarding_store(self.make_load(2, 0x1000)) is newer

    def test_different_word_no_match(self):
        lsq = LoadStoreQueue(8)
        lsq.insert(self.make_store(0, 0x1000))
        assert lsq.forwarding_store(self.make_load(1, 0x1008)) is None

    def test_remove_is_idempotent(self):
        lsq = LoadStoreQueue(8)
        load = self.make_load(0, 0x10)
        lsq.insert(load)
        lsq.remove(load)
        lsq.remove(load)
        assert len(lsq) == 0

    def test_store_agen_done(self):
        store = self.make_store(0, 0x10)
        assert not LoadStoreQueue.store_agen_done(store)
        store.state = EntryState.ISSUED
        assert LoadStoreQueue.store_agen_done(store)


class TestRegisterFilePolicy:
    def ready_entry(self, n_ops=2):
        deps = (2, 3)[:n_ops]
        made = entry(0, deps=deps)
        for operand in made.operands:
            operand.tag = None
            operand.ready = True
            operand.ready_at_insert = True
        return made

    def woke_now_entry(self, cycle):
        made = entry(0, deps=(2, 3))
        made.operands[0].wake(cycle)
        made.operands[1].wake(cycle - 3)
        return made

    def test_base_never_sequential(self):
        policy = RegisterFilePolicy(FOUR_WIDE)
        assert not policy.decide_sequential_access(self.ready_entry(), 5)

    def test_sequential_two_ready(self):
        config = FOUR_WIDE.with_techniques(regfile=RegFileModel.SEQUENTIAL)
        policy = RegisterFilePolicy(config)
        assert policy.decide_sequential_access(self.ready_entry(), 5)

    def test_sequential_cleared_by_now_bit(self):
        config = FOUR_WIDE.with_techniques(regfile=RegFileModel.SEQUENTIAL)
        policy = RegisterFilePolicy(config)
        assert not policy.decide_sequential_access(self.woke_now_entry(5), 5)

    def test_single_source_never_sequential(self):
        config = FOUR_WIDE.with_techniques(regfile=RegFileModel.SEQUENTIAL)
        policy = RegisterFilePolicy(config)
        assert not policy.decide_sequential_access(self.ready_entry(n_ops=1), 5)

    def test_combined_ignores_slow_side_now(self):
        config = FOUR_WIDE.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, regfile=RegFileModel.SEQUENTIAL
        )
        policy = RegisterFilePolicy(config)
        assert policy.fast_side_now_only
        made = self.woke_now_entry(5)
        made.fast_side = OperandSide.RIGHT  # the now bit is on the LEFT
        assert policy.decide_sequential_access(made, 5)

    def test_reads_needed(self):
        policy = RegisterFilePolicy(FOUR_WIDE)
        assert policy.reads_needed(self.ready_entry(), 5) == 2
        assert policy.reads_needed(self.woke_now_entry(5), 5) == 1

    def test_crossbar_budget(self):
        config = FOUR_WIDE.with_techniques(regfile=RegFileModel.CROSSBAR)
        policy = RegisterFilePolicy(config)
        policy.begin_cycle()
        assert policy.try_reserve(self.ready_entry(), 5)   # 2 ports
        assert policy.try_reserve(self.ready_entry(), 5)   # 4 ports
        assert not policy.try_reserve(self.ready_entry(), 5)

    def test_crossbar_budget_resets(self):
        config = FOUR_WIDE.with_techniques(regfile=RegFileModel.CROSSBAR)
        policy = RegisterFilePolicy(config)
        policy.begin_cycle()
        policy.try_reserve(self.ready_entry(), 5)
        policy.try_reserve(self.ready_entry(), 5)
        policy.begin_cycle()
        assert policy.try_reserve(self.ready_entry(), 5)

    def test_base_reserve_unconstrained(self):
        policy = RegisterFilePolicy(FOUR_WIDE)
        policy.begin_cycle()
        for _ in range(100):
            assert policy.try_reserve(self.ready_entry(), 5)
