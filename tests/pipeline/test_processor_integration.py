"""End-to-end processor tests: kernels, front end, invariants, properties."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.pipeline.config import EIGHT_WIDE, FOUR_WIDE, RecoveryModel, SchedulerModel
from repro.pipeline.processor import Processor, simulate
from repro.workloads import (
    EmulatorFeed,
    SyntheticWorkload,
    get_profile,
    kernel_program,
)
from tests.util import ScriptedFeed, op


def run_kernel(name, config=FOUR_WIDE, **kwargs):
    feed = EmulatorFeed(kernel_program(name, **kwargs), name=name)
    return simulate(feed, config, max_insts=1_000_000, warmup=0)


class TestKernelExecution:
    @pytest.mark.parametrize(
        "name", ["vector_sum", "fibonacci", "dotproduct", "branchy_max"]
    )
    def test_kernels_complete(self, name):
        result = run_kernel(name)
        assert result.stats.committed > 0
        assert 0.05 < result.ipc <= FOUR_WIDE.width

    def test_all_instructions_commit_exactly_once(self):
        program = kernel_program("vector_sum", n=64)
        feed = EmulatorFeed(program)
        expected = sum(1 for _ in feed)
        result = simulate(feed, FOUR_WIDE, max_insts=10**6, warmup=0)
        assert result.stats.committed == expected

    def test_serial_chain_has_low_ipc(self):
        """Fibonacci's 2-op serial chain per 5-instruction iteration bounds
        IPC at 2.5 regardless of machine width."""
        result = run_kernel("fibonacci", n=2000)
        assert result.ipc < 2.6

    def test_pointer_chase_is_memory_bound(self):
        chase = run_kernel("pointer_chase", n=400, stride=4096)
        streaming = run_kernel("vector_sum", n=400)
        assert chase.ipc < streaming.ipc

    def test_wider_machine_not_slower(self):
        narrow = run_kernel("dotproduct", FOUR_WIDE, n=512)
        wide = run_kernel("dotproduct", EIGHT_WIDE, n=512)
        assert wide.ipc >= narrow.ipc * 0.95


class TestFrontEnd:
    def test_branch_mispredict_counted(self):
        """A never-taken branch behind a taken-biased cold predictor."""
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, "BEQ", srcs=(1,), taken=False, next_pc=2, static_target=0, pc=50),
            op(2, dest=2, srcs=(21,)),
        ]
        processor = Processor(ScriptedFeed(ops), FOUR_WIDE)
        processor.run(max_insts=3, warmup=0)
        assert processor.stats.branches == 1

    def test_mispredict_stalls_fetch(self):
        """Instructions after a mispredicted branch arrive much later."""
        taken = [
            op(0, dest=1, srcs=(20,)),
            op(1, "BEQ", srcs=(20,), taken=True, next_pc=2, static_target=2, pc=50),
            op(2, dest=2, srcs=(21,)),
        ]
        fallthrough = [
            op(0, dest=1, srcs=(20,)),
            op(1, "BEQ", srcs=(20,), taken=False, next_pc=2, static_target=9, pc=50),
            op(2, dest=2, srcs=(21,)),
        ]
        good = Processor(ScriptedFeed(taken), FOUR_WIDE, record_schedule=True)
        good.run(max_insts=3, warmup=0)
        bad = Processor(ScriptedFeed(fallthrough), FOUR_WIDE, record_schedule=True)
        bad.run(max_insts=3, warmup=0)
        assert bad.stats.branch_mispredicts == 1
        gap_good = good.trace[2]["commit"] - good.trace[1]["commit"]
        gap_bad = bad.trace[2]["commit"] - bad.trace[1]["commit"]
        assert gap_bad >= gap_good + FOUR_WIDE.front_depth

    def test_eliminated_nops_commit_without_issuing(self):
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, "NOP2", srcs=(1, 2)),
            op(2, dest=2, srcs=(21,)),
        ]
        processor = Processor(ScriptedFeed(ops), FOUR_WIDE)
        processor.run(max_insts=3, warmup=0)
        assert processor.stats.committed == 3
        assert processor.stats.issued == 2


class TestWatchdog:
    def test_deadlock_raises(self):
        """An operand with no producer and no architectural value would
        hang; the watchdog must turn that into a diagnosable error."""

        class BrokenFeed:
            name = "broken"

            def __iter__(self):
                # Dependency on r5 which nothing produces and which is not
                # in the rename map: rename treats it as architectural, so
                # craft a real deadlock instead: a load depending on its own
                # result is impossible to express; use an LSQ-full stall by
                # never completing...  Simplest true deadlock: none exists
                # by construction, so simulate one via an op that the FU
                # pool can never issue.
                yield op(0, dest=1, srcs=(20,))

        # The honest deadlock test: force the watchdog threshold low and
        # use a feed that stops committing because max_insts exceeds the
        # feed length (the run loop exits cleanly instead) -- so instead we
        # check the watchdog fires on an artificial stall.
        processor = Processor(BrokenFeed(), FOUR_WIDE)
        # Sabotage: block commit forever by monkeypatching committable.
        processor.rob.committable = lambda: False
        import repro.pipeline.processor as proc_mod

        old = proc_mod._WATCHDOG_CYCLES
        proc_mod._WATCHDOG_CYCLES = 200
        try:
            with pytest.raises(SimulationError):
                processor.run(max_insts=1, warmup=0)
        finally:
            proc_mod._WATCHDOG_CYCLES = old


class TestSyntheticIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        workload = SyntheticWorkload(get_profile("gcc"), seed=5)
        return simulate(workload, FOUR_WIDE, max_insts=4000, warmup=4000)

    def test_ipc_in_sane_band(self, result):
        assert 0.3 < result.ipc < 4.0

    def test_committed_matches_budget(self, result):
        # The warmup boundary lands within one commit group, so the
        # measured window can be short by up to (width - 1) instructions.
        assert result.stats.committed >= 4000 - FOUR_WIDE.width

    def test_characterization_populated(self, result):
        stats = result.stats
        assert stats.two_source_dispatched > 0
        assert stats.branches > 0
        assert sum(stats.ready_at_insert.values()) >= stats.two_source_dispatched

    def test_rf_categories_cover_two_source_commits(self, result):
        stats = result.stats
        total = stats.rf_back_to_back + stats.rf_two_ready + stats.rf_non_back_to_back
        assert total > 0


class TestInvariantProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_ipc_bounded_by_width(self, seed):
        workload = SyntheticWorkload(get_profile("gzip"), seed=seed)
        result = simulate(workload, FOUR_WIDE, max_insts=1500, warmup=500)
        assert 0.0 < result.ipc <= FOUR_WIDE.width

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_sequential_wakeup_never_beats_base_much(self, seed):
        """Sequential wakeup only ever removes scheduling opportunities, so
        it cannot be meaningfully faster than the base machine."""
        workload = SyntheticWorkload(get_profile("eon"), seed=seed)
        base = simulate(workload, FOUR_WIDE, max_insts=1500, warmup=1500)
        config = FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)
        seq = simulate(workload, config, max_insts=1500, warmup=1500)
        assert seq.ipc <= base.ipc * 1.05  # small noise tolerance

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_selective_recovery_not_worse(self, seed):
        """Selective replay squashes a subset of non-selective's victims."""
        workload = SyntheticWorkload(get_profile("mcf"), seed=seed)
        non_sel = simulate(workload, FOUR_WIDE, max_insts=1200, warmup=800)
        config = FOUR_WIDE.with_techniques(recovery=RecoveryModel.SELECTIVE)
        sel = simulate(workload, config, max_insts=1200, warmup=800)
        assert sel.stats.replayed <= non_sel.stats.replayed * 1.1 + 20

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_determinism(self, seed):
        workload = SyntheticWorkload(get_profile("twolf"), seed=seed)
        first = simulate(workload, FOUR_WIDE, max_insts=1000, warmup=200)
        second = simulate(workload, FOUR_WIDE, max_insts=1000, warmup=200)
        assert first.ipc == second.ipc
        assert first.stats.issued == second.stats.issued
