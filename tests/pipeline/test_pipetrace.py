"""Tests for the ASCII pipeline trace renderer."""

import pytest

from repro.errors import SimulationError
from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.pipetrace import render_pipetrace
from repro.pipeline.processor import Processor
from repro.workloads import EmulatorFeed, kernel_program
from tests.util import ScriptedFeed, op


def traced_processor(ops):
    processor = Processor(ScriptedFeed(ops), FOUR_WIDE, record_schedule=True)
    processor.run(max_insts=len(ops), warmup=0)
    return processor


class TestRenderPipetrace:
    def test_markers_present(self):
        processor = traced_processor([op(0, dest=1, srcs=(20,)), op(1, dest=2, srcs=(1,))])
        text = render_pipetrace(processor)
        assert "D" in text and "I" in text and "R" in text
        assert "legend:" in text

    def test_one_row_per_instruction(self):
        ops = [op(i, dest=1 + i, srcs=(20,)) for i in range(5)]
        processor = traced_processor(ops)
        text = render_pipetrace(processor, count=5)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 6  # header + 5 instructions

    def test_replayed_issue_marked_lowercase(self):
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x9000),  # cold miss
            op(1, dest=2, srcs=(1,)),                            # replayed
        ]
        processor = traced_processor(ops)
        text = render_pipetrace(processor)
        assert "i" in text  # the squashed first issue of the dependent

    def test_range_selection(self):
        ops = [op(i, dest=1 + (i % 5), srcs=(20,)) for i in range(10)]
        processor = traced_processor(ops)
        text = render_pipetrace(processor, first_seq=8, count=2)
        assert "   8 " in text and "   9 " in text and "   0 " not in text

    def test_empty_range(self):
        processor = traced_processor([op(0, dest=1, srcs=(20,))])
        assert "no committed" in render_pipetrace(processor, first_seq=99)

    def test_first_seq_far_past_end(self):
        processor = traced_processor([op(0, dest=1, srcs=(20,))])
        text = render_pipetrace(processor, first_seq=10_000, count=1000)
        assert "no committed" in text

    def test_empty_window_zero_or_negative_count(self):
        processor = traced_processor([op(0, dest=1, srcs=(20,))])
        assert "no committed" in render_pipetrace(processor, count=0)
        assert "no committed" in render_pipetrace(processor, count=-5)

    def test_empty_trace_renders_placeholder(self):
        processor = Processor(ScriptedFeed([]), FOUR_WIDE, record_schedule=True)
        processor.run(max_insts=0, warmup=0)
        assert "no committed" in render_pipetrace(processor)

    def test_eliminated_nop_renders_without_exec_phase(self):
        """NOP2s commit without completing; the lane must not crash."""
        processor = traced_processor([op(0, "NOP2"), op(1, dest=1, srcs=(20,))])
        text = render_pipetrace(processor, count=2)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 3  # header + NOP + ADD
        nop_row = next(row for row in rows if "NOP2" in row)
        lane = nop_row.split("|", 1)[1]
        # The NOP commits in its insert cycle: one R cell, no exec dashes.
        assert "R" in lane
        assert "-" not in lane and "I" not in lane

    def test_replay_markers_squashed_then_final(self):
        """A replayed instruction shows i (squashed) before I (final)."""
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x9000),
            op(1, dest=2, srcs=(1,)),
        ]
        processor = traced_processor(ops)
        text = render_pipetrace(processor)
        dependent_row = next(
            line for line in text.splitlines() if line.lstrip().startswith("1 ")
        )
        lane = dependent_row.split("|", 1)[1]
        assert "i" in lane and "I" in lane
        assert lane.index("i") < lane.index("I")

    def test_requires_recording(self):
        processor = Processor(ScriptedFeed([op(0, dest=1)]), FOUR_WIDE)
        processor.run(max_insts=1, warmup=0)
        with pytest.raises(SimulationError):
            render_pipetrace(processor)

    def test_kernel_trace_renders(self):
        feed = EmulatorFeed(kernel_program("fibonacci", n=8))
        processor = Processor(feed, FOUR_WIDE, record_schedule=True)
        processor.run(max_insts=1000, warmup=0)
        text = render_pipetrace(processor, count=10)
        assert "ADD" in text
