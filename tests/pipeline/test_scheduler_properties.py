"""Property-based scheduler tests over random dependency DAGs.

Hypothesis generates random straight-line programs (no control flow) with
arbitrary register dataflow; the properties assert the invariants any
correct out-of-order scheduler must keep, across every wakeup/regfile
model.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.config import FOUR_WIDE, RecoveryModel, RegFileModel, SchedulerModel
from repro.pipeline.processor import Processor
from tests.util import ScriptedFeed, op

BASE = dataclasses.replace(FOUR_WIDE, name="prop-4w", ruu_size=32, lsq_size=16)

_OPCODES = ("ADD", "MUL", "ADDF")
_LATENCY = {"ADD": 1, "MUL": 3, "ADDF": 2, "LDQ": 3}


@st.composite
def random_program(draw):
    """A straight-line program with random dataflow (registers r1..r15,
    long-lived sources r20..r27, occasional loads)."""
    length = draw(st.integers(3, 24))
    ops = []
    for seq in range(length):
        kind = draw(st.integers(0, 9))
        if kind == 0:
            addr = draw(st.integers(0, 63)) * 16
            ops.append(op(seq, "LDQ", dest=1 + seq % 15, srcs=(draw(st.integers(20, 27)),),
                          mem_addr=0x2000 + addr))
            continue
        opcode = _OPCODES[kind % len(_OPCODES)]
        n_src = draw(st.integers(1, 2))
        srcs = []
        for _ in range(n_src):
            if draw(st.booleans()) and seq > 0:
                # depend on a recent producer
                back = draw(st.integers(1, min(seq, 6)))
                srcs.append(1 + (seq - back) % 15)
            else:
                srcs.append(draw(st.integers(20, 27)))
        if opcode == "ADDF":
            # FP ops use FP registers to stay class-consistent.
            dest = 33 + seq % 10
            srcs = [40 + (s % 4) for s in srcs]
        else:
            dest = 1 + seq % 15
        ops.append(op(seq, opcode, dest=dest, srcs=tuple(srcs)))
    return ops


_CONFIGS = {
    "base": BASE,
    "seq_wakeup": BASE.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=None
    ),
    "tag_elim": BASE.with_techniques(
        scheduler=SchedulerModel.TAG_ELIM, predictor_entries=None
    ),
    "seq_rf": BASE.with_techniques(regfile=RegFileModel.SEQUENTIAL),
    "combined": BASE.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP,
        regfile=RegFileModel.SEQUENTIAL,
        predictor_entries=None,
    ),
    "selective": BASE.with_techniques(recovery=RecoveryModel.SELECTIVE),
}


def run(ops, config):
    processor = Processor(ScriptedFeed(ops), config, record_schedule=True)
    processor.run(max_insts=len(ops), warmup=0)
    return processor


class TestSchedulerInvariants:
    @settings(max_examples=25, deadline=None)
    @given(program=random_program(), config_name=st.sampled_from(sorted(_CONFIGS)))
    def test_everything_commits_exactly_once(self, program, config_name):
        processor = run(program, _CONFIGS[config_name])
        assert processor.stats.committed == len(program)

    @settings(max_examples=25, deadline=None)
    @given(program=random_program(), config_name=st.sampled_from(sorted(_CONFIGS)))
    def test_dependents_never_issue_before_producers(self, program, config_name):
        """A consumer's final issue lags its producer's final issue by at
        least the producer's latency (minus the slow-bus relaxation none of
        these schemes allows: readiness is never violated)."""
        processor = run(program, _CONFIGS[config_name])
        trace = processor.trace
        producers = {}
        for o in program:
            if config_name == "tag_elim":
                continue  # tag elim intentionally issues early, then replays
            for src in o.sched_deps:
                if src in producers:
                    producer = producers[src]
                    gap = trace[o.seq]["issues"][-1] - trace[producer.seq]["issues"][-1]
                    assert gap >= _LATENCY[producer.opcode], (
                        f"{config_name}: seq {o.seq} issued {gap} after "
                        f"producer {producer.seq} ({producer.opcode})"
                    )
            if o.dest is not None:
                producers[o.dest] = o
        assert processor.stats.committed == len(program)

    @settings(max_examples=25, deadline=None)
    @given(program=random_program())
    def test_commit_order_is_program_order(self, program):
        processor = run(program, BASE)
        commits = [processor.trace[o.seq]["commit"] for o in program]
        assert commits == sorted(commits)

    @settings(max_examples=20, deadline=None)
    @given(program=random_program())
    def test_sequential_wakeup_at_most_one_cycle_behind(self, program):
        """Per-instruction: sequential wakeup delays any final issue by at
        most one cycle per pending operand relative to base (no compounding
        beyond the dependence chain depth)."""
        base = run(program, _CONFIGS["base"])
        seq = run(program, _CONFIGS["seq_wakeup"])
        for o in program:
            base_commit = base.trace[o.seq]["commit"]
            seq_commit = seq.trace[o.seq]["commit"]
            # Chain depth bounds total slip; program length bounds depth.
            assert seq_commit - base_commit <= len(program)

    @settings(max_examples=20, deadline=None)
    @given(program=random_program())
    def test_base_equals_itself(self, program):
        """Determinism across identical runs."""
        first = run(program, BASE)
        second = run(program, BASE)
        assert [first.trace[o.seq]["issues"] for o in program] == [
            second.trace[o.seq]["issues"] for o in program
        ]
