"""Tests for machine configuration (Table 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass
from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    FunctionalUnitPool,
    Latencies,
    MachineConfig,
    RecoveryModel,
    RegFileModel,
    SchedulerModel,
)


class TestTable1:
    def test_four_wide(self):
        assert FOUR_WIDE.width == 4
        assert FOUR_WIDE.ruu_size == 64
        assert FOUR_WIDE.lsq_size == 32
        assert FOUR_WIDE.fu.int_alu == 4
        assert FOUR_WIDE.fu.fp_alu == 2
        assert FOUR_WIDE.fu.int_mult == 2
        assert FOUR_WIDE.fu.mem_ports == 2

    def test_eight_wide(self):
        assert EIGHT_WIDE.width == 8
        assert EIGHT_WIDE.ruu_size == 128
        assert EIGHT_WIDE.lsq_size == 64
        assert EIGHT_WIDE.fu.int_alu == 8
        assert EIGHT_WIDE.fu.mem_ports == 4

    def test_latencies(self):
        lat = Latencies()
        assert lat.for_class(OpClass.INT_ALU) == 1
        assert lat.for_class(OpClass.FP_ALU) == 2
        assert lat.for_class(OpClass.INT_MULT) == 3
        assert lat.for_class(OpClass.INT_DIV) == 20
        assert lat.for_class(OpClass.FP_MULT) == 4
        assert lat.for_class(OpClass.FP_DIV) == 12

    def test_memory_latencies(self):
        assert FOUR_WIDE.mem.dl1_latency == 2
        assert FOUR_WIDE.mem.l2_latency == 8
        assert FOUR_WIDE.mem.memory_latency == 50

    def test_phys_regs(self):
        assert FOUR_WIDE.num_phys_regs == 160


class TestDerivedProperties:
    def test_assumed_load_latency(self):
        assert FOUR_WIDE.assumed_load_latency == 3

    def test_extra_stage_deepens(self):
        config = FOUR_WIDE.with_techniques(regfile=RegFileModel.EXTRA_STAGE)
        assert config.exec_offset == FOUR_WIDE.exec_offset + 1
        assert config.assumed_load_latency == 4

    def test_total_read_ports(self):
        assert FOUR_WIDE.total_read_ports == 8
        seq = FOUR_WIDE.with_techniques(regfile=RegFileModel.SEQUENTIAL)
        assert seq.total_read_ports == 4
        xbar = FOUR_WIDE.with_techniques(regfile=RegFileModel.CROSSBAR)
        assert xbar.total_read_ports == 4

    def test_fu_count_lookup(self):
        assert FOUR_WIDE.fu.count_for(OpClass.BRANCH) == 4
        assert FOUR_WIDE.fu.count_for(OpClass.LOAD) == 2
        with pytest.raises(ConfigurationError):
            FOUR_WIDE.fu.count_for(OpClass.NOP)


class TestVariants:
    def test_with_techniques_names(self):
        config = FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)
        assert "seq_wakeup" in config.name
        assert config.scheduler is SchedulerModel.SEQ_WAKEUP

    def test_nopred_name(self):
        config = FOUR_WIDE.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=None
        )
        assert "nopred" in config.name

    def test_combined_name(self):
        config = FOUR_WIDE.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, regfile=RegFileModel.SEQUENTIAL
        )
        assert "seq_wakeup" in config.name and "sequential" in config.name

    def test_explicit_name(self):
        config = FOUR_WIDE.with_techniques(name="my-machine")
        assert config.name == "my-machine"

    def test_base_unchanged(self):
        FOUR_WIDE.with_techniques(scheduler=SchedulerModel.TAG_ELIM)
        assert FOUR_WIDE.scheduler is SchedulerModel.BASE

    def test_recovery_variant(self):
        config = FOUR_WIDE.with_techniques(recovery=RecoveryModel.SELECTIVE)
        assert config.recovery is RecoveryModel.SELECTIVE


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig("bad", 0, 64, 32, FOUR_WIDE.fu)

    def test_window_smaller_than_width_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig("bad", 8, 4, 32, FOUR_WIDE.fu)

    def test_non_power_of_two_predictor_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig("bad", 4, 64, 32, FOUR_WIDE.fu, predictor_entries=1000)
