"""Tests for run-loop termination: feed exhaustion, budgets, warmup edges."""

from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import Processor, simulate
from repro.workloads import EmulatorFeed, SyntheticWorkload, get_profile, kernel_program
from tests.util import ScriptedFeed, op


class TestFeedExhaustion:
    def test_short_feed_drains_cleanly(self):
        """The pipeline drains when the feed ends before the budget."""
        ops = [op(i, dest=1 + (i % 8), srcs=(20,)) for i in range(10)]
        result = simulate(ScriptedFeed(ops), FOUR_WIDE, max_insts=10_000, warmup=0)
        assert result.stats.committed == 10

    def test_feed_shorter_than_warmup(self):
        """Warmup larger than the program: everything still retires and the
        measured window is simply empty."""
        ops = [op(i, dest=1 + (i % 8), srcs=(20,)) for i in range(10)]
        result = simulate(ScriptedFeed(ops), FOUR_WIDE, max_insts=100, warmup=1_000)
        assert result.total_committed == 10
        assert result.stats.committed <= 10

    def test_empty_feed(self):
        result = simulate(ScriptedFeed([]), FOUR_WIDE, max_insts=100, warmup=0)
        assert result.stats.committed == 0
        assert result.total_cycles < 10

    def test_budget_cuts_infinite_feed(self):
        workload = SyntheticWorkload(get_profile("gzip"), seed=1)
        result = simulate(workload, FOUR_WIDE, max_insts=500, warmup=0)
        assert 500 <= result.stats.committed <= 500 + FOUR_WIDE.width


class TestWarmupBoundary:
    def test_warmup_resets_counters_not_state(self):
        feed = EmulatorFeed(kernel_program("vector_sum", n=400), name="vs")
        processor = Processor(feed, FOUR_WIDE)
        result = processor.run(max_insts=500, warmup=500)
        # Caches stay warm across the boundary: the measured window should
        # see a much lower DL1 miss rate than a cold run of the same size.
        assert result.stats.committed >= 500 - FOUR_WIDE.width
        assert result.total_committed >= 1000 - FOUR_WIDE.width

    def test_zero_warmup(self):
        workload = SyntheticWorkload(get_profile("eon"), seed=4)
        result = simulate(workload, FOUR_WIDE, max_insts=300, warmup=0)
        assert result.total_committed == result.stats.committed


class TestResultFields:
    def test_result_metadata(self):
        workload = SyntheticWorkload(get_profile("vpr"), seed=2)
        result = simulate(workload, FOUR_WIDE, max_insts=200, warmup=100)
        assert result.config_name == "4-wide"
        assert result.workload_name == "vpr"
        assert result.total_cycles > 0
        assert result.ipc == result.stats.ipc
