"""Regression tests for in-flight fill (MSHR) semantics across replays.

A load squashed after issuing must not access the cache again on re-issue:
the original line fill stays in flight.  Without this, squashed loads act
as self-prefetches, converting their misses into hits and systematically
flattering whichever recovery scheme squashes more loads.
"""

import dataclasses

from repro.pipeline.config import FOUR_WIDE, RecoveryModel
from repro.pipeline.processor import Processor
from repro.workloads import SyntheticWorkload, get_profile
from tests.util import ScriptedFeed, op

BASE = dataclasses.replace(FOUR_WIDE, name="mshr-4w", ruu_size=32, lsq_size=16)


def run(ops, config=BASE):
    processor = Processor(ScriptedFeed(ops), config, record_schedule=True)
    processor.run(max_insts=len(ops), warmup=0)
    return processor


class TestSingleAccessPerLoad:
    def test_squashed_load_does_not_reaccess(self):
        """A dependent load issued in a miss shadow is squashed and
        re-issued; the cache must see exactly one access per load."""
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x5000),   # cold miss
            # dependent load: address depends on the missing load
            op(1, "LDQ", dest=2, srcs=(1,), mem_addr=0x6000),
            op(2, dest=3, srcs=(2,)),
        ]
        processor = run(ops)
        assert processor.stats.load_miss_replays >= 1
        # Two loads, two DL1 accesses — no replay re-access.
        assert processor.memory.dl1.stats.accesses == 2

    def test_refill_timing_preserved_across_replay(self):
        """The re-issued dependent load's data still arrives no earlier
        than its own memory latency from its first access."""
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x5000),
            op(1, "LDQ", dest=2, srcs=(1,), mem_addr=0x6000),   # also misses
            op(2, dest=3, srcs=(2,)),
        ]
        processor = run(ops)
        trace = processor.trace
        first_issue_b = trace[1]["issues"][0]
        # B missed to memory: 2 + 8 + 50 cycles after its AGEN.
        assert trace[1]["complete"] >= first_issue_b + 1 + 60

    def test_no_deadlock_when_fill_lands_in_kill_shadow(self):
        """A re-issued load whose fill falls inside its own kill shadow
        must still re-broadcast (regression: the kill used to invalidate
        the real broadcast, deadlocking consumers)."""
        workload = SyntheticWorkload(get_profile("mcf"), seed=42)
        processor = Processor(workload, BASE)
        result = processor.run(max_insts=4000, warmup=4000)
        assert result.stats.committed >= 4000 - BASE.width


class TestRecoverySchemesSeeSameMemory:
    def test_dl1_miss_rate_independent_of_recovery(self):
        """Recovery policy reorders issues but must not change which loads
        miss: every load accesses the cache exactly once, in issue order of
        its first issue."""
        workload = SyntheticWorkload(get_profile("mcf"), seed=42)
        rates = {}
        for recovery in (RecoveryModel.NON_SELECTIVE, RecoveryModel.SELECTIVE):
            config = dataclasses.replace(BASE, recovery=recovery, name=f"r-{recovery.value}")
            processor = Processor(workload, config)
            processor.run(max_insts=6000, warmup=6000)
            rates[recovery] = processor.memory.dl1.stats.miss_rate
        non_sel = rates[RecoveryModel.NON_SELECTIVE]
        sel = rates[RecoveryModel.SELECTIVE]
        assert abs(non_sel - sel) < 0.02, rates

    def test_selective_not_worse_on_miss_heavy_workload(self):
        workload = SyntheticWorkload(get_profile("mcf"), seed=42)
        ipcs = {}
        for recovery in (RecoveryModel.NON_SELECTIVE, RecoveryModel.SELECTIVE):
            config = dataclasses.replace(BASE, recovery=recovery, name=f"r-{recovery.value}")
            processor = Processor(workload, config)
            ipcs[recovery] = processor.run(max_insts=6000, warmup=6000).ipc
        assert ipcs[RecoveryModel.SELECTIVE] >= ipcs[RecoveryModel.NON_SELECTIVE] * 0.97
