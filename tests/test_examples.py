"""Smoke tests: every example script must run to completion."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: Fast argument sets so the whole module stays test-suite friendly.
_CASES = {
    "quickstart.py": ["fibonacci"],
    "halfprice_comparison.py": ["--benchmarks", "gzip", "--insts", "800", "--warmup", "1200"],
    "spec_characterization.py": ["--benchmarks", "gzip", "--insts", "600", "--warmup", "900"],
    "circuit_timing.py": [],
    "custom_workload.py": [],
    "trace_capture.py": ["--ops", "3000"],
    "dependence_matrix_demo.py": [],
}


def run_example(name, args):
    return subprocess.run(
        [sys.executable, str(_EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", sorted(_CASES))
def test_example_runs(name):
    result = run_example(name, _CASES[name])
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"


def test_all_examples_covered():
    """Every example script has a smoke test (keep _CASES in sync)."""
    on_disk = {
        p.name for p in _EXAMPLES.glob("*.py") if not p.name.startswith("generate")
    }
    assert on_disk == set(_CASES)
