"""Tests for the analytic circuit timing models (paper anchor numbers)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.timing.regfile_delay import RegisterFileDelayModel
from repro.timing.technology import TECH_0_13_UM, TECH_0_18_UM, TECH_0_25_UM, TechnologyNode
from repro.timing.wakeup_delay import WakeupDelayModel


class TestTechnology:
    def test_reference_scale(self):
        assert TECH_0_18_UM.delay_scale == pytest.approx(1.0)

    def test_scaling_direction(self):
        assert TECH_0_25_UM.delay_scale > 1.0 > TECH_0_13_UM.delay_scale

    def test_bad_feature_size(self):
        with pytest.raises(ConfigurationError):
            TechnologyNode("bad", 0.0)


class TestWakeupAnchors:
    """Section 3.3: 466 ps -> 374 ps, a 24.6 % speedup."""

    model = WakeupDelayModel()

    def test_conventional_466ps(self):
        assert self.model.conventional_delay(64, 4) == pytest.approx(466.0, abs=0.5)

    def test_sequential_374ps(self):
        assert self.model.sequential_wakeup_delay(64, 4) == pytest.approx(374.0, abs=0.5)

    def test_speedup_24_6_percent(self):
        # The paper calls (466-374)/374 = 24.6% a "speedup over a
        # conventional scheduler"; as a fractional delay drop it is 19.7%.
        base = self.model.conventional_delay(64, 4)
        fast = self.model.sequential_wakeup_delay(64, 4)
        assert (base - fast) / fast == pytest.approx(0.246, abs=0.005)


class TestWakeupShape:
    model = WakeupDelayModel()

    def test_monotone_in_entries(self):
        delays = [self.model.wakeup_delay(n, 2.0) for n in (16, 32, 64, 128)]
        assert delays == sorted(delays)
        # Quadratic wire term: growth accelerates.
        assert delays[3] - delays[2] > delays[1] - delays[0]

    def test_monotone_in_comparators(self):
        assert self.model.wakeup_delay(64, 2.0) > self.model.wakeup_delay(64, 1.0)

    def test_wider_machine_slower(self):
        assert self.model.wakeup_delay(64, 2.0, width=8) > self.model.wakeup_delay(64, 2.0, width=4)

    def test_select_grows_with_window(self):
        assert self.model.select_delay(128) > self.model.select_delay(32)

    def test_scheduler_delay_is_sum(self):
        total = self.model.scheduler_delay(64, 2.0)
        assert total == pytest.approx(
            self.model.wakeup_delay(64, 2.0) + self.model.select_delay(64)
        )

    def test_technology_scaling(self):
        slow = WakeupDelayModel(TECH_0_25_UM)
        assert slow.conventional_delay(64) > self.model.conventional_delay(64)

    @pytest.mark.parametrize("bad", [(0, 2.0), (64, 0.0)])
    def test_invalid_parameters(self, bad):
        with pytest.raises(ConfigurationError):
            self.model.wakeup_delay(*bad)

    @settings(max_examples=30, deadline=None)
    @given(entries=st.integers(8, 512))
    def test_sequential_always_faster(self, entries):
        assert self.model.sequential_wakeup_delay(entries) < self.model.conventional_delay(entries)


class TestRegisterFileAnchors:
    """Section 4: 1.71 ns -> 1.36 ns (−20.5 %) at 24 -> 16 ports."""

    model = RegisterFileDelayModel()

    def test_24_port_access_time(self):
        assert self.model.access_time(160, 24) == pytest.approx(1.71, abs=0.005)

    def test_16_port_access_time(self):
        assert self.model.access_time(160, 16) == pytest.approx(1.36, abs=0.005)

    def test_20_5_percent_drop(self):
        assert self.model.port_reduction_speedup(160, 24, 16) == pytest.approx(0.205, abs=0.005)

    def test_paper_anchor_helper(self):
        full, reduced = self.model.paper_anchor()
        assert full == pytest.approx(1.71, abs=0.005)
        assert reduced == pytest.approx(1.36, abs=0.005)


class TestRegisterFileShape:
    model = RegisterFileDelayModel()

    def test_monotone_in_ports(self):
        times = [self.model.access_time(160, p) for p in (8, 16, 24, 32)]
        assert times == sorted(times)

    def test_monotone_in_entries(self):
        assert self.model.access_time(320, 16) > self.model.access_time(160, 16)

    def test_area_quadratic_in_ports(self):
        """Doubling ports should roughly quadruple area at high port counts."""
        small = self.model.relative_area(160, 16)
        large = self.model.relative_area(160, 32)
        assert 3.0 < large / small < 4.5

    def test_technology_scaling(self):
        slow = RegisterFileDelayModel(TECH_0_25_UM)
        assert slow.access_time(160, 16) > self.model.access_time(160, 16)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            self.model.access_time(0, 16)
        with pytest.raises(ConfigurationError):
            self.model.relative_area(160, 0)

    @settings(max_examples=30, deadline=None)
    @given(entries=st.integers(16, 1024), ports=st.integers(2, 64))
    def test_positive_and_finite(self, entries, ports):
        time = self.model.access_time(entries, ports)
        assert 0.0 < time < 100.0
