"""Tests for the relative energy models."""

import pytest

from repro.timing.regfile_delay import RegisterFileDelayModel
from repro.timing.wakeup_delay import WakeupDelayModel


class TestBroadcastEnergy:
    model = WakeupDelayModel()

    def test_sequential_bus_cheaper(self):
        base = self.model.broadcast_energy(64, 2.0)
        fast = self.model.broadcast_energy(64, 1.0)
        assert fast < base

    def test_scales_with_entries(self):
        assert self.model.broadcast_energy(128, 2.0) > self.model.broadcast_energy(64, 2.0)

    def test_two_fast_broadcasts_still_cheaper_than_one_conventional(self):
        """Even paying the slow re-broadcast for every instruction, the two
        half-length buses switch less charge than one full bus only when
        comparator load dominates; at minimum they are comparable."""
        conventional = self.model.broadcast_energy(64, 2.0)
        fast_plus_slow = 2 * self.model.broadcast_energy(64, 1.0)
        assert fast_plus_slow < conventional * 1.35


class TestReadEnergy:
    model = RegisterFileDelayModel()

    def test_fewer_ports_cheaper(self):
        assert self.model.read_energy(160, 16) < self.model.read_energy(160, 24)

    def test_scales_with_entries(self):
        assert self.model.read_energy(320, 16) > self.model.read_energy(160, 16)

    def test_positive(self):
        assert self.model.read_energy(32, 2) > 0.0
