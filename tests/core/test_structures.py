"""Unit tests for issue-queue entries, the scoreboard, and select logic."""

import pytest

from repro.core.iq import EntryState, IQEntry, Operand
from repro.core.last_arrival import OperandSide
from repro.core.scoreboard import Scoreboard
from repro.core.select import Selector, select_priority
from repro.isa.opcodes import OpClass
from repro.workloads.trace import DynOp


def dynop(seq=0, opcode="ADD", op_class=OpClass.INT_ALU, deps=(2, 3), dest=1):
    return DynOp(seq, seq, opcode, op_class, dest=dest, sched_deps=tuple(deps))


def entry_with(deps=(2, 3), ready=(), insert=5, seq=0, opcode="ADD",
               op_class=OpClass.INT_ALU):
    operands = []
    for index, dep in enumerate(deps):
        side = OperandSide.LEFT if index == 0 else OperandSide.RIGHT
        operand = Operand(None if index in ready else 100 + dep, side)
        operands.append(operand)
    return IQEntry(dynop(seq, opcode, op_class, deps), seq, operands, insert)


class TestOperand:
    def test_pending_until_woken(self):
        operand = Operand(7, OperandSide.LEFT)
        assert not operand.ready
        operand.wake(10)
        assert operand.ready and operand.ready_cycle == 10

    def test_now_bit_only_in_wake_cycle(self):
        operand = Operand(7, OperandSide.LEFT)
        operand.wake(10)
        assert operand.woke_now(10)
        assert not operand.woke_now(11)

    def test_insert_ready_has_no_now_bit(self):
        operand = Operand(None, OperandSide.LEFT)
        assert operand.ready
        assert not operand.woke_now(0)

    def test_unwake_preserves_first_wake_stat(self):
        operand = Operand(7, OperandSide.LEFT)
        operand.wake(10)
        operand.unwake()
        assert not operand.ready
        assert operand.first_wake_cycle == 10
        operand.wake(20)
        assert operand.first_wake_cycle == 10


class TestIQEntry:
    def test_ready_counting(self):
        entry = entry_with(deps=(2, 3), ready=(0,))
        assert entry.stat_ready_at_insert == 1
        assert not entry.is_two_pending

    def test_two_pending(self):
        entry = entry_with(deps=(2, 3))
        assert entry.is_two_pending

    def test_operand_on_side(self):
        entry = entry_with(deps=(2, 3))
        assert entry.operand_on(OperandSide.LEFT) is entry.operands[0]
        assert entry.operand_on(OperandSide.RIGHT) is entry.operands[1]

    def test_all_ready(self):
        entry = entry_with(deps=(2, 3))
        assert not entry.all_register_operands_ready()
        for operand in entry.operands:
            operand.wake(1)
        assert entry.all_register_operands_ready()

    def test_reset_for_replay_clears_invalid_operands(self):
        entry = entry_with(deps=(2, 3))
        entry.operands[0].wake(1)
        entry.operands[1].wake(2)
        entry.state = EntryState.ISSUED
        entry.reset_for_replay(lambda tag: tag != 102)  # producer of dep 2 invalid
        assert entry.state is EntryState.WAITING
        assert not entry.operands[0].ready
        assert entry.operands[1].ready
        assert entry.replays == 1

    def test_eligible_cycle_defaults_to_insert_plus_one(self):
        assert entry_with(insert=9).eligible_cycle == 10


class TestScoreboard:
    def test_absent_tags_are_valid(self):
        board = Scoreboard()
        assert board.is_valid(12345)
        assert board.data_ready_by(12345, 0)

    def test_broadcast_lifecycle(self):
        board = Scoreboard()
        board.allocate(1, None)
        assert not board.is_valid(1)
        board.mark_broadcast(1, 10)
        assert board.is_valid(1)
        assert board.data_ready_by(1, 10)
        assert not board.data_ready_by(1, 9)

    def test_invalidate_returns_consumers(self):
        board = Scoreboard()
        board.allocate(1, None)
        entry = entry_with(deps=(2,))
        board.add_consumer(1, entry, 0)
        board.mark_broadcast(1, 5)
        consumers = board.invalidate(1)
        assert consumers == [(entry, 0)]
        assert not board.is_valid(1)

    def test_rebroadcast_after_invalidate(self):
        board = Scoreboard()
        board.allocate(1, None)
        board.mark_broadcast(1, 5)
        board.invalidate(1)
        board.mark_broadcast(1, 20)
        assert board.is_valid(1)
        assert board.data_ready_by(1, 20)

    def test_consumers_survive_invalidation(self):
        board = Scoreboard()
        board.allocate(1, None)
        entry = entry_with(deps=(2,))
        board.add_consumer(1, entry, 0)
        board.invalidate(1)
        assert board.invalidate(1) == [(entry, 0)]

    def test_free(self):
        board = Scoreboard()
        board.allocate(1, None)
        board.free(1)
        assert board.get(1) is None
        assert board.is_valid(1)

    def test_add_consumer_to_missing_tag_is_noop(self):
        board = Scoreboard()
        board.add_consumer(42, entry_with(), 0)  # must not raise


class TestSelectPriority:
    def test_loads_and_branches_outrank_alu(self):
        load = entry_with(deps=(), seq=10, opcode="LDQ", op_class=OpClass.LOAD)
        branch = entry_with(deps=(), seq=11, opcode="BEQ", op_class=OpClass.BRANCH)
        alu = entry_with(deps=(), seq=1, opcode="ADD", op_class=OpClass.INT_ALU)
        ordered = Selector(4).order([alu, branch, load])
        assert ordered[0] is load and ordered[1] is branch and ordered[2] is alu

    def test_age_breaks_ties(self):
        older = entry_with(deps=(), seq=3)
        younger = entry_with(deps=(), seq=9)
        assert Selector(4).order([younger, older])[0] is older

    def test_priority_key_shape(self):
        load = entry_with(deps=(), seq=5, opcode="LDQ", op_class=OpClass.LOAD)
        assert select_priority(load) == (0, 5)


class TestSelectorSlots:
    def test_slot_budget(self):
        selector = Selector(2)
        selector.begin_cycle()
        assert selector.take_slot() == 0
        assert selector.take_slot() == 1
        assert selector.take_slot() == -1

    def test_bubble_disables_slot_next_cycle(self):
        selector = Selector(2)
        selector.begin_cycle()
        selector.take_slot(bubble_next=True)
        selector.begin_cycle()
        assert selector.available_slots == 1
        selector.begin_cycle()
        assert selector.available_slots == 2

    def test_two_bubbles(self):
        selector = Selector(4)
        selector.begin_cycle()
        selector.take_slot(bubble_next=True)
        selector.take_slot(bubble_next=True)
        selector.begin_cycle()
        assert selector.available_slots == 2
