"""Tests for last-arriving operand predictors (Section 3.2 / Figure 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.last_arrival import (
    LastArrivalPredictor,
    OperandSide,
    ShadowPredictorBank,
    StaticLastArrival,
)
from repro.errors import ConfigurationError


class TestOperandSide:
    def test_other(self):
        assert OperandSide.LEFT.other is OperandSide.RIGHT
        assert OperandSide.RIGHT.other is OperandSide.LEFT


class TestStaticPolicy:
    def test_always_right(self):
        policy = StaticLastArrival()
        assert policy.predict(0) is OperandSide.RIGHT
        assert policy.predict(999) is OperandSide.RIGHT

    def test_update_is_noop(self):
        policy = StaticLastArrival()
        policy.update(5, OperandSide.LEFT)
        assert policy.predict(5) is OperandSide.RIGHT


class TestBimodalPredictor:
    def test_initial_bias_is_right(self):
        assert LastArrivalPredictor(128).predict(7) is OperandSide.RIGHT

    def test_learns_left(self):
        predictor = LastArrivalPredictor(128)
        for _ in range(4):
            predictor.update(7, OperandSide.LEFT)
        assert predictor.predict(7) is OperandSide.LEFT

    def test_hysteresis(self):
        predictor = LastArrivalPredictor(128)
        for _ in range(4):
            predictor.update(7, OperandSide.LEFT)
        predictor.update(7, OperandSide.RIGHT)
        assert predictor.predict(7) is OperandSide.LEFT  # one update not enough

    def test_direct_mapped_aliasing(self):
        predictor = LastArrivalPredictor(128)
        for _ in range(4):
            predictor.update(0, OperandSide.LEFT)
        assert predictor.predict(128) is OperandSide.LEFT  # same entry

    def test_accuracy_bookkeeping(self):
        predictor = LastArrivalPredictor(128)
        predictor.record_outcome(OperandSide.LEFT, OperandSide.LEFT)
        predictor.record_outcome(OperandSide.LEFT, OperandSide.RIGHT)
        assert predictor.accuracy == pytest.approx(0.5)

    def test_empty_accuracy(self):
        assert LastArrivalPredictor(128).accuracy == 0.0

    @pytest.mark.parametrize("bad", [0, 3, 100, -8])
    def test_bad_sizes_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            LastArrivalPredictor(bad)

    def test_stable_pattern_reaches_high_accuracy(self):
        """A per-PC stable last side is predicted ~perfectly (Table 3)."""
        predictor = LastArrivalPredictor(1024)
        correct = 0
        for step in range(200):
            side = OperandSide.LEFT if (step % 7) else OperandSide.RIGHT
            pc = step % 7
            truth = OperandSide.LEFT if pc else OperandSide.RIGHT
            predicted = predictor.predict(pc)
            if step >= 50:
                correct += predicted is truth
            predictor.update(pc, truth)
        assert correct / 150 > 0.95


class TestShadowBank:
    def test_bank_trains_all_sizes(self):
        bank = ShadowPredictorBank((128, 512))
        for _ in range(10):
            bank.observe(42, OperandSide.LEFT)
        table = bank.accuracy_table()
        assert set(table) == {128, 512}
        assert all(acc > 0.5 for acc in table.values())

    def test_simultaneous_counted_not_trained(self):
        bank = ShadowPredictorBank((128,))
        bank.observe(42, None)
        bank.observe(42, OperandSide.LEFT)
        assert bank.simultaneous == 1
        assert bank.samples == 2
        assert bank.frac_simultaneous == pytest.approx(0.5)
        assert bank.predictors[128].predictions == 1

    def test_empty_bank(self):
        assert ShadowPredictorBank((128,)).frac_simultaneous == 0.0

    def test_larger_tables_no_worse_under_aliasing(self):
        """With many PCs, bigger tables suffer less destructive aliasing
        (the Figure 7 trend)."""
        bank = ShadowPredictorBank((128, 4096))
        import random

        rng = random.Random(9)
        truth = {pc: rng.choice(list(OperandSide)) for pc in range(1500)}
        for step in range(30_000):
            pc = rng.randrange(1500)
            bank.observe(pc * 17, truth[pc])
        table = bank.accuracy_table()
        assert table[4096] >= table[128]


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4095), st.booleans()), max_size=150))
    def test_predictor_never_crashes(self, stream):
        predictor = LastArrivalPredictor(256)
        for pc, left in stream:
            side = OperandSide.LEFT if left else OperandSide.RIGHT
            assert predictor.predict(pc) in (OperandSide.LEFT, OperandSide.RIGHT)
            predictor.update(pc, side)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**40))
    def test_huge_pcs_masked(self, pc):
        predictor = LastArrivalPredictor(64)
        predictor.update(pc, OperandSide.LEFT)
        assert predictor.predict(pc) in (OperandSide.LEFT, OperandSide.RIGHT)
