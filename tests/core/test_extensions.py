"""Tests for the Section 6 future-work extensions.

The paper's conclusion sketches half-price techniques for register
renaming and bypass logic; this repo implements them as machine options
(``RenameModel.HALF_PORTS``, ``BypassModel.HALF``).
"""

import dataclasses

from repro.pipeline.config import BypassModel, FOUR_WIDE, RenameModel
from repro.pipeline.processor import Processor
from tests.util import ScriptedFeed, op

BASE = dataclasses.replace(FOUR_WIDE, name="ext-4w", ruu_size=32, lsq_size=16)


def run(ops, config, max_insts=None):
    processor = Processor(ScriptedFeed(ops), config, record_schedule=True)
    processor.run(max_insts=max_insts or len(ops), warmup=0)
    return processor


def issues(processor, seq):
    return processor.trace[seq]["issues"]


class TestHalfPriceRename:
    def config(self):
        return BASE.with_techniques(rename=RenameModel.HALF_PORTS)

    def test_two_source_burst_throttles_dispatch(self):
        """Four 2-source instructions need 8 lookups: 2 dispatch cycles."""
        ops = [op(i, dest=1 + i, srcs=(20, 21)) for i in range(4)]
        base = run(ops, BASE)
        half = run(ops, self.config())
        base_inserts = {base.trace[i]["insert"] for i in range(4)}
        half_inserts = {half.trace[i]["insert"] for i in range(4)}
        assert len(base_inserts) == 1
        assert len(half_inserts) == 2
        assert half.stats.rename_port_stalls >= 1

    def test_single_source_burst_unaffected(self):
        ops = [op(i, dest=1 + i, srcs=(20,)) for i in range(4)]
        base = run(ops, BASE)
        half = run(ops, self.config())
        assert {half.trace[i]["insert"] for i in range(4)} == {
            base.trace[i]["insert"] for i in range(4)
        }
        assert half.stats.rename_port_stalls == 0

    def test_zero_source_ops_cost_one_token(self):
        """LDI-style zero-source ops still occupy a lookup slot."""
        ops = [op(i, dest=1 + i, srcs=()) for i in range(4)]
        half = run(ops, self.config())
        assert len({half.trace[i]["insert"] for i in range(4)}) == 1

    def test_name_tagging(self):
        assert "halfrename" in self.config().name


class TestHalfPriceBypass:
    def config(self):
        return BASE.with_techniques(bypass=BypassModel.HALF)

    def test_double_bypass_pays_one_cycle(self):
        """Consumer catching both operands off the bypass in one cycle."""
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, dest=2, srcs=(21,)),
            op(2, dest=3, srcs=(1, 2)),  # both producers broadcast together
            op(3, dest=4, srcs=(3,)),    # observes the +1 result latency
        ]
        base = run(ops, BASE)
        half = run(ops, self.config())
        assert half.stats.double_bypass_delays == 1
        assert issues(half, 3)[0] == issues(base, 3)[0] + 1

    def test_single_bypass_catch_is_free(self):
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, dest=2, srcs=(1, 21)),  # only one operand off the bypass
            op(2, dest=3, srcs=(2,)),
        ]
        base = run(ops, BASE)
        half = run(ops, self.config())
        assert half.stats.double_bypass_delays == 0
        assert issues(half, 2)[0] == issues(base, 2)[0]

    def test_register_read_operands_unaffected(self):
        """Operands ready at insert come from the register file, not the
        bypass, so the half bypass never penalizes them."""
        ops = [op(0, dest=1, srcs=(20, 21)), op(1, dest=2, srcs=(1,))]
        half = run(ops, self.config())
        assert half.stats.double_bypass_delays == 0

    def test_name_tagging(self):
        assert "halfbypass" in self.config().name


class TestAllTechniquesTogether:
    def test_full_half_price_machine_runs(self):
        """Every half-price option at once: the operand-centric design the
        paper's conclusion aims at."""
        from repro.pipeline.config import RegFileModel, SchedulerModel

        config = BASE.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP,
            regfile=RegFileModel.SEQUENTIAL,
            rename=RenameModel.HALF_PORTS,
            bypass=BypassModel.HALF,
        )
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, dest=2, srcs=(21,)),
            op(2, dest=3, srcs=(1, 2)),
            op(3, dest=4, srcs=(3, 22)),
            op(4, "LDQ", dest=5, srcs=(24,), mem_addr=0x100),
            op(5, dest=6, srcs=(5, 3)),
        ]
        processor = run(ops, config)
        assert processor.stats.committed == 6
