"""Unit tests for the wakeup strategy classes (base / sequential / tag-elim)."""

import pytest

from repro.core.iq import IQEntry, Operand
from repro.core.last_arrival import LastArrivalPredictor, OperandSide, StaticLastArrival
from repro.core.scoreboard import Scoreboard
from repro.core.wakeup import (
    BaseWakeup,
    SequentialWakeup,
    TagElimination,
    make_wakeup_logic,
)
from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass
from repro.pipeline.config import FOUR_WIDE, SchedulerModel
from repro.workloads.trace import DynOp


def two_source_entry(pc=100):
    op = DynOp(0, pc, "ADD", OpClass.INT_ALU, dest=1, sched_deps=(2, 3))
    operands = [Operand(50, OperandSide.LEFT), Operand(51, OperandSide.RIGHT)]
    return IQEntry(op, 0, operands, insert_cycle=0)


def one_source_entry():
    op = DynOp(0, 0, "ADD", OpClass.INT_ALU, dest=1, sched_deps=(2,))
    return IQEntry(op, 0, [Operand(50, OperandSide.LEFT)], insert_cycle=0)


class TestFactory:
    def test_base(self):
        logic = make_wakeup_logic(FOUR_WIDE)
        assert type(logic) is BaseWakeup

    def test_seq_wakeup(self):
        config = FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)
        assert isinstance(make_wakeup_logic(config), SequentialWakeup)

    def test_tag_elim(self):
        config = FOUR_WIDE.with_techniques(scheduler=SchedulerModel.TAG_ELIM)
        assert isinstance(make_wakeup_logic(config), TagElimination)

    def test_no_predictor_gives_static_policy(self):
        config = FOUR_WIDE.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=None
        )
        logic = make_wakeup_logic(config)
        assert isinstance(logic.predictor, StaticLastArrival)

    def test_seq_wakeup_requires_policy(self):
        with pytest.raises(ConfigurationError):
            SequentialWakeup(None)
        with pytest.raises(ConfigurationError):
            TagElimination(None)


class TestBaseWakeup:
    def test_zero_delay_everywhere(self):
        logic = BaseWakeup(StaticLastArrival())
        entry = two_source_entry()
        assert logic.delivery_delay(entry, entry.operands[0]) == 0
        assert logic.delivery_delay(entry, entry.operands[1]) == 0

    def test_ready_requires_all_operands(self):
        logic = BaseWakeup()
        entry = two_source_entry()
        assert not logic.entry_ready(entry)
        entry.operands[0].wake(1)
        assert not logic.entry_ready(entry)
        entry.operands[1].wake(2)
        assert logic.entry_ready(entry)

    def test_verify_always_true(self):
        logic = BaseWakeup()
        assert logic.verify_at_issue(two_source_entry(), Scoreboard(), 0)


class TestSequentialWakeupStrategy:
    def test_fast_side_follows_prediction(self):
        predictor = LastArrivalPredictor(128)
        for _ in range(4):
            predictor.update(100, OperandSide.LEFT)
        logic = SequentialWakeup(predictor)
        entry = two_source_entry(pc=100)
        logic.assign_sides(entry)
        assert entry.fast_side is OperandSide.LEFT

    def test_slow_side_delay(self):
        logic = SequentialWakeup(StaticLastArrival())
        entry = two_source_entry()
        logic.assign_sides(entry)  # fast = RIGHT
        assert logic.delivery_delay(entry, entry.operands[1]) == 0
        assert logic.delivery_delay(entry, entry.operands[0]) == 1

    def test_single_operand_on_fast_bus(self):
        logic = SequentialWakeup(StaticLastArrival())
        entry = one_source_entry()
        logic.assign_sides(entry)
        assert logic.delivery_delay(entry, entry.operands[0]) == 0

    def test_never_issues_early(self):
        """Readiness still requires every operand: non-speculative."""
        logic = SequentialWakeup(StaticLastArrival())
        entry = two_source_entry()
        logic.assign_sides(entry)
        entry.operands[1].wake(1)  # fast side woke
        assert not logic.entry_ready(entry)

    def test_train_updates_predictor(self):
        predictor = LastArrivalPredictor(128)
        logic = SequentialWakeup(predictor)
        entry = two_source_entry(pc=100)
        for _ in range(4):
            logic.train(entry, OperandSide.LEFT)
        assert predictor.predict(100) is OperandSide.LEFT

    def test_train_skips_simultaneous(self):
        predictor = LastArrivalPredictor(128)
        logic = SequentialWakeup(predictor)
        before = predictor.predict(100)
        logic.train(two_source_entry(pc=100), None)
        assert predictor.predict(100) is before


class TestTagEliminationStrategy:
    def test_ready_on_connected_operand_alone(self):
        logic = TagElimination(StaticLastArrival())
        entry = two_source_entry()
        logic.assign_sides(entry)  # connected = RIGHT
        entry.operands[1].wake(1)
        assert logic.entry_ready(entry)  # speculating on the left operand

    def test_not_ready_before_connected(self):
        logic = TagElimination(StaticLastArrival())
        entry = two_source_entry()
        logic.assign_sides(entry)
        entry.operands[0].wake(1)  # only the eliminated side
        assert not logic.entry_ready(entry)

    def test_verify_detects_missing_operand(self):
        logic = TagElimination(StaticLastArrival())
        entry = two_source_entry()
        logic.assign_sides(entry)
        entry.operands[1].wake(1)
        assert not logic.verify_at_issue(entry, Scoreboard(), 1)

    def test_verify_passes_when_both_ready(self):
        logic = TagElimination(StaticLastArrival())
        entry = two_source_entry()
        logic.assign_sides(entry)
        board = Scoreboard()
        board.allocate(50, None)
        board.mark_broadcast(50, 0)
        entry.operands[0].wake(0)
        entry.operands[1].wake(1)
        assert logic.verify_at_issue(entry, board, 1)

    def test_full_readiness_after_replay(self):
        logic = TagElimination(StaticLastArrival())
        entry = two_source_entry()
        logic.assign_sides(entry)
        entry.replays = 1
        entry.operands[1].wake(1)
        assert not logic.entry_ready(entry)  # scoreboard path: needs both
        entry.operands[0].wake(2)
        assert logic.entry_ready(entry)

    def test_single_source_is_safe(self):
        logic = TagElimination(StaticLastArrival())
        entry = one_source_entry()
        logic.assign_sides(entry)
        assert logic.verify_at_issue(entry, Scoreboard(), 0)
