"""Tests for the Section 3.2 alternative predictor designs."""

import random

import pytest

from repro.core.last_arrival import (
    DesignComparisonBank,
    GShareLastArrival,
    LastArrivalPredictor,
    OperandSide,
    TwoLevelLastArrival,
    make_design_comparison,
)
from repro.errors import ConfigurationError


class TestTwoLevel:
    def test_learns_stable_per_pc_side(self):
        predictor = TwoLevelLastArrival(256)
        for _ in range(8):
            predictor.update(40, OperandSide.LEFT)
        assert predictor.predict(40) is OperandSide.LEFT

    def test_learns_alternation_bimodal_cannot(self):
        """An alternating per-PC pattern: two-level should converge while a
        bimodal counter hovers near chance."""
        two_level = TwoLevelLastArrival(1024, history_bits=4)
        bimodal = LastArrivalPredictor(1024)
        sides = [OperandSide.LEFT, OperandSide.RIGHT]
        correct = {"two": 0, "bi": 0}
        total = 0
        for step in range(600):
            side = sides[step % 2]
            if step >= 200:
                total += 1
                correct["two"] += two_level.predict(77) is side
                correct["bi"] += bimodal.predict(77) is side
            two_level.update(77, side)
            bimodal.update(77, side)
        assert correct["two"] / total > 0.9
        assert correct["bi"] / total < 0.7

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            TwoLevelLastArrival(100)


class TestGShare:
    def test_learns_global_pattern(self):
        predictor = GShareLastArrival(1024, history_bits=4)
        for _ in range(64):
            predictor.update(10, OperandSide.LEFT)
        assert predictor.predict(10) is OperandSide.LEFT

    def test_accuracy_bookkeeping(self):
        predictor = GShareLastArrival(256)
        predictor.record_outcome(OperandSide.LEFT, OperandSide.LEFT)
        assert predictor.accuracy == 1.0

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            GShareLastArrival(0)


class TestDesignComparison:
    def test_factory_designs(self):
        designs = make_design_comparison(256)
        assert set(designs) == {"bimodal", "two-level", "gshare", "static-right"}

    def test_bank_trains_all(self):
        bank = DesignComparisonBank(256)
        rng = random.Random(3)
        truth = {pc: rng.choice(list(OperandSide)) for pc in range(40)}
        for step in range(2000):
            pc = rng.randrange(40)
            bank.observe(pc, truth[pc])
        table = bank.accuracy_table()
        assert bank.samples == 2000
        # Per-PC-stable behaviour: every trainable design ends accurate,
        # and the bimodal is competitive (the paper's conclusion).
        assert table["bimodal"] > 0.9
        assert table["bimodal"] >= table["gshare"] - 0.05

    def test_simultaneous_skipped(self):
        bank = DesignComparisonBank(256)
        bank.observe(1, None)
        assert bank.samples == 0
