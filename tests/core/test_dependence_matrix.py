"""Tests for the Figure 5 dependence-matrix machinery.

The matrix is cross-checked against the scoreboard cascade during
selective-recovery kills: for bus-delivered wakeup schemes the two must
agree (zero mismatches), while tag elimination's removed comparator makes
the matrix blind — executable proof of the paper's Section 3.1 argument.
"""

import dataclasses

import pytest

from repro.core.dependence_matrix import DependenceMatrix
from repro.pipeline.config import FOUR_WIDE, RecoveryModel, SchedulerModel
from repro.pipeline.processor import Processor
from repro.workloads import SyntheticWorkload, get_profile
from tests.util import ScriptedFeed, op

BASE = dataclasses.replace(
    FOUR_WIDE,
    name="matrix-4w",
    ruu_size=32,
    lsq_size=16,
    recovery=RecoveryModel.SELECTIVE,
    use_dependence_matrix=True,
)


def run(ops, config=BASE, max_insts=None):
    processor = Processor(ScriptedFeed(ops), config, record_schedule=True)
    processor.run(max_insts=max_insts or len(ops), warmup=0)
    return processor


class TestMatrixUnit:
    def test_merge_and_match(self):
        a = DependenceMatrix(6)
        a.add_ancestor(10, 2)
        b = DependenceMatrix(6)
        b.add_ancestor(11, 0)
        b.merge(a)
        assert b.matches(10, 2) and b.matches(11, 0)
        assert not b.matches(10, 0)

    def test_prune_phases_out_old_bits(self):
        matrix = DependenceMatrix(4)
        matrix.add_ancestor(10, 1)
        matrix.prune(14)
        assert matrix.matches(10, 1)
        matrix.prune(15)
        assert not matrix.matches(10, 1)

    def test_snapshot_is_independent(self):
        matrix = DependenceMatrix(4)
        matrix.add_ancestor(1, 1)
        copy = matrix.snapshot()
        matrix.add_ancestor(2, 2)
        assert not copy.matches(2, 2)
        assert copy.matches(1, 1)

    def test_len_and_contains(self):
        matrix = DependenceMatrix(4, [(1, 0), (2, 1)])
        assert len(matrix) == 2
        assert (1, 0) in matrix
        matrix.clear()
        assert len(matrix) == 0


class TestMatrixAgreesWithCascade:
    def test_direct_dependent(self):
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x5000),  # cold miss
            op(1, dest=2, srcs=(1,)),
        ]
        processor = run(ops)
        assert processor.stats.load_miss_replays >= 1
        assert processor.matrix_mismatches == 0

    def test_transitive_chain(self):
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x6000),
            op(1, dest=2, srcs=(1,)),
            op(2, dest=3, srcs=(2,)),
            op(3, dest=4, srcs=(3, 21)),
        ]
        processor = run(ops)
        assert processor.matrix_mismatches == 0
        assert len(processor.trace[2]["issues"]) == 2  # replayed transitively

    def test_two_parent_merge(self):
        """A child of the load through BOTH operands; matrices must merge."""
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x7000),
            op(1, dest=2, srcs=(1,)),
            op(2, dest=3, srcs=(1, 2)),
        ]
        processor = run(ops)
        assert processor.matrix_mismatches == 0

    def test_sequential_wakeup_compatible(self):
        """Section 3.3: slow-bus operands still observe the matrices, so
        sequential wakeup + selective recovery cross-checks cleanly."""
        config = BASE.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=None
        )
        config = dataclasses.replace(config, use_dependence_matrix=True)
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x8000),
            op(1, "MUL", dest=2, srcs=(21, 22)),
            op(2, dest=3, srcs=(2, 1)),  # load result on the slow side
            op(3, dest=4, srcs=(3,)),
        ]
        processor = run(ops, config)
        assert processor.stats.load_miss_replays >= 1
        assert processor.matrix_mismatches == 0

    def test_synthetic_workload_cross_check(self):
        """Whole-program cross-check on a miss-heavy synthetic benchmark."""
        config = dataclasses.replace(
            FOUR_WIDE,
            name="matrix-mcf",
            recovery=RecoveryModel.SELECTIVE,
            use_dependence_matrix=True,
        )
        workload = SyntheticWorkload(get_profile("mcf"), seed=11)
        processor = Processor(workload, config)
        processor.run(max_insts=3000, warmup=2000)
        assert processor.stats.load_miss_replays > 10
        assert processor.matrix_mismatches == 0


class TestTagEliminationIncompatibility:
    def test_eliminated_operand_blinds_matrix(self):
        """The removed comparator never receives the dependence broadcast,
        so matrix-based selective recovery would miss invalidations —
        the paper's impracticality argument, observed as mismatches."""
        config = dataclasses.replace(
            FOUR_WIDE.with_techniques(
                scheduler=SchedulerModel.TAG_ELIM, predictor_entries=None
            ),
            recovery=RecoveryModel.SELECTIVE,
            use_dependence_matrix=True,
            ruu_size=32,
            lsq_size=16,
        )
        # The load result arrives at the consumer's ELIMINATED (left) side:
        # the consumer issues on the connected right operand, the load
        # misses, and the cascade must invalidate an operand whose matrix
        # never saw the broadcast.
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x9000),  # cold miss
            op(1, dest=2, srcs=(21,)),
            op(2, dest=3, srcs=(1, 2)),  # left operand = load (eliminated)
            op(3, dest=4, srcs=(3,)),
        ]
        processor = run(ops, config)
        assert processor.matrix_mismatches > 0
