"""Cycle-accurate scheduler scenarios (the paper's Figures 9 and 12).

These tests hand-craft tiny dynamic instruction sequences and assert exact
relative issue timing under each wakeup/register-file model.  Registers
r20..r27 are never written, so operands naming them are ready at insert.
"""

import dataclasses

import pytest

from repro.pipeline.config import (
    FOUR_WIDE,
    MachineConfig,
    RecoveryModel,
    RegFileModel,
    SchedulerModel,
)
from repro.pipeline.processor import Processor
from tests.util import ScriptedFeed, op, store_op

BASE = dataclasses.replace(FOUR_WIDE, name="test-4w", ruu_size=32, lsq_size=16)


def run(ops, config, max_insts=None):
    processor = Processor(ScriptedFeed(ops), config, record_schedule=True)
    processor.run(max_insts=max_insts or len(ops), warmup=0)
    return processor


def issues(processor, seq):
    return processor.trace[seq]["issues"]


class TestBaseTiming:
    def test_back_to_back_alu(self):
        """A 1-cycle producer's consumer issues exactly one cycle later."""
        processor = run([op(0, dest=1), op(1, dest=2, srcs=(1, 20))], BASE)
        assert issues(processor, 1)[0] == issues(processor, 0)[0] + 1

    def test_mul_latency_gap(self):
        """A 3-cycle multiply's consumer issues three cycles later."""
        processor = run([op(0, "MUL", dest=1, srcs=(20, 21)), op(1, dest=2, srcs=(1,))], BASE)
        assert issues(processor, 1)[0] == issues(processor, 0)[0] + 3

    def test_load_hit_latency(self):
        """A DL1-hit load's consumer issues assumed-latency cycles later."""
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x100),  # cold miss, warms
            op(1, "LDQ", dest=2, srcs=(20,), mem_addr=0x100),  # hit
            op(2, dest=3, srcs=(2,)),
        ]
        processor = run(ops, BASE)
        assert issues(processor, 2)[0] == issues(processor, 1)[0] + BASE.assumed_load_latency

    def test_independent_ops_issue_together(self):
        ops = [op(0, dest=1, srcs=(20,)), op(1, dest=2, srcs=(21,))]
        processor = run(ops, BASE)
        assert issues(processor, 0)[0] == issues(processor, 1)[0]

    def test_width_limits_issue(self):
        """Five independent ALU ops on a 4-wide machine need two cycles
        (four integer ALUs, so the FU pool also allows exactly four)."""
        ops = [op(i, dest=1 + i, srcs=(20,)) for i in range(5)]
        processor = run(ops, BASE)
        cycles = sorted(issues(processor, i)[0] for i in range(5))
        assert cycles[3] == cycles[0] and cycles[4] == cycles[0] + 1

    def test_ready_at_insert_recorded(self):
        processor = run([op(0, dest=1, srcs=(20, 21))], BASE)
        assert processor.stats.ready_at_insert[2] == 1

    def test_two_pending_recorded(self):
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, "MUL", dest=2, srcs=(20, 21)),
            op(2, dest=3, srcs=(1, 2)),
        ]
        processor = run(ops, BASE)
        assert processor.stats.ready_at_insert[0] == 1
        assert processor.stats.two_pending_observed == 1
        # ADD broadcasts 2 cycles before MUL: slack 2, MUL (right) last.
        assert processor.stats.wakeup_slack[2] == 1
        assert processor.stats.order.last_right == 1


def seq_wakeup_config(predictor_entries):
    return BASE.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=predictor_entries
    )


class TestSequentialWakeup:
    """Static placement (no predictor): the RIGHT operand rides the fast bus."""

    def producer_consumer(self, consumer_srcs):
        return [
            op(0, dest=1, srcs=(20,)),            # ADD: broadcasts at t+1
            op(1, "MUL", dest=2, srcs=(20, 21)),  # MUL: broadcasts at t+3
            op(2, dest=3, srcs=consumer_srcs),
        ]

    def test_correct_prediction_has_no_penalty(self):
        """Last-arriving operand (MUL result) on the fast (right) side."""
        ops = self.producer_consumer((1, 2))
        base = run(ops, BASE)
        seq = run(ops, seq_wakeup_config(None))
        assert issues(seq, 2)[0] == issues(base, 2)[0]

    def test_misprediction_costs_one_cycle(self):
        """Last-arriving operand on the slow (left) side: +1 cycle."""
        ops = self.producer_consumer((2, 1))
        base = run(ops, BASE)
        seq = run(ops, seq_wakeup_config(None))
        assert issues(seq, 2)[0] == issues(base, 2)[0] + 1

    def test_simultaneous_wakeup_costs_one_cycle(self):
        """Both producers broadcast in the same cycle: always +1."""
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, dest=2, srcs=(21,)),
            op(2, dest=3, srcs=(1, 2)),
        ]
        base = run(ops, BASE)
        seq = run(ops, seq_wakeup_config(None))
        assert issues(seq, 2)[0] == issues(base, 2)[0] + 1
        assert seq.stats.simultaneous_wakeups == 1

    def test_single_source_never_penalized(self):
        ops = [op(0, "MUL", dest=1, srcs=(20, 21)), op(1, dest=2, srcs=(1,))]
        base = run(ops, BASE)
        seq = run(ops, seq_wakeup_config(None))
        assert issues(seq, 1)[0] == issues(base, 1)[0]

    def test_no_replays_ever(self):
        """Sequential wakeup is non-speculative: nothing is ever replayed
        because of operand readiness."""
        ops = self.producer_consumer((2, 1))
        seq = run(ops, seq_wakeup_config(None))
        assert seq.stats.tag_elim_misschedules == 0

    def test_predictor_learns_and_removes_penalty(self):
        """With a bimodal predictor, repeating the same PC trains the fast
        side onto the true last-arriving operand."""
        ops = []
        seq_no = 0
        for repeat in range(8):
            ops.append(op(seq_no, dest=1, srcs=(20,), pc=100)); seq_no += 1
            ops.append(op(seq_no, "MUL", dest=2, srcs=(20, 21), pc=101)); seq_no += 1
            ops.append(op(seq_no, dest=3, srcs=(2, 1), pc=102)); seq_no += 1  # left last
        base = run(ops, BASE)
        seq = run(ops, seq_wakeup_config(1024))
        # The last repetition should issue with no penalty.
        assert issues(seq, seq_no - 1)[-1] == issues(base, seq_no - 1)[-1]


class TestTagElimination:
    def tag_elim_config(self):
        return BASE.with_techniques(
            scheduler=SchedulerModel.TAG_ELIM, predictor_entries=None
        )

    def test_correct_prediction_matches_base(self):
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, "MUL", dest=2, srcs=(20, 21)),
            op(2, dest=3, srcs=(1, 2)),  # right (connected) arrives last
        ]
        base = run(ops, BASE)
        te = run(ops, self.tag_elim_config())
        assert issues(te, 2)[0] == issues(base, 2)[0]
        assert te.stats.tag_elim_misschedules == 0

    def test_misprediction_triggers_misschedule_and_replay(self):
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, "MUL", dest=2, srcs=(20, 21)),
            op(2, dest=3, srcs=(2, 1)),  # left (eliminated) arrives last
        ]
        te = run(ops, self.tag_elim_config())
        assert te.stats.tag_elim_misschedules == 1
        assert len(issues(te, 2)) == 2  # issued speculatively, then replayed
        # The re-issue cannot precede the eliminated operand's readiness.
        assert issues(te, 2)[-1] >= issues(te, 1)[0] + 3

    def test_misschedule_squashes_shadow_victims(self):
        """Non-selective recovery also replays independent instructions
        issued in the detection shadow."""
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, "MUL", dest=2, srcs=(20, 21)),
            op(2, dest=3, srcs=(2, 1)),            # misscheduled at t+1
            op(3, "ADDF", dest=40, srcs=(41, 63)),  # 2-cycle independent
            op(4, "ADDF", dest=42, srcs=(40,)),     # wakes at t+2: in shadow
        ]
        te = run(ops, self.tag_elim_config())
        assert te.stats.tag_elim_misschedules >= 1
        assert te.stats.replayed >= 2  # the mis-issue plus at least one victim
        assert len(issues(te, 4)) == 2


class TestLoadMissReplay:
    def miss_then_consumers(self):
        return [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x5000),  # cold: miss
            op(1, dest=2, srcs=(1,)),             # dependent
            op(2, "MUL", dest=3, srcs=(22, 23)),  # independent producer
            op(3, dest=4, srcs=(3,)),             # independent consumer
        ]

    def test_dependent_replays_on_miss(self):
        processor = run(self.miss_then_consumers(), BASE)
        assert processor.stats.load_miss_replays >= 1
        assert len(issues(processor, 1)) == 2
        # Final issue aligns with the real data broadcast, not the assumed hit.
        load_issue = issues(processor, 0)[0]
        assert issues(processor, 1)[-1] > load_issue + BASE.assumed_load_latency + 10

    def test_non_selective_squashes_independents_in_window(self):
        processor = run(self.miss_then_consumers(), BASE)
        # MUL consumer wakes exactly in the load's speculative window
        # (both producers issue together; 3 = assumed load latency).
        assert len(issues(processor, 3)) == 2

    def test_selective_spares_independents(self):
        config = BASE.with_techniques(recovery=RecoveryModel.SELECTIVE)
        processor = run(self.miss_then_consumers(), config)
        assert len(issues(processor, 1)) == 2   # dependent still replays
        assert len(issues(processor, 3)) == 1   # independent untouched

    def test_load_itself_not_squashed(self):
        processor = run(self.miss_then_consumers(), BASE)
        assert len(issues(processor, 0)) == 1

    def test_transitive_chain_replays(self):
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x7000),
            op(1, dest=2, srcs=(1,)),
            op(2, dest=3, srcs=(2,)),
        ]
        config = BASE.with_techniques(recovery=RecoveryModel.SELECTIVE)
        processor = run(ops, config)
        assert len(issues(processor, 1)) == 2
        assert len(issues(processor, 2)) == 2

    def test_committed_results_are_correct_order(self):
        processor = run(self.miss_then_consumers(), BASE)
        assert processor.stats.committed == 4


class TestSequentialRegisterAccess:
    def seq_rf(self, width=4):
        config = BASE if width == 4 else dataclasses.replace(BASE, width=width)
        return config.with_techniques(regfile=RegFileModel.SEQUENTIAL)

    def test_two_ready_operands_pay_one_cycle(self):
        """Figure 12: both sources ready at insert -> +1 result latency."""
        ops = [
            op(0, dest=1, srcs=(20, 21)),  # 2 ready at insert: seq access
            op(1, dest=2, srcs=(1,)),      # dependent sees +1
        ]
        base = run(ops, BASE)
        seq = run(ops, self.seq_rf())
        assert issues(seq, 1)[0] == issues(base, 1)[0] + 1
        assert seq.trace[0]["seq_reg_access"] is True
        assert seq.stats.sequential_rf_accesses == 1

    def test_back_to_back_issue_clears_seq_access(self):
        """A now-bit operand comes off the bypass: no penalty."""
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, dest=2, srcs=(1, 21)),   # woken by op0, issues back-to-back
            op(2, dest=3, srcs=(2,)),
        ]
        base = run(ops, BASE)
        seq = run(ops, self.seq_rf())
        assert seq.trace[1]["seq_reg_access"] is False
        assert issues(seq, 2)[0] == issues(base, 2)[0]

    def test_single_source_never_seq(self):
        ops = [op(0, dest=1, srcs=(20,))]
        seq = run(ops, self.seq_rf())
        assert seq.trace[0]["seq_reg_access"] is False

    def test_issue_slot_bubble(self):
        """The slot that issued a sequential access is disabled next cycle
        (1-wide machine: the next instruction slips one cycle)."""
        narrow = dataclasses.replace(BASE, width=1, name="test-1w")
        ops = [
            op(0, dest=1, srcs=(20, 21)),  # seq access
            op(1, dest=2, srcs=(22,)),     # independent
        ]
        base = run(ops, narrow)
        seq = run(ops, narrow.with_techniques(regfile=RegFileModel.SEQUENTIAL))
        gap_base = issues(base, 1)[0] - issues(base, 0)[0]
        gap_seq = issues(seq, 1)[0] - issues(seq, 0)[0]
        assert gap_seq == gap_base + 1

    def test_non_back_to_back_needs_two_reads(self):
        """An operand woken earlier than the select cycle must be read from
        the register file (1-cycle bypass window)."""
        ops = [
            op(0, "MUL", dest=1, srcs=(20, 21)),
            op(1, "MUL", dest=2, srcs=(22, 23)),
            # consumer of both MULs; delay its issue by saturating the ALUs
            op(2, dest=3, srcs=(1, 2)),
        ]
        seq = run(ops, self.seq_rf())
        # Both MULs broadcast in the same cycle -> consumer's operands both
        # woke in its select cycle -> bypass covers them (no seq access).
        assert seq.trace[2]["seq_reg_access"] is False


class TestCombinedTechniques:
    def combined(self):
        return BASE.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP,
            regfile=RegFileModel.SEQUENTIAL,
            predictor_entries=None,
        )

    def test_slow_bus_wakeup_forces_seq_access(self):
        """Section 5.3: only nowL exists; a last-arriving operand delivered
        by the slow bus cannot clear seq_reg_access."""
        ops = [
            op(0, dest=1, srcs=(20,)),
            # Duplicate sources: one sched operand, so the MUL itself pays
            # no sequential-access penalty and stays a pure slow producer.
            op(1, "MUL", dest=2, srcs=(20, 20)),
            op(2, dest=3, srcs=(2, 1)),  # last (MUL) on LEFT = slow side
            op(3, dest=4, srcs=(3,)),
        ]
        base = run(ops, BASE)
        combined = run(ops, self.combined())
        assert combined.trace[2]["seq_reg_access"] is True
        # Penalty: +1 (slow wakeup) +1 (sequential register access).
        assert issues(combined, 3)[0] == issues(base, 3)[0] + 2

    def test_fast_side_now_still_clears(self):
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, "MUL", dest=2, srcs=(20, 21)),
            op(2, dest=3, srcs=(1, 2)),  # last (MUL) on RIGHT = fast side
        ]
        combined = run(ops, self.combined())
        assert combined.trace[2]["seq_reg_access"] is False


class TestCrossbarPorts:
    def test_port_contention_delays_youngest(self):
        """Width 4 -> 4 shared read ports; three 2-ready instructions need
        6 reads, so the youngest waits a cycle."""
        config = BASE.with_techniques(regfile=RegFileModel.CROSSBAR)
        ops = [
            op(0, dest=1, srcs=(20, 21)),
            op(1, dest=2, srcs=(22, 23)),
            op(2, dest=3, srcs=(24, 25)),
        ]
        base = run(ops, BASE)
        xbar = run(ops, config)
        assert issues(xbar, 0)[0] == issues(base, 0)[0]
        assert issues(xbar, 1)[0] == issues(base, 1)[0]
        assert issues(xbar, 2)[0] == issues(base, 2)[0] + 1

    def test_bypassed_operands_use_no_ports(self):
        config = BASE.with_techniques(regfile=RegFileModel.CROSSBAR)
        ops = [
            op(0, dest=1, srcs=(20,)),
            op(1, dest=2, srcs=(1, 21)),  # one operand off the bypass
            op(2, dest=3, srcs=(1, 22)),
        ]
        xbar = run(ops, config)
        # Both consumers issue together: 2 bypass + 2 RF reads = 4 ports.
        assert issues(xbar, 1)[0] == issues(xbar, 2)[0]


class TestExtraStage:
    def test_load_use_latency_grows(self):
        config = BASE.with_techniques(regfile=RegFileModel.EXTRA_STAGE)
        assert config.assumed_load_latency == BASE.assumed_load_latency + 1
        ops = [
            op(0, "LDQ", dest=1, srcs=(20,), mem_addr=0x100),
            op(1, "LDQ", dest=2, srcs=(20,), mem_addr=0x100),  # hit
            op(2, dest=3, srcs=(2,)),
        ]
        base = run(ops, BASE)
        extra = run(ops, config)
        gap_base = issues(base, 2)[0] - issues(base, 1)[0]
        gap_extra = issues(extra, 2)[0] - issues(extra, 1)[0]
        assert gap_extra == gap_base + 1

    def test_alu_back_to_back_unaffected(self):
        """Bypass still covers ALU chains in the deeper pipeline."""
        config = BASE.with_techniques(regfile=RegFileModel.EXTRA_STAGE)
        ops = [op(0, dest=1, srcs=(20,)), op(1, dest=2, srcs=(1,))]
        extra = run(ops, config)
        assert issues(extra, 1)[0] == issues(extra, 0)[0] + 1


class TestStoreHandling:
    def test_store_schedules_on_base_only(self):
        """A store whose data register is pending still issues (agen)."""
        ops = [
            op(0, "MUL", dest=1, srcs=(20, 21)),       # slow data producer
            store_op(1, data_reg=1, base_reg=22, mem_addr=0x900),
        ]
        processor = run(ops, BASE)
        # Store issues with the MUL still in flight: no wait on data.
        assert issues(processor, 1)[0] <= issues(processor, 0)[0] + 1

    def test_store_to_load_forwarding(self):
        """A load matching an older in-flight store forwards at hit latency
        and never misses (no replay) even on a cold address."""
        ops = [
            store_op(0, data_reg=20, base_reg=21, mem_addr=0x8000),
            op(1, "LDQ", dest=1, srcs=(22,), mem_addr=0x8000),
            op(2, dest=2, srcs=(1,)),
        ]
        processor = run(ops, BASE)
        assert processor.stats.load_miss_replays == 0
        assert len(issues(processor, 2)) == 1

    def test_unrelated_store_does_not_forward(self):
        ops = [
            store_op(0, data_reg=20, base_reg=21, mem_addr=0x8000),
            op(1, "LDQ", dest=1, srcs=(22,), mem_addr=0x9000),  # cold: miss
            op(2, dest=2, srcs=(1,)),
        ]
        processor = run(ops, BASE)
        assert processor.stats.load_miss_replays >= 1
