"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bzip" in out and "fibonacci" in out and "fig14" in out


class TestKernel:
    def test_kernel_summary(self, capsys):
        assert main(["kernel", "fibonacci"]) == 0
        out = capsys.readouterr().out
        assert "IPC:" in out and "committed:" in out

    def test_kernel_pipetrace(self, capsys):
        assert main(["kernel", "fibonacci", "--pipetrace", "6"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_kernel_with_techniques(self, capsys):
        assert main(
            ["kernel", "dotproduct", "--scheduler", "seq_wakeup",
             "--regfile", "sequential", "--no-predictor"]
        ) == 0
        out = capsys.readouterr().out
        assert "seq_wakeup-nopred" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["kernel", "doom"])


class TestRun:
    def test_run_benchmark(self, capsys):
        code = main(["run", "gzip", "--insts", "600", "--warmup", "600"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload:  gzip" in out

    def test_run_with_extensions(self, capsys):
        code = main(
            ["run", "gzip", "--insts", "400", "--warmup", "400",
             "--half-rename", "--half-bypass", "--width", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "halfrename" in out and "halfbypass" in out


class TestExperiment:
    def test_timing_experiment(self, capsys):
        assert main(["experiment", "timing"]) == 0
        out = capsys.readouterr().out
        assert "466" in out and "1.710" in out

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "RUU entries" in capsys.readouterr().out

    def test_small_simulation_experiment(self, capsys):
        code = main(
            ["experiment", "fig2", "--insts", "300", "--warmup", "300",
             "--benchmarks", "gzip"]
        )
        assert code == 0
        assert "gzip" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machine_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "bzip", "--scheduler", "tag_elim", "--width", "8"]
        )
        assert args.scheduler == "tag_elim" and args.width == 8
