"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bzip" in out and "fibonacci" in out and "fig14" in out


class TestKernel:
    def test_kernel_summary(self, capsys):
        assert main(["kernel", "fibonacci"]) == 0
        out = capsys.readouterr().out
        assert "IPC:" in out and "committed:" in out

    def test_kernel_pipetrace(self, capsys):
        assert main(["kernel", "fibonacci", "--pipetrace", "6"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_kernel_with_techniques(self, capsys):
        assert main(
            ["kernel", "dotproduct", "--scheduler", "seq_wakeup",
             "--regfile", "sequential", "--no-predictor"]
        ) == 0
        out = capsys.readouterr().out
        assert "seq_wakeup-nopred" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["kernel", "doom"])


class TestRun:
    def test_run_benchmark(self, capsys):
        code = main(["run", "gzip", "--insts", "600", "--warmup", "600"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload:  gzip" in out

    def test_run_with_extensions(self, capsys):
        code = main(
            ["run", "gzip", "--insts", "400", "--warmup", "400",
             "--half-rename", "--half-bypass", "--width", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "halfrename" in out and "halfbypass" in out


class TestExperiment:
    def test_timing_experiment(self, capsys):
        assert main(["experiment", "timing"]) == 0
        out = capsys.readouterr().out
        assert "466" in out and "1.710" in out

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "RUU entries" in capsys.readouterr().out

    def test_small_simulation_experiment(self, capsys):
        code = main(
            ["experiment", "fig2", "--insts", "300", "--warmup", "300",
             "--benchmarks", "gzip"]
        )
        assert code == 0
        assert "gzip" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2


class TestExportStats:
    def test_export_writes_versioned_json(self, tmp_path, capsys):
        out = tmp_path / "stats"
        code = main(
            ["export-stats", "gzip", "--insts", "300", "--warmup", "150",
             "--seed", "5", "--no-cache", "--out", str(out), "--jobs", "1"]
        )
        assert code == 0
        files = sorted(out.glob("*.stats.json"))
        assert len(files) == 1
        document = json.loads(files[0].read_text())
        assert document["schema_version"] == 1
        assert document["run"]["benchmark"] == "gzip"
        assert str(files[0]) in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self, capsys):
        assert main(["export-stats", "doom", "--out", "/tmp/x"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestTraceRender:
    def test_ascii_kernel_trace(self, capsys):
        assert main(["trace", "render", "fibonacci", "--count", "6"]) == 0
        assert "legend:" in capsys.readouterr().out

    def test_ascii_benchmark_trace(self, capsys):
        assert main(["trace", "render", "gzip", "--insts", "200", "--count", "4"]) == 0
        assert "legend:" in capsys.readouterr().out

    def test_chrome_trace_file(self, tmp_path, capsys):
        out = tmp_path / "fib.trace.json"
        code = main(
            ["trace", "render", "fibonacci", "--format", "chrome", "--out", str(out)]
        )
        assert code == 0
        assert "perfetto" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["traceEvents"]

    def test_unknown_name_rejected(self, capsys):
        assert main(["trace", "render", "doom"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_verb_is_required(self):
        with pytest.raises(SystemExit):
            main(["trace", "fibonacci"])


class TestTraceFiles:
    def test_capture_info_run_round_trip(self, tmp_path, capsys):
        out = tmp_path / "fib.hpt"
        assert main(["trace", "capture", "fibonacci", "--out", str(out)]) == 0
        assert "captured fibonacci" in capsys.readouterr().out
        assert main(["trace", "info", str(out)]) == 0
        info = capsys.readouterr().out
        assert "insts:" in info and "trace_sha256:" in info
        assert main(["trace", "run", str(out), "--no-cache"]) == 0
        summary = capsys.readouterr().out
        assert "IPC:" in summary and "fibonacci" in summary

    def test_capture_kernel_args_change_the_trace(self, tmp_path, capsys):
        small = tmp_path / "small.hpt"
        big = tmp_path / "big.hpt"
        assert main(["trace", "capture", "vector_sum", "--out", str(small)]) == 0
        assert main(
            ["trace", "capture", "vector_sum", "--arg", "n=200", "--out", str(big)]
        ) == 0
        capsys.readouterr()
        assert small.read_bytes() != big.read_bytes()

    def test_capture_synthetic_needs_limit(self, tmp_path, capsys):
        out = tmp_path / "gz.hpt"
        assert main(["trace", "capture", "gzip", "--out", str(out)]) == 2
        assert "--limit" in capsys.readouterr().err
        assert main(
            ["trace", "capture", "gzip", "--limit", "500", "--out", str(out)]
        ) == 0

    def test_sampled_run_prints_weighted_ipc(self, tmp_path, capsys):
        out = tmp_path / "dot.hpt"
        assert main(
            ["trace", "capture", "dotproduct", "--arg", "n=2500", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        report = tmp_path / "report.json"
        code = main(
            ["trace", "run", str(out), "--sampled", "--interval", "2000",
             "--no-cache", "--report-out", str(report)]
        )
        assert code == 0
        assert "weighted IPC" in capsys.readouterr().out
        document = json.loads(report.read_text())
        assert document["weighted_ipc"] > 0 and document["samples"]

    def test_unknown_trace_is_one_line_error(self, capsys):
        assert main(["trace", "info", "no_such_trace"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err


class TestWorkloads:
    def test_listing_covers_all_three_sections(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "kernels" in out and "fibonacci" in out
        assert "synthetic profiles" in out and "bzip" in out
        assert "trace corpus" in out and "vector_sum_80k" in out


class TestReport:
    def _export(self, out, tmp_path, mutate=None):
        main(
            ["export-stats", "gzip", "--insts", "300", "--warmup", "150",
             "--seed", "5", "--no-cache", "--out", str(out), "--jobs", "1"]
        )
        if mutate is not None:
            path = next(out.glob("*.stats.json"))
            document = json.loads(path.read_text())
            mutate(document)
            path.write_text(json.dumps(document, sort_keys=True) + "\n")

    def test_clean_baseline_passes(self, tmp_path, capsys):
        self._export(tmp_path / "baseline", tmp_path)
        self._export(tmp_path / "current", tmp_path)
        code = main(
            ["report", "--baseline", str(tmp_path / "baseline"),
             "--current", str(tmp_path / "current")]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_drift_fails(self, tmp_path, capsys):
        self._export(tmp_path / "baseline", tmp_path)

        def drift(document):
            document["derived"]["ipc"] *= 1.10

        self._export(tmp_path / "current", tmp_path, mutate=drift)
        code = main(
            ["report", "--baseline", str(tmp_path / "baseline"),
             "--current", str(tmp_path / "current")]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flags_loosen_the_gate(self, tmp_path):
        self._export(tmp_path / "baseline", tmp_path)

        def drift(document):
            document["derived"]["ipc"] *= 1.10

        self._export(tmp_path / "current", tmp_path, mutate=drift)
        code = main(
            ["report", "--baseline", str(tmp_path / "baseline"),
             "--current", str(tmp_path / "current"),
             "--tolerance", "0.5", "--ipc-tolerance", "0.5"]
        )
        assert code == 0

    def test_missing_baseline_dir_fails(self, tmp_path):
        self._export(tmp_path / "current", tmp_path)
        code = main(
            ["report", "--baseline", str(tmp_path / "nope"),
             "--current", str(tmp_path / "current")]
        )
        assert code == 1


class TestRunProfile:
    def test_run_profile_prints_stage_breakdown(self, capsys):
        code = main(
            ["run", "gzip", "--insts", "300", "--warmup", "150", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage wall time" in out and "select_and_issue" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machine_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "bzip", "--scheduler", "tag_elim", "--width", "8"]
        )
        assert args.scheduler == "tag_elim" and args.width == 8


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestErrorExits:
    """Every failure is one readable line and a nonzero exit — no tracebacks."""

    def test_fuzz_replay_missing_path(self, capsys):
        assert main(["fuzz", "--replay", "/nonexistent/corpus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "\n" == err[-1]

    def test_submit_to_dead_server_is_one_line_error(self, capsys):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here
        code = main(
            ["submit", "gzip", "--server", f"http://127.0.0.1:{port}",
             "--insts", "200", "--warmup", "100"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_submit_unknown_benchmark(self, capsys):
        assert main(["submit", "doom", "--server", "http://127.0.0.1:1"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestServeCommands:
    @pytest.fixture
    def served(self, tmp_path):
        from repro.analysis.cache import ResultCache
        from repro.serve.executor import JobExecutor
        from repro.serve.server import BackgroundServer

        background = BackgroundServer(
            port=0, workers=2, spool=tmp_path / "spool",
            executor=JobExecutor(cache=ResultCache(tmp_path / "cache")),
        )
        with background:
            yield background

    def test_submit_wait_and_write_stats(self, served, tmp_path, capsys):
        out = tmp_path / "stats"
        code = main(
            ["submit", "gzip", "gcc", "--server", served.base_url,
             "--insts", "200", "--warmup", "100", "--wait",
             "--timeout", "120", "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "done" in stdout and "IPC" in stdout
        assert len(sorted(out.glob("*.stats.json"))) == 2

    def test_jobs_list_and_inspect(self, served, capsys):
        assert main(
            ["submit", "gzip", "--server", served.base_url,
             "--insts", "200", "--warmup", "100", "--wait", "--timeout", "120"]
        ) == 0
        capsys.readouterr()
        assert main(["jobs", "--server", served.base_url]) == 0
        listing = capsys.readouterr().out
        assert "j-000001" in listing and "gzip" in listing
        assert main(["jobs", "j-000001", "--server", served.base_url]) == 0
        detail = capsys.readouterr().out
        assert "status:" in detail and "done" in detail

    def test_submit_trace_full_and_sampled(self, served, tmp_path, capsys):
        code = main(
            ["submit", "--trace", "vector_sum_80k", "--server", served.base_url,
             "--insts", "5000", "--wait", "--timeout", "120"]
        )
        assert code == 0
        assert "IPC" in capsys.readouterr().out
        out = tmp_path / "reports"
        code = main(
            ["submit", "--trace", "vector_sum_80k", "--sampled",
             "--server", served.base_url, "--wait", "--timeout", "120",
             "--out", str(out)]
        )
        assert code == 0
        assert "weighted IPC" in capsys.readouterr().out
        report = json.loads((out / "vector_sum_80k.report.json").read_text())
        assert report["weighted_ipc"] > 0

    def test_jobs_unknown_id_is_one_line_error(self, served, capsys):
        assert main(["jobs", "j-999999", "--server", served.base_url]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err
