"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bzip" in out and "fibonacci" in out and "fig14" in out


class TestKernel:
    def test_kernel_summary(self, capsys):
        assert main(["kernel", "fibonacci"]) == 0
        out = capsys.readouterr().out
        assert "IPC:" in out and "committed:" in out

    def test_kernel_pipetrace(self, capsys):
        assert main(["kernel", "fibonacci", "--pipetrace", "6"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_kernel_with_techniques(self, capsys):
        assert main(
            ["kernel", "dotproduct", "--scheduler", "seq_wakeup",
             "--regfile", "sequential", "--no-predictor"]
        ) == 0
        out = capsys.readouterr().out
        assert "seq_wakeup-nopred" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["kernel", "doom"])


class TestRun:
    def test_run_benchmark(self, capsys):
        code = main(["run", "gzip", "--insts", "600", "--warmup", "600"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload:  gzip" in out

    def test_run_with_extensions(self, capsys):
        code = main(
            ["run", "gzip", "--insts", "400", "--warmup", "400",
             "--half-rename", "--half-bypass", "--width", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "halfrename" in out and "halfbypass" in out


class TestExperiment:
    def test_timing_experiment(self, capsys):
        assert main(["experiment", "timing"]) == 0
        out = capsys.readouterr().out
        assert "466" in out and "1.710" in out

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "RUU entries" in capsys.readouterr().out

    def test_small_simulation_experiment(self, capsys):
        code = main(
            ["experiment", "fig2", "--insts", "300", "--warmup", "300",
             "--benchmarks", "gzip"]
        )
        assert code == 0
        assert "gzip" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2


class TestExportStats:
    def test_export_writes_versioned_json(self, tmp_path, capsys):
        out = tmp_path / "stats"
        code = main(
            ["export-stats", "gzip", "--insts", "300", "--warmup", "150",
             "--seed", "5", "--no-cache", "--out", str(out), "--jobs", "1"]
        )
        assert code == 0
        files = sorted(out.glob("*.stats.json"))
        assert len(files) == 1
        document = json.loads(files[0].read_text())
        assert document["schema_version"] == 1
        assert document["run"]["benchmark"] == "gzip"
        assert str(files[0]) in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self, capsys):
        assert main(["export-stats", "doom", "--out", "/tmp/x"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestTrace:
    def test_ascii_kernel_trace(self, capsys):
        assert main(["trace", "fibonacci", "--count", "6"]) == 0
        assert "legend:" in capsys.readouterr().out

    def test_ascii_benchmark_trace(self, capsys):
        assert main(["trace", "gzip", "--insts", "200", "--count", "4"]) == 0
        assert "legend:" in capsys.readouterr().out

    def test_chrome_trace_file(self, tmp_path, capsys):
        out = tmp_path / "fib.trace.json"
        code = main(
            ["trace", "fibonacci", "--format", "chrome", "--out", str(out)]
        )
        assert code == 0
        assert "perfetto" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["traceEvents"]

    def test_unknown_name_rejected(self, capsys):
        assert main(["trace", "doom"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestReport:
    def _export(self, out, tmp_path, mutate=None):
        main(
            ["export-stats", "gzip", "--insts", "300", "--warmup", "150",
             "--seed", "5", "--no-cache", "--out", str(out), "--jobs", "1"]
        )
        if mutate is not None:
            path = next(out.glob("*.stats.json"))
            document = json.loads(path.read_text())
            mutate(document)
            path.write_text(json.dumps(document, sort_keys=True) + "\n")

    def test_clean_baseline_passes(self, tmp_path, capsys):
        self._export(tmp_path / "baseline", tmp_path)
        self._export(tmp_path / "current", tmp_path)
        code = main(
            ["report", "--baseline", str(tmp_path / "baseline"),
             "--current", str(tmp_path / "current")]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_drift_fails(self, tmp_path, capsys):
        self._export(tmp_path / "baseline", tmp_path)

        def drift(document):
            document["derived"]["ipc"] *= 1.10

        self._export(tmp_path / "current", tmp_path, mutate=drift)
        code = main(
            ["report", "--baseline", str(tmp_path / "baseline"),
             "--current", str(tmp_path / "current")]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flags_loosen_the_gate(self, tmp_path):
        self._export(tmp_path / "baseline", tmp_path)

        def drift(document):
            document["derived"]["ipc"] *= 1.10

        self._export(tmp_path / "current", tmp_path, mutate=drift)
        code = main(
            ["report", "--baseline", str(tmp_path / "baseline"),
             "--current", str(tmp_path / "current"),
             "--tolerance", "0.5", "--ipc-tolerance", "0.5"]
        )
        assert code == 0

    def test_missing_baseline_dir_fails(self, tmp_path):
        self._export(tmp_path / "current", tmp_path)
        code = main(
            ["report", "--baseline", str(tmp_path / "nope"),
             "--current", str(tmp_path / "current")]
        )
        assert code == 1


class TestRunProfile:
    def test_run_profile_prints_stage_breakdown(self, capsys):
        code = main(
            ["run", "gzip", "--insts", "300", "--warmup", "150", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage wall time" in out and "select_and_issue" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machine_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "bzip", "--scheduler", "tag_elim", "--width", "8"]
        )
        assert args.scheduler == "tag_elim" and args.width == 8
