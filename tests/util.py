"""Shared test helpers: hand-crafted DynOp feeds for deterministic scenarios.

``ScriptedFeed`` lets a test specify an exact dynamic instruction sequence
(with dependencies through architectural registers) and observe precise
issue/commit cycles in the processor.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass
from repro.workloads.trace import DynOp

_CLASS_OF = {
    "ADD": OpClass.INT_ALU,
    "ADDF": OpClass.FP_ALU,
    "MUL": OpClass.INT_MULT,
    "DIV": OpClass.INT_DIV,
    "LDQ": OpClass.LOAD,
    "STQ": OpClass.STORE,
    "BEQ": OpClass.BRANCH,
    "NOP2": OpClass.NOP,
}


def op(
    seq: int,
    opcode: str = "ADD",
    dest: int | None = None,
    srcs: tuple[int, ...] = (),
    mem_addr: int | None = None,
    taken: bool = False,
    next_pc: int | None = None,
    static_target: int | None = None,
    pc: int | None = None,
    store_data: int | None = None,
) -> DynOp:
    """Build one DynOp with sensible defaults for scheduler tests."""
    eliminated = opcode == "NOP2"
    return DynOp(
        seq=seq,
        pc=pc if pc is not None else seq,
        opcode=opcode,
        op_class=_CLASS_OF[opcode],
        dest=dest if not eliminated else None,
        srcs=srcs,
        sched_deps=() if eliminated else tuple(dict.fromkeys(s for s in srcs if s != 31)),
        store_data_reg=store_data,
        mem_addr=mem_addr,
        taken=taken,
        next_pc=next_pc,
        static_target=static_target,
        is_two_source_format=len(srcs) == 2,
        is_eliminated_nop=eliminated,
    )


def store_op(seq: int, data_reg: int, base_reg: int, mem_addr: int, pc: int | None = None) -> DynOp:
    """A store: schedules on the base register, carries a data register."""
    built = op(seq, "STQ", srcs=(data_reg, base_reg), mem_addr=mem_addr, pc=pc,
               store_data=data_reg)
    built.sched_deps = (base_reg,) if base_reg != 31 else ()
    return built


class ScriptedFeed:
    """A feed yielding an explicit list of DynOps (correct path)."""

    name = "scripted"

    def __init__(self, ops: list[DynOp]):
        self.ops = ops

    def __iter__(self):
        return iter(self.ops)

    def pc_address(self, pc: int) -> int:
        return pc * 4


def issue_cycle_of(processor, seq: int) -> int:
    """Final issue cycle of the instruction with dynamic number *seq*."""
    return processor_entry(processor, seq).issue_cycle


def processor_entry(processor, seq: int):
    for entry in processor.rob:
        if entry.tag == seq:
            return entry
    raise AssertionError(f"entry {seq} not in ROB (already committed?)")
