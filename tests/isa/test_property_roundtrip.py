"""Property-based round-trip tests over randomly generated programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_program
from repro.isa.emulator import Emulator

_REGS = st.integers(0, 30).map(lambda n: f"r{n}")
_FREGS = st.integers(0, 30).map(lambda n: f"f{n}")
_IMM = st.integers(-1000, 1000)


@st.composite
def operate_line(draw):
    name = draw(st.sampled_from(["ADD", "SUB", "AND", "OR", "XOR", "MUL", "CMPEQ"]))
    rd, ra = draw(_REGS), draw(_REGS)
    if draw(st.booleans()):
        return f"{name} {rd}, {ra}, {draw(_REGS)}"
    return f"{name} {rd}, {ra}, #{draw(_IMM)}"


@st.composite
def memory_line(draw):
    if draw(st.booleans()):
        return f"LDQ {draw(_REGS)}, {draw(st.integers(0, 512)) * 8}({draw(_REGS)})"
    return f"STQ {draw(_REGS)}, {draw(st.integers(0, 512)) * 8}({draw(_REGS)})"


@st.composite
def misc_line(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return f"LDI {draw(_REGS)}, {draw(_IMM)}"
    if kind == 1:
        return f"MOV {draw(_REGS)}, {draw(_REGS)}"
    if kind == 2:
        return f"NOP2 {draw(_REGS)}, {draw(_REGS)}"
    return f"ADDF {draw(_FREGS)}, {draw(_FREGS)}, {draw(_FREGS)}"


@st.composite
def straightline_program(draw):
    lines = draw(
        st.lists(st.one_of(operate_line(), memory_line(), misc_line()),
                 min_size=1, max_size=25)
    )
    return "\n".join(lines) + "\nHALT"


class TestAssemblerProperties:
    @settings(max_examples=60, deadline=None)
    @given(straightline_program())
    def test_disassembly_reassembles_identically(self, source):
        program = assemble(source)
        text = disassemble_program(program)
        again = assemble(text)
        assert again.instructions == program.instructions

    @settings(max_examples=40, deadline=None)
    @given(straightline_program())
    def test_straightline_programs_execute(self, source):
        """Any straight-line program (no div) halts without error."""
        emulator = Emulator(assemble(source))
        emulator.run(max_steps=1000)
        assert emulator.halted

    @settings(max_examples=40, deadline=None)
    @given(straightline_program())
    def test_source_count_matches(self, source):
        program = assemble(source)
        # +1 for HALT.
        assert len(program) == source.count("\n") + 1
