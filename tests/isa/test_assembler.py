"""Tests for the two-pass assembler and disassembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_program
from repro.isa.opcodes import OpClass
from repro.isa.registers import FP_REG_BASE, R31


class TestBasicAssembly:
    def test_empty_source(self):
        assert len(assemble("")) == 0

    def test_comments_and_blank_lines(self):
        program = assemble("; only a comment\n\n// another\n   NOP\n")
        assert len(program) == 1

    def test_operate_register_form(self):
        inst = assemble("ADD r1, r2, r3").instructions[0]
        assert inst.dest == 1 and inst.srcs == (2, 3)

    def test_operate_immediate_form(self):
        inst = assemble("ADD r1, r2, #42").instructions[0]
        assert inst.srcs == (2,) and inst.imm == 42

    def test_negative_immediate(self):
        inst = assemble("ADD r1, r2, #-5").instructions[0]
        assert inst.imm == -5

    def test_ldi(self):
        inst = assemble("LDI r7, 1000").instructions[0]
        assert inst.dest == 7 and inst.imm == 1000 and inst.srcs == ()

    def test_mov(self):
        inst = assemble("MOV r1, r2").instructions[0]
        assert inst.dest == 1 and inst.srcs == (2,)

    def test_fp_registers(self):
        inst = assemble("ADDF f1, f2, f3").instructions[0]
        assert inst.dest == FP_REG_BASE + 1
        assert inst.srcs == (FP_REG_BASE + 2, FP_REG_BASE + 3)


class TestMemoryFormat:
    def test_load(self):
        inst = assemble("LDQ r4, 8(r2)").instructions[0]
        assert inst.dest == 4 and inst.srcs == (2,) and inst.imm == 8

    def test_load_no_offset(self):
        inst = assemble("LDQ r4, (r2)").instructions[0]
        assert inst.imm == 0

    def test_store_sources_are_data_then_base(self):
        inst = assemble("STQ r4, -16(r2)").instructions[0]
        assert inst.dest is None and inst.srcs == (4, 2) and inst.imm == -16

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("LDQ r4, r2")


class TestControlFlow:
    def test_label_resolution(self):
        program = assemble("loop: NOP\nBR loop")
        assert program.instructions[1].target == 0

    def test_forward_reference(self):
        program = assemble("BR done\nNOP\ndone: HALT")
        assert program.instructions[0].target == 2

    def test_conditional_branch(self):
        program = assemble("top: BEQ r1, top")
        inst = program.instructions[0]
        assert inst.srcs == (1,) and inst.target == 0

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("BR nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a: NOP\na: NOP")

    def test_jsr_and_ret(self):
        program = assemble("JSR r26, (r5)\nRET (r26)")
        jsr, ret = program.instructions
        assert jsr.dest == 26 and jsr.srcs == (5,)
        assert ret.dest is None and ret.srcs == (26,)

    def test_label_on_same_line(self):
        program = assemble("start: NOP\nBR start")
        assert program.labels["start"] == 0


class TestNops:
    def test_nop2_is_two_source_format_nop(self):
        inst = assemble("NOP2 r1, r2").instructions[0]
        assert inst.op_class is OpClass.NOP
        assert inst.is_two_source_format
        assert inst.is_eliminated_nop
        assert inst.dest == R31


class TestDataDirectives:
    def test_words(self):
        program = assemble(".data 4096\n.word 1 2 3")
        assert program.data == {4096: 1, 4104: 2, 4112: 3}

    def test_word_before_data_is_error(self):
        with pytest.raises(AssemblyError):
            assemble(".word 1")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError):
            assemble(".bogus 1")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "FROB r1, r2, r3",
            "ADD r1, r2",
            "ADDF f1, f2, #3",  # FP has no immediate form
            "LDI r1",
            "BR a, b",
            "NOP r1",
            "ADD r1, r2, r99",
        ],
    )
    def test_malformed_lines(self, bad):
        with pytest.raises(AssemblyError):
            assemble(bad + "\n" + ("a: NOP" if "a" in bad else ""))

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("NOP\nFROB r1\n")
        assert "line 2" in str(excinfo.value)


class TestDisassembler:
    SOURCE = "\n".join(
        [
            "loop: ADD r1, r2, r3",
            "ADD r1, r2, #7",
            "LDI r5, 9",
            "MOV r6, r5",
            "LDQ r4, 8(r2)",
            "STQ r4, 0(r2)",
            "BEQ r1, loop",
            "BR loop",
            "JSR r26, (r5)",
            "RET (r26)",
            "NOP2 r1, r2",
            "NOP",
            "HALT",
        ]
    )

    def test_roundtrip(self):
        """Disassembling and reassembling yields identical instructions."""
        program = assemble(self.SOURCE)
        text = disassemble_program(program)
        again = assemble(text)
        assert again.instructions == program.instructions

    def test_single_instruction_render(self):
        inst = assemble("ADD r1, r2, r3").instructions[0]
        assert disassemble(inst) == "ADD r1, r2, r3"

    def test_str_uses_disassembler(self):
        inst = assemble("LDQ r4, 8(r2)").instructions[0]
        assert str(inst) == "LDQ r4, 8(r2)"
