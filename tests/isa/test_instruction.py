"""Tests for static instruction classification (paper Section 2.3)."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_BY_NAME
from repro.isa.registers import F31, R31


def make(name, dest=None, srcs=(), imm=0, target=None):
    return Instruction(OPCODE_BY_NAME[name], dest=dest, srcs=srcs, imm=imm, target=target)


class TestTwoSourceFormat:
    def test_operate_register_form_is_two_source_format(self):
        assert make("ADD", dest=1, srcs=(2, 3)).is_two_source_format

    def test_operate_immediate_form_is_not(self):
        assert not make("ADD", dest=1, srcs=(2,), imm=4).is_two_source_format

    def test_load_is_not(self):
        assert not make("LDQ", dest=1, srcs=(2,), imm=8).is_two_source_format

    def test_store_is_two_source_format(self):
        assert make("STQ", srcs=(1, 2), imm=0).is_two_source_format


class TestUniqueSources:
    def test_two_distinct_sources(self):
        assert make("ADD", dest=1, srcs=(2, 3)).unique_nonzero_sources == (2, 3)

    def test_duplicate_sources_count_once(self):
        assert make("ADD", dest=1, srcs=(2, 2)).unique_nonzero_sources == (2,)

    def test_zero_register_source_is_ignored(self):
        assert make("ADD", dest=1, srcs=(2, R31)).unique_nonzero_sources == (2,)

    def test_fp_zero_register_is_ignored(self):
        assert make("ADDF", dest=33, srcs=(F31, 34)).unique_nonzero_sources == (34,)

    def test_both_zero(self):
        assert make("ADD", dest=1, srcs=(R31, R31)).unique_nonzero_sources == ()


class TestTwoSourceClassification:
    def test_plain_two_source(self):
        assert make("ADD", dest=1, srcs=(2, 3)).is_two_source

    def test_store_is_excluded(self):
        assert not make("STQ", srcs=(1, 2)).is_two_source

    def test_zero_reg_demotes(self):
        assert not make("ADD", dest=1, srcs=(2, R31)).is_two_source

    def test_duplicate_demotes(self):
        assert not make("ADD", dest=1, srcs=(5, 5)).is_two_source

    def test_eliminated_nop_is_excluded(self):
        assert not make("NOP2", dest=R31, srcs=(2, 3)).is_two_source

    def test_operate_writing_zero_reg_is_eliminated_nop(self):
        inst = make("ADD", dest=R31, srcs=(2, 3))
        assert inst.is_eliminated_nop
        assert not inst.is_two_source


class TestProperties:
    def test_writes_register(self):
        assert make("ADD", dest=1, srcs=(2, 3)).writes_register
        assert not make("ADD", dest=R31, srcs=(2, 3)).writes_register
        assert not make("STQ", srcs=(1, 2)).writes_register

    def test_class_flags(self):
        assert make("LDQ", dest=1, srcs=(2,)).is_load
        assert make("STQ", srcs=(1, 2)).is_store
        assert make("BEQ", srcs=(1,), target=0).is_branch
        assert make("JMP", srcs=(1,)).is_control
        assert make("HALT").is_halt

    def test_too_many_sources_rejected(self):
        with pytest.raises(ValueError):
            make("ADD", dest=1, srcs=(2, 3, 4))

    def test_describe_mentions_fields(self):
        text = make("ADD", dest=1, srcs=(2, 3)).describe()
        assert "ADD" in text and "r1" in text and "r2" in text
