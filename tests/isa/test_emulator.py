"""Tests for the functional emulator."""

import pytest

from repro.errors import EmulationError
from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator


def run(source, max_steps=100_000):
    emu = Emulator(assemble(source))
    emu.run(max_steps)
    return emu


class TestArithmetic:
    def test_add(self):
        emu = run("LDI r1, 2\nLDI r2, 3\nADD r3, r1, r2\nHALT")
        assert emu.int_reg(3) == 5

    def test_sub_negative_result(self):
        emu = run("LDI r1, 2\nLDI r2, 3\nSUB r3, r1, r2\nHALT")
        assert emu.int_reg(3) == -1

    def test_logic_ops(self):
        emu = run(
            "LDI r1, 12\nLDI r2, 10\n"
            "AND r3, r1, r2\nOR r4, r1, r2\nXOR r5, r1, r2\nHALT"
        )
        assert emu.int_reg(3) == 8
        assert emu.int_reg(4) == 14
        assert emu.int_reg(5) == 6

    def test_shifts(self):
        emu = run("LDI r1, 3\nSLL r2, r1, #4\nSRL r3, r2, #2\nHALT")
        assert emu.int_reg(2) == 48
        assert emu.int_reg(3) == 12

    def test_compares(self):
        emu = run(
            "LDI r1, 5\nLDI r2, 5\nCMPEQ r3, r1, r2\n"
            "CMPLT r4, r1, r2\nCMPLE r5, r1, r2\nHALT"
        )
        assert (emu.int_reg(3), emu.int_reg(4), emu.int_reg(5)) == (1, 0, 1)

    def test_mul_div(self):
        emu = run("LDI r1, 7\nLDI r2, -3\nMUL r3, r1, r2\nDIV r4, r3, r2\nHALT")
        assert emu.int_reg(3) == -21
        assert emu.int_reg(4) == 7

    def test_div_truncates_toward_zero(self):
        emu = run("LDI r1, -7\nLDI r2, 2\nDIV r3, r1, r2\nHALT")
        assert emu.int_reg(3) == -3

    def test_div_by_zero_raises(self):
        with pytest.raises(EmulationError):
            run("LDI r1, 1\nDIV r2, r1, r31\nHALT")

    def test_wraparound_64bit(self):
        emu = run("LDI r1, 1\nSLL r2, r1, #63\nADD r3, r2, r2\nHALT")
        assert emu.int_reg(3) == 0

    def test_fp_ops(self):
        emu = run(
            "LDI r1, 6\nLDI r2, 4\n"
            ".data 0\n"  # noqa: data section unused; FP via moves
            "HALT"
        )
        # FP covered through memory round trip below.
        assert emu.halted


class TestZeroRegister:
    def test_reads_as_zero(self):
        emu = run("LDI r1, 5\nADD r2, r1, r31\nHALT")
        assert emu.int_reg(2) == 5

    def test_writes_discarded(self):
        emu = run("LDI r31, 77\nADD r1, r31, r31\nHALT")
        assert emu.int_reg(1) == 0

    def test_nop2_has_no_effect(self):
        emu = run("LDI r1, 5\nNOP2 r1, r1\nHALT")
        assert emu.int_reg(1) == 5


class TestMemory:
    def test_store_load_roundtrip(self):
        emu = run("LDI r1, 4096\nLDI r2, 99\nSTQ r2, 8(r1)\nLDQ r3, 8(r1)\nHALT")
        assert emu.int_reg(3) == 99

    def test_initial_data(self):
        emu = run(".data 4096\n.word 11 22\nLDI r1, 4096\nLDQ r2, 0(r1)\nLDQ r3, 8(r1)\nHALT")
        assert emu.int_reg(2) == 11
        assert emu.int_reg(3) == 22

    def test_uninitialized_memory_is_zero(self):
        emu = run("LDI r1, 5000\nLDQ r2, 0(r1)\nHALT")
        assert emu.int_reg(2) == 0

    def test_mem_addr_recorded(self):
        emu = Emulator(assemble("LDI r1, 4096\nLDQ r2, 8(r1)\nHALT"))
        emu.step()
        record = emu.step()
        assert record.mem_addr == 4104


class TestControlFlow:
    def test_counted_loop(self):
        emu = run(
            "LDI r1, 0\nLDI r2, 10\n"
            "loop: ADD r1, r1, #1\nSUB r3, r1, r2\nBNE r3, loop\nHALT"
        )
        assert emu.int_reg(1) == 10

    def test_branch_not_taken_falls_through(self):
        emu = Emulator(assemble("LDI r1, 1\nBEQ r1, skip\nLDI r2, 5\nskip: HALT"))
        emu.run()
        assert emu.int_reg(2) == 5

    def test_taken_flag(self):
        emu = Emulator(assemble("BR next\nnext: HALT"))
        record = emu.step()
        assert record.taken and record.next_pc == 1

    def test_jsr_ret(self):
        emu = run(
            "LDI r5, 4\n"  # address of the subroutine
            "JSR r26, (r5)\n"
            "LDI r2, 2\n"
            "HALT\n"
            "sub: LDI r1, 1\nRET (r26)"
        )
        assert emu.int_reg(1) == 1
        assert emu.int_reg(2) == 2

    def test_step_budget_enforced(self):
        with pytest.raises(EmulationError):
            run("loop: BR loop", max_steps=100)

    def test_pc_out_of_range(self):
        emu = Emulator(assemble("NOP"))
        emu.step()
        with pytest.raises(EmulationError):
            emu.step()

    def test_iteration_yields_all_records(self):
        emu = Emulator(assemble("LDI r1, 1\nLDI r2, 2\nHALT"))
        records = list(emu)
        assert [r.pc for r in records] == [0, 1, 2]
        assert emu.halted
