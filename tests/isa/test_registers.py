"""Tests for architectural register layout and parsing."""

import pytest

from repro.isa.registers import (
    F31,
    FP_REG_BASE,
    NUM_ARCH_REGS,
    R31,
    is_fp_reg,
    is_zero_reg,
    parse_reg,
    reg_name,
)


class TestZeroRegisters:
    def test_r31_is_zero(self):
        assert is_zero_reg(R31)

    def test_f31_is_zero(self):
        assert is_zero_reg(F31)

    def test_ordinary_registers_are_not_zero(self):
        for reg in (0, 1, 30, FP_REG_BASE, FP_REG_BASE + 30):
            assert not is_zero_reg(reg)


class TestFpClassification:
    def test_int_range(self):
        assert not is_fp_reg(0)
        assert not is_fp_reg(31)

    def test_fp_range(self):
        assert is_fp_reg(FP_REG_BASE)
        assert is_fp_reg(NUM_ARCH_REGS - 1)


class TestNames:
    def test_int_name_roundtrip(self):
        for number in range(32):
            assert parse_reg(reg_name(number)) == number

    def test_fp_name_roundtrip(self):
        for number in range(32):
            reg = FP_REG_BASE + number
            assert parse_reg(reg_name(reg)) == reg

    def test_name_formats(self):
        assert reg_name(4) == "r4"
        assert reg_name(FP_REG_BASE + 2) == "f2"

    def test_reg_name_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)
        with pytest.raises(ValueError):
            reg_name(-1)

    @pytest.mark.parametrize("bad", ["x3", "r", "r32", "f99", "3", "", "rr1"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)

    def test_parse_is_case_insensitive(self):
        assert parse_reg("R5") == 5
        assert parse_reg("F5") == FP_REG_BASE + 5
