"""Floating-point emulator coverage and miscellaneous ISA edges."""

import pytest

from repro.errors import EmulationError
from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator


def run(source, max_steps=10_000):
    emu = Emulator(assemble(source))
    emu.run(max_steps)
    return emu


class TestFloatingPoint:
    def test_fp_memory_roundtrip_and_arith(self):
        emu = run(
            ".data 4096\n.word 6\n"
            "LDI r1, 4096\n"
            "LDF f1, 0(r1)\n"      # f1 = 6
            "MOVF f2, f1\n"
            "ADDF f3, f1, f2\n"    # 12
            "SUBF f4, f3, f1\n"    # 6
            "MULF f5, f3, f4\n"    # 72
            "STF  f5, 8(r1)\n"
            "HALT"
        )
        assert emu.fp_reg(3) == pytest.approx(12.0)
        assert emu.read_mem(4104) == pytest.approx(72.0)

    def test_fp_division(self):
        emu = run(
            ".data 4096\n.word 7 2\n"
            "LDI r1, 4096\nLDF f1, 0(r1)\nLDF f2, 8(r1)\n"
            "DIVF f3, f1, f2\nHALT"
        )
        assert emu.fp_reg(3) == pytest.approx(3.5)

    def test_fp_divide_by_zero_raises(self):
        with pytest.raises(EmulationError):
            run("DIVF f1, f2, f31\nHALT")

    def test_fp_compares(self):
        emu = run(
            ".data 4096\n.word 3 5\n"
            "LDI r1, 4096\nLDF f1, 0(r1)\nLDF f2, 8(r1)\n"
            "CMPFLT r2, f1, f2\nCMPFEQ r3, f1, f1\nHALT"
        )
        assert emu.int_reg(2) == 1
        assert emu.int_reg(3) == 1

    def test_f31_reads_zero(self):
        emu = run("ADDF f1, f31, f31\nHALT")
        assert emu.fp_reg(1) == 0.0

    def test_f31_write_discarded(self):
        emu = run(
            ".data 4096\n.word 9\nLDI r1, 4096\nLDF f31, 0(r1)\n"
            "MOVF f2, f31\nHALT"
        )
        assert emu.fp_reg(2) == 0.0


class TestMiscEdges:
    def test_jmp_register_indirect(self):
        emu = run("LDI r5, 3\nJMP (r5)\nLDI r1, 99\nHALT")
        assert emu.int_reg(1) == 0  # the LDI was jumped over

    def test_shift_by_more_than_63_masks(self):
        emu = run("LDI r1, 8\nSLL r2, r1, #65\nHALT")
        assert emu.int_reg(2) == 16  # shift count masked to 1

    def test_large_immediate(self):
        emu = run("LDI r1, 1103515245\nHALT")
        assert emu.int_reg(1) == 1103515245

    def test_negative_displacement_load(self):
        emu = run(
            ".data 4096\n.word 42\nLDI r1, 4104\nLDQ r2, -8(r1)\nHALT"
        )
        assert emu.int_reg(2) == 42

    def test_steps_counter(self):
        emu = run("NOP\nNOP\nHALT")
        assert emu.steps == 3
