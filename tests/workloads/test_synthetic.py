"""Tests for the synthetic SPEC benchmark generator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.feed import StreamStats, collect_stream
from repro.workloads.profiles import (
    SPEC_BENCHMARKS,
    SPEC_PROFILES,
    BenchmarkProfile,
    get_profile,
)
from repro.workloads.synthetic import SyntheticWorkload


@pytest.fixture(scope="module")
def bzip():
    return SyntheticWorkload(get_profile("bzip"), seed=7)


class TestProfiles:
    def test_all_twelve_present(self):
        assert set(SPEC_PROFILES) == set(SPEC_BENCHMARKS)
        assert len(SPEC_BENCHMARKS) == 12

    def test_paper_references_attached(self):
        for name in SPEC_BENCHMARKS:
            paper = get_profile(name).paper
            assert paper is not None
            assert paper.base_ipc_8w > paper.base_ipc_4w

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            get_profile("doom")

    def test_validation_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(
                name="bad", frac_load=1.5, frac_store=0.1, frac_branch=0.1
            )

    def test_validation_rejects_fat_mix(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(
                name="bad", frac_load=0.5, frac_store=0.3, frac_branch=0.2
            )


class TestDeterminism:
    def test_same_seed_same_stream(self, bzip):
        first = [(op.pc, op.taken, op.mem_addr) for op in collect_stream(bzip, 2000)]
        second = [(op.pc, op.taken, op.mem_addr) for op in collect_stream(bzip, 2000)]
        assert first == second

    def test_different_seed_different_stream(self):
        profile = get_profile("gzip")
        a = [op.pc for op in collect_stream(SyntheticWorkload(profile, 1), 500)]
        b = [op.pc for op in collect_stream(SyntheticWorkload(profile, 2), 500)]
        assert a != b

    def test_seq_numbers_sequential(self, bzip):
        ops = collect_stream(bzip, 100)
        assert [op.seq for op in ops] == list(range(100))


class TestStreamStructure:
    def test_control_flow_is_consistent(self, bzip):
        """Each op's next_pc equals the following op's pc."""
        ops = collect_stream(bzip, 3000)
        for prev, cur in itertools.pairwise(ops):
            assert prev.next_pc == cur.pc

    def test_branches_have_targets(self, bzip):
        for op in collect_stream(bzip, 3000):
            if op.is_branch and op.opcode != "BR":
                assert op.static_target is not None
                if op.taken:
                    assert op.next_pc == op.static_target

    def test_memory_ops_have_addresses(self, bzip):
        for op in collect_stream(bzip, 3000):
            if op.is_load or op.is_store:
                assert op.mem_addr is not None and op.mem_addr >= 0
            else:
                assert op.mem_addr is None

    def test_stores_schedule_on_base_only(self, bzip):
        for op in collect_stream(bzip, 3000):
            if op.is_store:
                assert len(op.sched_deps) <= 1
                assert op.store_data_reg is not None

    def test_pc_addresses_monotonic(self, bzip):
        addresses = [bzip.pc_address(pc) for pc in range(bzip.static_size)]
        assert addresses == sorted(addresses)
        assert all(addr % 4 == 0 for addr in addresses)

    def test_static_size_reasonable(self, bzip):
        assert 50 <= bzip.static_size <= 5000


class TestCharacterizationRanges:
    """The generated streams must land inside the paper's quoted ranges."""

    @pytest.mark.parametrize("name", SPEC_BENCHMARKS)
    def test_two_source_format_fraction(self, name):
        workload = SyntheticWorkload(get_profile(name), seed=11)
        stats = StreamStats.from_stream(workload, limit=20_000)
        # Paper Figure 2: 18~36% including stores; stores are tracked
        # separately here, so allow a generous non-store band.
        assert 0.06 <= stats.frac_two_source_format <= 0.45, name

    @pytest.mark.parametrize("name", SPEC_BENCHMARKS)
    def test_two_source_fraction(self, name):
        workload = SyntheticWorkload(get_profile(name), seed=11)
        stats = StreamStats.from_stream(workload, limit=20_000)
        # Paper Figure 3: 6~23% have two unique non-zero sources.
        assert 0.03 <= stats.frac_two_source <= 0.30, name

    @pytest.mark.parametrize("name", SPEC_BENCHMARKS)
    def test_store_fraction_tracks_profile(self, name):
        """Dynamic store fraction stays near the static knob.

        Loops weight blocks non-uniformly, so the dynamic mix legitimately
        drifts from the static target; the tolerance reflects that.
        """
        profile = get_profile(name)
        workload = SyntheticWorkload(profile, seed=11)
        stats = StreamStats.from_stream(workload, limit=20_000)
        assert stats.frac_stores == pytest.approx(profile.frac_store, abs=0.07)


class TestWorkingSet:
    def test_addresses_within_working_set(self):
        profile = get_profile("crafty")
        workload = SyntheticWorkload(profile, seed=3)
        for op in collect_stream(workload, 5000):
            if op.mem_addr is not None:
                offset = op.mem_addr - 0x1000_0000
                assert 0 <= offset < profile.working_set_bytes + profile.stride_bytes

    def test_mcf_has_pointer_chase_loads(self):
        workload = SyntheticWorkload(get_profile("mcf"), seed=3)
        chase_deps = 0
        for op in collect_stream(workload, 5000):
            if op.is_load and op.sched_deps and 20 <= op.sched_deps[0] < 24:
                chase_deps += 1
        assert chase_deps > 100  # plenty of load-load chains


class TestPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_any_seed_streams_cleanly(self, seed):
        workload = SyntheticWorkload(get_profile("parser"), seed=seed)
        ops = collect_stream(workload, 300)
        assert len(ops) == 300
        for op in ops:
            assert 0 <= op.pc < workload.static_size
