"""Functional-correctness tests for the hand-written kernels."""

import pytest

from repro.isa.emulator import Emulator
from repro.workloads.kernels import KERNELS, kernel_program


class TestKernelCorrectness:
    def test_vector_sum(self):
        program = kernel_program("vector_sum", n=16)
        for i in range(16):
            program.data[4096 + 8 * i] = i + 1
        emu = Emulator(program)
        emu.run()
        assert emu.int_reg(1) == sum(range(1, 17))

    def test_fibonacci(self):
        emu = Emulator(kernel_program("fibonacci", n=10))
        emu.run()
        assert emu.int_reg(1) == 55

    def test_memcpy(self):
        program = kernel_program("memcpy", n=8)
        for i in range(8):
            program.data[4096 + 8 * i] = 100 + i
        emu = Emulator(program)
        emu.run()
        for i in range(8):
            assert emu.read_mem(16384 + 8 * i) == 100 + i

    def test_pointer_chase_counts_nodes(self):
        emu = Emulator(kernel_program("pointer_chase", n=10, stride=64))
        emu.run()
        assert emu.int_reg(1) == 10

    def test_dotproduct(self):
        program = kernel_program("dotproduct", n=4)
        for i in range(4):
            program.data[4096 + 8 * i] = i + 1
            program.data[32768 + 8 * i] = 2
        emu = Emulator(program)
        emu.run()
        assert emu.int_reg(1) == 2 * (1 + 2 + 3 + 4)

    def test_branchy_max_in_range(self):
        emu = Emulator(kernel_program("branchy_max", n=50))
        emu.run()
        assert 0 <= emu.int_reg(1) <= 1023

    def test_call_tree(self):
        emu = Emulator(kernel_program("call_tree", depth=4, rounds=3))
        emu.run()
        assert emu.int_reg(1) == 12  # depth * rounds calls

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_all_kernels_assemble_and_halt(self, name):
        emu = Emulator(kernel_program(name))
        emu.run(max_steps=5_000_000)
        assert emu.halted
