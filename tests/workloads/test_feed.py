"""Tests for the emulator feed and stream statistics."""

import pytest

from repro.isa.assembler import assemble
from repro.workloads.feed import EmulatorFeed, StreamStats, collect_stream


class TestEmulatorFeed:
    def test_yields_committed_stream(self):
        feed = EmulatorFeed(assemble("LDI r1, 1\nLDI r2, 2\nADD r3, r1, r2\nHALT"))
        ops = list(feed)
        assert [op.pc for op in ops] == [0, 1, 2]
        assert ops[2].sched_deps == (1, 2)

    def test_halt_not_yielded(self):
        ops = list(EmulatorFeed(assemble("NOP\nHALT")))
        assert len(ops) == 1

    def test_seq_is_dynamic_order(self):
        source = "LDI r1, 3\nloop: SUB r1, r1, #1\nBNE r1, loop\nHALT"
        ops = list(EmulatorFeed(assemble(source)))
        assert [op.seq for op in ops] == list(range(len(ops)))
        assert len(ops) == 1 + 3 * 2  # LDI + 3x(SUB, BNE)

    def test_restartable(self):
        feed = EmulatorFeed(assemble("LDI r1, 1\nHALT"))
        assert len(list(feed)) == len(list(feed)) == 1

    def test_branch_outcomes_recorded(self):
        source = "LDI r1, 2\nloop: SUB r1, r1, #1\nBNE r1, loop\nHALT"
        ops = list(EmulatorFeed(assemble(source)))
        branch_ops = [op for op in ops if op.is_branch]
        assert branch_ops[0].taken is True
        assert branch_ops[-1].taken is False

    def test_collect_stream_limits(self):
        source = "loop: ADD r1, r1, #1\nBR loop"
        ops = collect_stream(EmulatorFeed(assemble(source)), 10)
        assert len(ops) == 10


class TestStreamStats:
    SOURCE = "\n".join(
        [
            "LDI r1, 1",          # other
            "ADD r2, r1, r1",     # 2-src format, duplicate -> demoted
            "ADD r3, r1, r2",     # 2-source
            "ADD r4, r1, r31",    # 2-src format, zero-reg -> demoted
            "NOP2 r1, r2",        # eliminated 2-src-format nop
            "STQ r3, 0(r1)",      # store
            "LDQ r5, 0(r1)",      # other
            "HALT",
        ]
    )

    def test_categories(self):
        stats = StreamStats.from_stream(EmulatorFeed(assemble(self.SOURCE)))
        assert stats.total == 7
        assert stats.stores == 1
        assert stats.eliminated_nops == 1
        assert stats.two_source == 1
        assert stats.one_effective_source == 2
        assert stats.other == 2

    def test_fractions(self):
        stats = StreamStats.from_stream(EmulatorFeed(assemble(self.SOURCE)))
        assert stats.frac_two_source == pytest.approx(1 / 7)
        assert stats.frac_stores == pytest.approx(1 / 7)
        # Figure 2 counts non-store 2-source-format including nops.
        assert stats.frac_two_source_format == pytest.approx(4 / 7)

    def test_empty(self):
        stats = StreamStats()
        assert stats.frac_two_source == 0.0

    def test_limit(self):
        stats = StreamStats.from_stream(EmulatorFeed(assemble(self.SOURCE)), limit=2)
        assert stats.total == 2
