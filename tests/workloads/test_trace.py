"""Tests for DynOp construction and classification."""

from repro.isa.assembler import assemble
from repro.isa.opcodes import OpClass
from repro.isa.registers import R31
from repro.workloads.trace import DynOp, dynop_from_instruction


def op_from(source, **kwargs):
    inst = assemble(source).instructions[0]
    return dynop_from_instruction(seq=0, pc=0, inst=inst, **kwargs)


class TestFromInstruction:
    def test_two_source_alu(self):
        op = op_from("ADD r1, r2, r3")
        assert op.dest == 1
        assert op.sched_deps == (2, 3)
        assert op.is_two_source and op.is_two_source_format

    def test_immediate_alu(self):
        op = op_from("ADD r1, r2, #5")
        assert op.sched_deps == (2,)
        assert not op.is_two_source_format

    def test_zero_source_demoted(self):
        op = op_from("ADD r1, r2, r31")
        assert op.sched_deps == (2,)
        assert op.is_two_source_format and not op.is_two_source

    def test_duplicate_source_demoted(self):
        op = op_from("ADD r1, r2, r2")
        assert op.sched_deps == (2,)
        assert not op.is_two_source

    def test_store_splits_agen_and_data(self):
        op = op_from("STQ r4, 8(r2)", mem_addr=100)
        assert op.sched_deps == (2,)      # address base only
        assert op.store_data_reg == 4
        assert op.is_store and not op.is_two_source
        assert op.is_two_source_format    # Figure 2 keeps the raw format

    def test_store_with_zero_base(self):
        op = op_from("STQ r4, 8(r31)")
        assert op.sched_deps == ()

    def test_load(self):
        op = op_from("LDQ r4, 8(r2)", mem_addr=4104)
        assert op.is_load and op.mem_addr == 4104
        assert op.dest == 4 and op.sched_deps == (2,)

    def test_nop2_is_eliminated(self):
        op = op_from("NOP2 r1, r2")
        assert op.is_eliminated_nop
        assert op.dest is None
        assert op.sched_deps == ()

    def test_operate_to_zero_reg_is_eliminated(self):
        inst = assemble("ADD r1, r2, r3").instructions[0]
        from dataclasses import replace

        inst = replace(inst, dest=R31)
        op = dynop_from_instruction(0, 0, inst)
        assert op.is_eliminated_nop and op.dest is None and op.sched_deps == ()

    def test_branch_carries_target_and_outcome(self):
        op = op_from("loop: BEQ r1, loop", taken=True, next_pc=0)
        assert op.is_branch and op.taken
        assert op.next_pc == 0 and op.static_target == 0

    def test_default_next_pc_is_fallthrough(self):
        op = op_from("ADD r1, r2, r3")
        assert op.next_pc == 1


class TestDynOpDirect:
    def test_minimal_construction(self):
        op = DynOp(seq=5, pc=9, opcode="ADD", op_class=OpClass.INT_ALU)
        assert op.seq == 5 and op.next_pc == 10
        assert not op.is_load and not op.is_two_source

    def test_two_source_property(self):
        op = DynOp(0, 0, "ADD", OpClass.INT_ALU, dest=1, sched_deps=(2, 3))
        assert op.is_two_source

    def test_repr(self):
        assert "ADD" in repr(DynOp(0, 3, "ADD", OpClass.INT_ALU))
