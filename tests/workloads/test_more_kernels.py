"""Correctness tests for the second batch of kernels."""

import pytest

from repro.isa.emulator import Emulator
from repro.workloads.kernels import kernel_program


class TestBubbleSort:
    def test_sorts_ascending(self):
        emu = Emulator(kernel_program("bubble_sort", n=16))
        emu.run(max_steps=2_000_000)
        values = [emu.read_mem(4096 + 8 * i) for i in range(16)]
        assert values == sorted(values)

    def test_values_preserved(self):
        emu = Emulator(kernel_program("bubble_sort", n=12))
        emu.run(max_steps=2_000_000)
        values = [emu.read_mem(4096 + 8 * i) for i in range(12)]
        assert len(values) == 12 and all(0 <= v <= 8191 for v in values)


class TestMatmul:
    def test_matches_python(self):
        n = 4
        program = kernel_program("matmul", n=n)
        a = [[(i * n + j + 1) % 7 for j in range(n)] for i in range(n)]
        b = [[(i + 2 * j + 1) % 5 for j in range(n)] for i in range(n)]
        for i in range(n):
            for j in range(n):
                program.data[4096 + (i * n + j) * 8] = a[i][j]
                program.data[16384 + (i * n + j) * 8] = b[i][j]
        emu = Emulator(program)
        emu.run(max_steps=2_000_000)
        for i in range(n):
            for j in range(n):
                expected = sum(a[i][k] * b[k][j] for k in range(n))
                assert emu.read_mem(28672 + (i * n + j) * 8) == expected, (i, j)

    def test_zero_inputs(self):
        emu = Emulator(kernel_program("matmul", n=3))
        emu.run(max_steps=2_000_000)
        assert all(emu.read_mem(28672 + k * 8) == 0 for k in range(9))


class TestHashProbe:
    def test_hit_count_matches_reference(self):
        n, bits = 120, 8
        emu = Emulator(kernel_program("hash_probe", n=n, table_bits=bits))
        emu.run(max_steps=2_000_000)
        # Reference model of the same LCG + table behaviour.
        mask = (1 << bits) - 1
        state, table, hits = 98765, {}, 0
        for _ in range(n):
            state = (state * 1103515245 + 12345) & ((1 << 64) - 1)
            if state >= (1 << 63):
                state -= 1 << 64
            slot = ((state & ((1 << 64) - 1)) >> 9) & mask
            if table.get(slot, 0) != 0:
                hits += 1
            table[slot] = state or 1
        assert emu.int_reg(1) == hits


class TestMemscan:
    def test_finds_needle_at_end(self):
        n = 64
        emu = Emulator(kernel_program("memscan", n=n, needle=99))
        emu.run(max_steps=1_000_000)
        assert emu.int_reg(1) == n - 1

    def test_finds_earlier_occurrence(self):
        program = kernel_program("memscan", n=64, needle=55)
        program.data[4096 + 8 * 10] = 55
        emu = Emulator(program)
        emu.run(max_steps=1_000_000)
        assert emu.int_reg(1) == 10


class TestOnTimingSimulator:
    @pytest.mark.parametrize("name", ["bubble_sort", "matmul", "hash_probe", "memscan"])
    def test_kernels_simulate(self, name):
        from repro.pipeline import FOUR_WIDE, simulate
        from repro.workloads import EmulatorFeed

        kwargs = {"n": 10} if name != "hash_probe" else {"n": 50}
        feed = EmulatorFeed(kernel_program(name, **kwargs), name=name)
        result = simulate(feed, FOUR_WIDE, max_insts=10**6, warmup=0)
        assert result.stats.committed > 0
        assert 0.05 < result.ipc <= 4.0
