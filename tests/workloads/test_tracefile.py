"""Tests for trace file save/load round-trips."""

import pytest

from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import simulate
from repro.workloads.feed import EmulatorFeed, collect_stream
from repro.workloads.kernels import kernel_program
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.tracefile import TraceFileError, load_trace, save_trace


def fields_of(op):
    return (
        op.pc, op.opcode, op.dest, op.srcs, op.sched_deps, op.store_data_reg,
        op.mem_addr, op.taken, op.next_pc, op.static_target,
        op.is_two_source_format, op.is_eliminated_nop,
    )


class TestRoundTrip:
    def test_synthetic_round_trip(self, tmp_path):
        workload = SyntheticWorkload(get_profile("gcc"), seed=9)
        path = tmp_path / "gcc.trace"
        written = save_trace(workload, str(path), limit=2000, name="gcc")
        assert written == 2000
        feed = load_trace(str(path))
        assert feed.name == "gcc"
        original = collect_stream(workload, 2000)
        assert len(feed) == 2000
        for a, b in zip(original, feed.ops):
            assert fields_of(a) == fields_of(b)

    def test_kernel_round_trip(self, tmp_path):
        feed = EmulatorFeed(kernel_program("dotproduct", n=16))
        path = tmp_path / "k.trace"
        save_trace(feed, str(path), name="dotproduct")
        loaded = load_trace(str(path))
        for a, b in zip(feed, loaded.ops):
            assert fields_of(a) == fields_of(b)

    def test_gzip_round_trip(self, tmp_path):
        workload = SyntheticWorkload(get_profile("gzip"), seed=2)
        path = tmp_path / "t.trace.gz"
        save_trace(workload, str(path), limit=500)
        assert len(load_trace(str(path))) == 500

    def test_simulation_from_trace_matches_live(self, tmp_path):
        """Simulating the saved trace gives the identical IPC."""
        feed = EmulatorFeed(kernel_program("branchy_max", n=100), name="bm")
        path = tmp_path / "bm.trace"
        save_trace(feed, str(path), name="bm")
        live = simulate(feed, FOUR_WIDE, max_insts=10**6, warmup=0)
        replay = simulate(load_trace(str(path)), FOUR_WIDE, max_insts=10**6, warmup=0)
        assert replay.ipc == live.ipc
        assert replay.stats.committed == live.stats.committed

    def test_feed_is_reiterable(self, tmp_path):
        workload = SyntheticWorkload(get_profile("eon"), seed=3)
        path = tmp_path / "e.trace"
        save_trace(workload, str(path), limit=100)
        feed = load_trace(str(path))
        assert len(list(feed)) == len(list(feed)) == 100


class TestErrors:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "bogus.trace"
        path.write_text("hello\n")
        with pytest.raises(TraceFileError):
            load_trace(str(path))

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "short.trace"
        path.write_text("#repro-trace v1 name=x\n1 ADD 2\n")
        with pytest.raises(TraceFileError):
            load_trace(str(path))

    def test_unknown_opcode(self, tmp_path):
        path = tmp_path / "op.trace"
        path.write_text("#repro-trace v1 name=x\n0 FROB - - - - - 0 1 - -\n")
        with pytest.raises(TraceFileError):
            load_trace(str(path))

    def test_bad_integer(self, tmp_path):
        path = tmp_path / "int.trace"
        path.write_text("#repro-trace v1 name=x\nxx ADD - - - - - 0 1 - -\n")
        with pytest.raises(TraceFileError):
            load_trace(str(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text(
            "#repro-trace v1 name=x\n\n# a comment\n0 ADD 1 2,3 2,3 - - 0 1 - F\n"
        )
        feed = load_trace(str(path))
        assert len(feed) == 1 and feed.ops[0].is_two_source
