"""Tests for the sensitivity-sweep helpers."""

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweeps import sweep, width_sweep, window_size_sweep
from repro.pipeline.config import FOUR_WIDE, SchedulerModel


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(insts=800, warmup=1200, benchmarks=("gzip",))


class TestGenericSweep:
    def test_returns_metric_per_label(self, runner):
        configs = {
            "base": FOUR_WIDE,
            "seq": FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP),
        }
        values = sweep(runner, "gzip", configs)
        assert set(values) == {"base", "seq"}
        assert all(v > 0 for v in values.values())

    def test_custom_metric(self, runner):
        values = sweep(
            runner, "gzip", {"base": FOUR_WIDE},
            metric=lambda result: result.stats.committed,
        )
        assert values["base"] >= 800


class TestWindowSweep:
    def test_rows_and_monotonicity(self, runner):
        result = window_size_sweep(runner, "gzip", sizes=(16, 64))
        assert [row[0] for row in result.rows] == [16, 64]
        # A bigger window can only expose more ILP.
        assert result.rows[1][1] >= result.rows[0][1] * 0.9
        for row in result.rows:
            assert 0.8 <= row[3] <= 1.1


class TestWidthSweep:
    def test_widths_scale_ipc(self, runner):
        result = width_sweep(runner, "gzip", widths=(2, 8))
        narrow, wide = result.rows
        assert wide[1] >= narrow[1]
        for row in result.rows:
            assert 0.8 <= row[2] <= 1.1
