"""Self-validating result-cache records: corrupt files are misses.

Regression tests for the partial-write hazard: before v2 of the record
format, any JSON that parsed and carried the right fingerprint was served
as a hit — a torn write that flushed only a prefix (or a hand-edited
record) could feed wrong numbers into every downstream figure.  Records
now embed a checksum over their own payload and are rejected wholesale on
any mismatch.
"""

import json

from repro.analysis.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    fingerprint,
    record_checksum,
)
from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import Processor
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

RUN = ("gzip", 3, 300, 150)  # benchmark, seed, insts, warmup


def store_one(tmp_path):
    benchmark, seed, insts, warmup = RUN
    workload = SyntheticWorkload(get_profile(benchmark), seed=seed)
    result = Processor(workload, FOUR_WIDE).run(max_insts=insts, warmup=warmup)
    cache = ResultCache(tmp_path)
    path = cache.store(benchmark, seed, insts, warmup, FOUR_WIDE, None, result)
    return cache, path, result


def load_one(cache):
    benchmark, seed, insts, warmup = RUN
    return cache.load(benchmark, seed, insts, warmup, FOUR_WIDE, None)


class TestRecordChecksum:
    def test_stored_record_carries_valid_checksum(self, tmp_path):
        _, path, _ = store_one(tmp_path)
        record = json.loads(path.read_text())
        assert record["checksum"] == record_checksum(record)

    def test_intact_record_is_a_hit(self, tmp_path):
        cache, _, result = store_one(tmp_path)
        loaded = load_one(cache)
        assert loaded is not None
        assert loaded.total_cycles == result.total_cycles
        assert cache.hits == 1

    def test_tampered_counter_is_a_miss(self, tmp_path):
        cache, path, _ = store_one(tmp_path)
        record = json.loads(path.read_text())
        record["counters"]["committed"] += 1  # bit rot / manual edit
        path.write_text(json.dumps(record, sort_keys=True))
        assert load_one(cache) is None
        assert cache.misses == 1

    def test_missing_checksum_is_a_miss(self, tmp_path):
        """A pre-v2 style record (no checksum field) is never served."""
        cache, path, _ = store_one(tmp_path)
        record = json.loads(path.read_text())
        del record["checksum"]
        path.write_text(json.dumps(record, sort_keys=True))
        assert load_one(cache) is None

    def test_truncated_file_is_a_miss(self, tmp_path):
        cache, path, _ = store_one(tmp_path)
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])  # torn write
        assert load_one(cache) is None

    def test_partial_record_with_valid_json_is_a_miss(self, tmp_path):
        """The original hazard: a parseable record missing whole sections."""
        benchmark, seed, insts, warmup = RUN
        cache, path, _ = store_one(tmp_path)
        record = json.loads(path.read_text())
        del record["order"]  # JSON landed, but only partially materialized
        path.write_text(json.dumps(record, sort_keys=True))
        assert cache.load(benchmark, seed, insts, warmup, FOUR_WIDE, None) is None

    def test_structurally_broken_record_never_crashes(self, tmp_path):
        """Even with a 'valid' checksum, a malformed record is just a miss."""
        cache, path, _ = store_one(tmp_path)
        record = json.loads(path.read_text())
        del record["order"]
        record["checksum"] = record_checksum(record)  # adversarial re-sign
        path.write_text(json.dumps(record, sort_keys=True))
        assert load_one(cache) is None

    def test_corrupt_record_recomputes_and_heals(self, tmp_path):
        cache, path, result = store_one(tmp_path)
        path.write_text("}{ not json")
        assert load_one(cache) is None
        # Re-store overwrites the broken file and it serves again.
        benchmark, seed, insts, warmup = RUN
        cache.store(benchmark, seed, insts, warmup, FOUR_WIDE, None, result)
        assert load_one(cache) is not None

    def test_format_version_participates_in_fingerprint(self):
        """Bumping the record format invalidates every old record key."""
        digest = fingerprint(*RUN, FOUR_WIDE, None)
        assert CACHE_FORMAT_VERSION >= 2
        assert len(digest) == 64
