"""Singleflight deduplication, alone and wired into ExperimentRunner."""

import threading

from repro.analysis.runner import ExperimentRunner
from repro.analysis.singleflight import SingleFlight
from repro.pipeline.config import FOUR_WIDE


class TestSingleFlight:
    def test_sequential_calls_each_lead(self):
        flight = SingleFlight()
        calls = []
        assert flight.do("k", lambda: calls.append(1) or "a") == ("a", True)
        assert flight.do("k", lambda: calls.append(1) or "b") == ("b", True)
        assert len(calls) == 2  # key forgotten once a flight lands
        assert flight.in_flight() == 0

    def test_concurrent_same_key_computes_once(self):
        flight = SingleFlight()
        gate = threading.Event()
        executions = []
        results = []

        def compute():
            gate.wait(timeout=10)
            executions.append(threading.get_ident())
            return 42

        def call():
            results.append(flight.do("key", compute))

        threads = [threading.Thread(target=call) for _ in range(8)]
        for thread in threads:
            thread.start()
        while flight.in_flight() == 0:
            pass  # wait for a leader to register
        gate.set()
        for thread in threads:
            thread.join(timeout=10)

        assert len(executions) == 1  # exactly one leader ran fn
        assert [value for value, _leader in results] == [42] * 8
        assert sum(leader for _value, leader in results) == 1

    def test_different_keys_do_not_serialize(self):
        flight = SingleFlight()
        barrier = threading.Barrier(3, timeout=10)
        results = []

        def call(key):
            # All three must be in-flight simultaneously to pass the
            # barrier; serialization would deadlock (barrier timeout).
            value, leader = flight.do(key, lambda: (barrier.wait(), key)[1])
            results.append((value, leader))

        threads = [threading.Thread(target=call, args=(k,)) for k in ("a", "b", "c")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(value for value, _ in results) == ["a", "b", "c"]
        assert all(leader for _value, leader in results)

    def test_followers_reraise_leader_exception(self):
        flight = SingleFlight()
        gate = threading.Event()
        boom = RuntimeError("boom")
        errors = []

        def fail():
            gate.wait(timeout=10)
            raise boom

        def call():
            try:
                flight.do("key", fail)
            except RuntimeError as error:
                errors.append(error)

        threads = [threading.Thread(target=call) for _ in range(4)]
        for thread in threads:
            thread.start()
        while flight.in_flight() == 0:
            pass
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(errors) == 4
        assert all(error is boom for error in errors)
        # A failed flight is forgotten: the next call retries fresh.
        assert flight.do("key", lambda: "recovered") == ("recovered", True)


class TestRunnerCoalescing:
    def test_concurrent_result_calls_simulate_once(self):
        runner = ExperimentRunner(insts=80, warmup=40, cache=False)
        start = threading.Barrier(6, timeout=30)
        results = []
        errors = []

        def call():
            try:
                start.wait()
                results.append(runner.result("gzip", FOUR_WIDE, seed=3))
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=call) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert not errors
        assert len(results) == 6
        first = results[0]
        assert all(result is first for result in results)  # shared object
        assert runner.metrics.get("runner.simulated").value == 1
        coalesced = runner.metrics.get("runner.coalesced")
        memo_hits = runner.metrics.get("runner.memo_hits")
        followers = (coalesced.value if coalesced else 0) + (
            memo_hits.value if memo_hits else 0
        )
        assert followers == 5  # every other caller rode the leader or memo

    def test_distinct_seeds_still_simulate_separately(self):
        runner = ExperimentRunner(insts=80, warmup=40, cache=False)
        first = runner.result("gzip", FOUR_WIDE, seed=1)
        second = runner.result("gzip", FOUR_WIDE, seed=2)
        assert first is not second
        assert runner.metrics.get("runner.simulated").value == 2
