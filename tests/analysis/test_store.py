"""Contract tests for the shared content-addressed result store.

The store is the durability substrate of the cluster serving tier
(docs/SERVING.md, "Cluster mode"): atomic first-writer-wins publication,
checksum-verified reads with quarantine of torn blobs, and cross-process
claims that keep two processes from simulating one fingerprint.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time

from repro.analysis.cache import ResultCache, record_checksum
from repro.analysis.runner import ExperimentRunner
from repro.analysis.store import (
    QUARANTINE_DIR,
    DirectoryStore,
    MemoryStore,
)
from repro.pipeline.config import FOUR_WIDE

INSTS = 300
WARMUP = 150


def _record(fingerprint: str, payload: int = 1) -> dict:
    record = {"fingerprint": fingerprint, "payload": payload}
    record["checksum"] = record_checksum(record)
    return record


FP = "ab" + "0" * 62


class TestPublication:
    def test_round_trip(self, tmp_path):
        store = DirectoryStore(tmp_path)
        assert store.get(FP) is None
        assert store.put(FP, _record(FP)) is True
        loaded = store.get(FP)
        assert loaded is not None and loaded["payload"] == 1
        assert FP in store
        assert store.fingerprints() == [FP]

    def test_first_writer_wins(self, tmp_path):
        store = DirectoryStore(tmp_path)
        assert store.put(FP, _record(FP, payload=1)) is True
        assert store.put(FP, _record(FP, payload=2)) is False
        assert store.get(FP)["payload"] == 1
        assert store.duplicate_publishes == 1

    def test_concurrent_writers_publish_exactly_one_blob(self, tmp_path):
        """N racing writers on one fingerprint leave exactly one blob."""
        store = DirectoryStore(tmp_path)
        barrier = threading.Barrier(8)
        outcomes = []

        def publish(index: int) -> None:
            barrier.wait()
            outcomes.append(store.put(FP, _record(FP, payload=index)))

        threads = [threading.Thread(target=publish, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        blobs = [
            blob
            for blob in tmp_path.rglob("*.json")
            if QUARANTINE_DIR not in blob.parts
        ]
        assert len(blobs) == 1
        # The surviving blob is complete and verifiable, whoever won.
        record = store.get(FP)
        assert record is not None and record["payload"] in range(8)

    def test_blobs_are_sharded_by_prefix(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put(FP, _record(FP))
        assert (tmp_path / FP[:2] / f"{FP}.json").is_file()


class TestQuarantine:
    def test_torn_blob_is_quarantined_and_recomputable(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put(FP, _record(FP))
        path = tmp_path / FP[:2] / f"{FP}.json"
        # Truncate mid-record: the classic torn write.
        path.write_bytes(path.read_bytes()[:10])
        assert store.get(FP) is None
        assert store.quarantined == 1
        # The evidence is preserved, the slot reads empty, and a fresh
        # publication (the recompute) lands cleanly.
        quarantined = list((tmp_path / QUARANTINE_DIR).glob(f"{FP}.*.json"))
        assert len(quarantined) == 1
        assert store.put(FP, _record(FP, payload=9)) is True
        assert store.get(FP)["payload"] == 9

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put(FP, _record(FP))
        path = tmp_path / FP[:2] / f"{FP}.json"
        record = json.loads(path.read_text())
        record["payload"] = 999  # tamper without re-stamping
        path.write_text(json.dumps(record))
        assert store.get(FP) is None
        assert store.quarantined == 1

    def test_wrong_fingerprint_is_quarantined(self, tmp_path):
        store = DirectoryStore(tmp_path)
        other = "cd" + "0" * 62
        store.put(FP, _record(FP))
        # Copy the valid blob into another fingerprint's slot.
        source = tmp_path / FP[:2] / f"{FP}.json"
        target = tmp_path / other[:2] / f"{other}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())
        assert store.get(other) is None
        assert store.quarantined == 1

    def test_quarantine_excluded_from_listing(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put(FP, _record(FP))
        path = tmp_path / FP[:2] / f"{FP}.json"
        path.write_text("{ torn")
        assert store.get(FP) is None
        assert store.fingerprints() == []


class TestClaims:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        store = DirectoryStore(tmp_path)
        claim = store.claim(FP)
        assert claim is not None
        assert store.claim(FP) is None
        claim.release()
        second = store.claim(FP)
        assert second is not None
        second.release()

    def test_release_is_idempotent(self, tmp_path):
        store = DirectoryStore(tmp_path)
        claim = store.claim(FP)
        claim.release()
        claim.release()

    def test_stale_claim_is_broken(self, tmp_path):
        """A claim abandoned by a dead holder does not wedge the slot."""
        holder = DirectoryStore(tmp_path, claim_stale_s=0.05)
        assert holder.claim(FP) is not None  # never released: holder "died"
        time.sleep(0.1)
        contender = DirectoryStore(tmp_path, claim_stale_s=0.05)
        taken_over = contender.claim(FP)
        assert taken_over is not None
        taken_over.release()

    def test_memory_store_always_grants(self):
        store = MemoryStore()
        first, second = store.claim(FP), store.claim(FP)
        assert first is not None and second is not None

    def test_wait_sees_publication(self, tmp_path):
        store = DirectoryStore(tmp_path)

        def publish_soon():
            time.sleep(0.05)
            store.put(FP, _record(FP))

        thread = threading.Thread(target=publish_soon)
        thread.start()
        record = store.wait(FP, timeout=5.0)
        thread.join()
        assert record is not None and record["payload"] == 1

    def test_wait_times_out_to_none(self, tmp_path):
        store = DirectoryStore(tmp_path)
        assert store.wait(FP, timeout=0.05) is None


def _run_one(directory, queue):
    runner = ExperimentRunner(
        insts=INSTS,
        warmup=WARMUP,
        benchmarks=("gzip",),
        cache=ResultCache(directory),
    )
    result = runner.result("gzip", FOUR_WIDE)
    simulated = runner.metrics.get("runner.simulated")
    queue.put(
        {
            "simulated": simulated.value if simulated is not None else 0,
            "cycles": result.total_cycles,
            "committed": result.total_committed,
        }
    )


class TestCrossProcessSingleflight:
    def test_two_runner_processes_share_one_simulation(self, tmp_path):
        """Two ExperimentRunner *processes* on one store: one simulation.

        The store claim makes one process the computing leader; the other
        waits for the published blob instead of duplicating the work.
        """
        context = multiprocessing.get_context()
        queue = context.Queue()
        processes = [
            context.Process(target=_run_one, args=(tmp_path / "store", queue))
            for _ in range(2)
        ]
        for process in processes:
            process.start()
        outcomes = [queue.get(timeout=120) for _ in processes]
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        assert sum(outcome["simulated"] for outcome in outcomes) == 1
        signatures = {(o["cycles"], o["committed"]) for o in outcomes}
        assert len(signatures) == 1  # the waiter got the leader's result
