"""Determinism and invalidation tests for the parallel engine + result cache.

The contract under test (docs/PERFORMANCE.md): results served through the
process pool or the on-disk cache are indistinguishable from a fresh serial
simulation, and the cache never serves a record whose fingerprint inputs
(workload, seed, run lengths, machine config, timing-model version) changed.
"""

import dataclasses

import pytest

import repro.analysis.cache as cache_mod
from repro.analysis.cache import ResultCache, fingerprint
from repro.analysis.parallel import Job, env_int, execute_job, run_jobs
from repro.analysis.runner import SHADOW_SIZES, ExperimentRunner
from repro.pipeline.config import FOUR_WIDE, SchedulerModel

INSTS = 600
WARMUP = 800
SEQ_WAKEUP = FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)


def _signature(result):
    return (result.total_cycles, result.total_committed, result.ipc)


class TestDeterminism:
    def test_pool_matches_serial(self):
        jobs = [
            Job(benchmark, config, 42, INSTS, WARMUP)
            for benchmark in ("gzip", "mcf")
            for config in (FOUR_WIDE, SEQ_WAKEUP)
        ]
        serial = [execute_job(job) for job in jobs]
        pooled = run_jobs(jobs, workers=2)
        assert [_signature(r) for r in pooled] == [_signature(r) for r in serial]

    def test_cache_round_trip_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = execute_job(Job("gzip", FOUR_WIDE, 42, INSTS, WARMUP))
        cache.store("gzip", 42, INSTS, WARMUP, FOUR_WIDE, None, fresh)
        loaded = cache.load("gzip", 42, INSTS, WARMUP, FOUR_WIDE, None)
        assert loaded is not None
        assert _signature(loaded) == _signature(fresh)
        assert loaded.stats.replayed == fresh.stats.replayed
        assert loaded.stats.branch_mispredicts == fresh.stats.branch_mispredicts

    def test_shadow_bank_survives_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = execute_job(
            Job("gzip", FOUR_WIDE, 42, INSTS, WARMUP, shadow_sizes=SHADOW_SIZES)
        )
        cache.store("gzip", 42, INSTS, WARMUP, FOUR_WIDE, SHADOW_SIZES, fresh)
        loaded = cache.load("gzip", 42, INSTS, WARMUP, FOUR_WIDE, SHADOW_SIZES)
        assert loaded.stats.shadow_bank.accuracy_table() == (
            fresh.stats.shadow_bank.accuracy_table()
        )
        assert loaded.stats.shadow_bank.frac_simultaneous == (
            fresh.stats.shadow_bank.frac_simultaneous
        )

    def test_runner_disk_layer_matches_fresh_compute(self, tmp_path):
        writer = ExperimentRunner(
            insts=INSTS, warmup=WARMUP, benchmarks=("gzip",),
            cache=ResultCache(tmp_path),
        )
        computed = writer.result("gzip", FOUR_WIDE)
        reader = ExperimentRunner(
            insts=INSTS, warmup=WARMUP, benchmarks=("gzip",),
            cache=ResultCache(tmp_path),
        )
        served = reader.result("gzip", FOUR_WIDE)
        assert reader.cache.hits == 1
        assert _signature(served) == _signature(computed)

    def test_second_prefetch_simulates_nothing(self, tmp_path):
        requests = [("gzip", FOUR_WIDE, 42, False), ("mcf", FOUR_WIDE, 42, False)]
        writer = ExperimentRunner(
            insts=INSTS, warmup=WARMUP, benchmarks=("gzip", "mcf"),
            cache=ResultCache(tmp_path),
        )
        assert writer.prefetch(requests, workers=1) == 2
        reader = ExperimentRunner(
            insts=INSTS, warmup=WARMUP, benchmarks=("gzip", "mcf"),
            cache=ResultCache(tmp_path),
        )
        assert reader.prefetch(requests, workers=1) == 0
        assert reader.cache.hits == 2


class TestCacheInvalidation:
    def _store_one(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = execute_job(Job("gzip", FOUR_WIDE, 42, INSTS, WARMUP))
        cache.store("gzip", 42, INSTS, WARMUP, FOUR_WIDE, None, result)
        return cache

    def test_identical_params_hit(self, tmp_path):
        cache = self._store_one(tmp_path)
        assert cache.load("gzip", 42, INSTS, WARMUP, FOUR_WIDE, None) is not None
        assert cache.hits == 1 and cache.misses == 0

    def test_model_version_bump_misses(self, tmp_path, monkeypatch):
        cache = self._store_one(tmp_path)
        monkeypatch.setattr(
            cache_mod, "TIMING_MODEL_VERSION", cache_mod.TIMING_MODEL_VERSION + 1
        )
        assert cache.load("gzip", 42, INSTS, WARMUP, FOUR_WIDE, None) is None

    # the parameter is named "bench": pytest-benchmark reserves "benchmark"
    @pytest.mark.parametrize(
        "bench,seed,insts,warmup",
        [
            ("mcf", 42, INSTS, WARMUP),
            ("gzip", 43, INSTS, WARMUP),
            ("gzip", 42, INSTS + 1, WARMUP),
            ("gzip", 42, INSTS, WARMUP + 1),
        ],
    )
    def test_changed_run_identity_misses(self, tmp_path, bench, seed, insts, warmup):
        cache = self._store_one(tmp_path)
        assert cache.load(bench, seed, insts, warmup, FOUR_WIDE, None) is None

    def test_changed_config_misses(self, tmp_path):
        cache = self._store_one(tmp_path)
        assert cache.load("gzip", 42, INSTS, WARMUP, SEQ_WAKEUP, None) is None
        renamed = dataclasses.replace(FOUR_WIDE, ruu_size=FOUR_WIDE.ruu_size * 2)
        assert cache.load("gzip", 42, INSTS, WARMUP, renamed, None) is None

    def test_shadow_request_is_a_distinct_key(self, tmp_path):
        cache = self._store_one(tmp_path)
        assert cache.load("gzip", 42, INSTS, WARMUP, FOUR_WIDE, SHADOW_SIZES) is None

    def test_fingerprint_tracks_model_version(self, monkeypatch):
        before = fingerprint("gzip", 42, INSTS, WARMUP, FOUR_WIDE, None)
        monkeypatch.setattr(
            cache_mod, "TIMING_MODEL_VERSION", cache_mod.TIMING_MODEL_VERSION + 1
        )
        after = fingerprint("gzip", 42, INSTS, WARMUP, FOUR_WIDE, None)
        assert before != after

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = self._store_one(tmp_path)
        blobs = list(tmp_path.rglob("*.json"))
        assert blobs, "store published no blob"
        for path in blobs:
            path.write_text("{ not json")
        assert cache.load("gzip", 42, INSTS, WARMUP, FOUR_WIDE, None) is None


class TestEnvInt:
    def test_garbage_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "three")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_KNOB"):
            assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_valid_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "5")
        assert env_int("REPRO_TEST_KNOB", 7) == 5

    def test_absent_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 7) == 7
