"""Warm worker pool contract tests (repro.analysis.pool).

The guarantees under test: batched dispatch through the persistent pool
returns results **in submission order**, **byte-identical** to inline
execution, with **faithful exception propagation**; a SIGKILLed worker is
replaced and its chunk retried; warm workers are reused (no respawn, no
config re-ship); fully-warm prefetches never touch the pool; and
``REPRO_POOL=0`` falls back to the legacy per-call executor.
"""

import dataclasses
import os
import signal
import threading
import time

import pytest

import repro.analysis.pool as pool_mod
import repro.analysis.runner as runner_mod
from repro.analysis.cache import ResultCache, serialize_result
from repro.analysis.parallel import Job, execute_job, run_jobs
from repro.analysis.pool import TraceJob, WorkerCrashError, WorkerPool
from repro.analysis.runner import ExperimentRunner
from repro.errors import ConfigurationError
from repro.fastsim import native_available, numpy_available
from repro.pipeline.config import FOUR_WIDE

INSTS = 300
WARMUP = 150


@pytest.fixture
def pool():
    """A private 2-worker pool (the global singleton stays untouched)."""
    instance = WorkerPool(2, idle_s=0)
    yield instance
    instance.close()


def _jobs(count, insts=INSTS, base_seed=0):
    return [Job("gzip", FOUR_WIDE, base_seed + s, insts, WARMUP) for s in range(count)]


class TestOrderAndParity:
    def test_results_in_submission_order(self, pool):
        jobs = [
            Job(benchmark, FOUR_WIDE, seed, INSTS, WARMUP)
            for seed in (1, 2)
            for benchmark in ("gzip", "mcf", "gcc")
        ]
        results = pool.run(jobs)
        inline = [execute_job(job) for job in jobs]
        assert [_id(r) for r in results] == [_id(r) for r in inline]

    def test_byte_parity_vs_inline(self, pool):
        jobs = _jobs(8)
        results = pool.run(jobs)
        inline = [execute_job(job) for job in jobs]
        assert [serialize_result(r) for r in results] == [
            serialize_result(r) for r in inline
        ]

    def test_parity_survives_warm_redispatch(self, pool):
        jobs = _jobs(6)
        first = [serialize_result(r) for r in pool.run(jobs)]
        second = [serialize_result(r) for r in pool.run(jobs)]
        assert first == second
        metrics = pool.registry.as_dict()
        # Same configs, second dispatch: nothing re-shipped, nobody respawned.
        assert metrics["pool.worker_starts"] == 2
        assert metrics["pool.worker_reuse_hits"] >= 2
        assert metrics["pool.config_ships"] <= 2  # once per worker, ever

    def test_cross_backend_batch(self, pool):
        backends = ["python"]
        if numpy_available():
            backends.append("vector")
        if native_available():
            backends.append("native")
        jobs = [
            Job(
                "gzip",
                dataclasses.replace(FOUR_WIDE, backend=backend),
                5,
                INSTS,
                WARMUP,
            )
            for backend in backends
        ]
        results = pool.run(jobs)
        inline = [execute_job(job) for job in jobs]
        assert [serialize_result(r) for r in results] == [
            serialize_result(r) for r in inline
        ]

    def test_trace_jobs_share_a_decoded_feed(self):
        from repro.trace import load_corpus_feed

        feed = load_corpus_feed("vector_sum_80k")
        jobs = [
            TraceJob("vector_sum_80k", feed.content_hash, FOUR_WIDE, 2_000, 500)
            for _ in range(4)
        ]
        instance = WorkerPool(1, idle_s=0)  # one worker -> one decode
        try:
            results = instance.run(jobs)
            metrics = instance.registry.as_dict()
        finally:
            instance.close()
        from repro.fastsim import make_processor

        expected = serialize_result(
            make_processor(feed, FOUR_WIDE, backend=FOUR_WIDE.backend).run(
                max_insts=2_000, warmup=500
            )
        )
        assert [serialize_result(r) for r in results] == [expected] * 4
        assert metrics["pool.feed_loads"] == 1
        assert metrics["pool.feed_memo_hits"] == 3


class TestExceptions:
    def test_first_failure_raised_in_submission_order(self, pool):
        jobs = [
            Job("gzip", FOUR_WIDE, 1, INSTS, WARMUP),
            Job("no-such-benchmark", FOUR_WIDE, 1, INSTS, WARMUP),
            Job("also-missing", FOUR_WIDE, 1, INSTS, WARMUP),
        ]
        with pytest.raises(ConfigurationError, match="no-such-benchmark"):
            pool.run(jobs)

    def test_submit_isolates_failures_per_job(self, pool):
        jobs = [
            Job("no-such-benchmark", FOUR_WIDE, 1, INSTS, WARMUP),
            Job("gzip", FOUR_WIDE, 1, INSTS, WARMUP),
        ]
        bad, good = pool.submit(jobs)
        assert not bad.ok and isinstance(bad.error, ConfigurationError)
        assert good.ok and serialize_result(good.value) == serialize_result(
            execute_job(jobs[1])
        )


class TestCrashRecovery:
    def test_kill_between_dispatches_replaces_and_retries(self, pool):
        jobs = _jobs(4)
        expected = [serialize_result(r) for r in pool.run(jobs)]
        for pid in pool.worker_pids():
            os.kill(pid, signal.SIGKILL)
        results = pool.run(jobs)
        assert [serialize_result(r) for r in results] == expected
        assert pool.registry.as_dict()["pool.crash_replacements"] >= 1

    def test_sigkill_mid_batch_replaces_and_retries(self, pool):
        # Warm the pool, then kill one worker while a chunky batch is in
        # flight: its chunk must requeue onto the replacement and every
        # result still come back byte-identical.
        pool.run(_jobs(2))
        jobs = _jobs(8, insts=2_500, base_seed=50)
        victim = pool.worker_pids()[0]
        killer = threading.Timer(0.15, os.kill, args=(victim, signal.SIGKILL))
        killer.start()
        try:
            results = pool.run(jobs)
        finally:
            killer.cancel()
        inline = [serialize_result(execute_job(job)) for job in jobs]
        assert [serialize_result(r) for r in results] == inline
        # The timer may lose the race on a fast box; the parity assertion
        # above is the contract either way.

    def test_unrecoverable_crash_fails_only_its_chunk(self):
        instance = WorkerPool(1, idle_s=0, retries=0)
        try:
            instance.run(_jobs(1))
            os.kill(instance.worker_pids()[0], signal.SIGKILL)
            # retries=0: the chunk that died is not requeued — its job
            # fails loudly instead of silently vanishing...
            (outcome,) = instance.submit(_jobs(1))
            assert not outcome.ok and isinstance(outcome.error, WorkerCrashError)
            # ...and the replacement worker serves the next dispatch.
            (recovered,) = instance.submit(_jobs(1))
            assert recovered.ok
            assert instance.registry.as_dict()["pool.crash_replacements"] == 1
        finally:
            instance.close()


class TestLifecycle:
    def test_lazy_start_and_idle_reap(self):
        instance = WorkerPool(2, idle_s=0.2)
        try:
            assert not instance.started  # lazy: no dispatch, no processes
            instance.run(_jobs(2))
            assert instance.started
            deadline = time.monotonic() + 10
            while instance.started and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not instance.started
            assert instance.registry.as_dict()["pool.idle_reaps"] >= 1
            # A reaped pool restarts transparently on the next dispatch.
            results = instance.run(_jobs(2))
            assert len(results) == 2
        finally:
            instance.close()

    def test_warm_prefetch_never_touches_the_pool(self, tmp_path, monkeypatch):
        runner = ExperimentRunner(insts=INSTS, warmup=WARMUP, cache=ResultCache(tmp_path))
        requests = [("gzip", FOUR_WIDE, seed, False) for seed in (1, 2, 3)]
        assert runner.prefetch(requests, workers=1) == 3

        def explode(*args, **kwargs):
            raise AssertionError("fully-warm prefetch reached the fan-out layer")

        monkeypatch.setattr(runner_mod, "run_jobs", explode)
        monkeypatch.setattr(pool_mod, "get_pool", explode)
        # Memo-warm and (after a fresh runner) disk-warm sweeps both skip
        # the parallel engine entirely — the pool is never even created.
        assert runner.prefetch(requests, workers=4) == 0
        fresh = ExperimentRunner(insts=INSTS, warmup=WARMUP, cache=ResultCache(tmp_path))
        assert fresh.prefetch(requests, workers=4) == 0
        warm = fresh.metrics.get("runner.prefetch_warm_hits")
        assert warm is not None and warm.value == 3

    def test_repro_pool_disabled_falls_back_to_legacy_executor(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "0")

        def explode(*args, **kwargs):
            raise AssertionError("REPRO_POOL=0 must not touch the warm pool")

        monkeypatch.setattr(pool_mod, "get_pool", explode)
        jobs = _jobs(2)
        results = run_jobs(jobs, workers=2)
        assert [serialize_result(r) for r in results] == [
            serialize_result(execute_job(job)) for job in jobs
        ]


def _id(result):
    return (result.total_cycles, result.total_committed, result.ipc)
