"""Tests for the validation scorecard and cost summary."""

import pytest

from repro.analysis.experiments import cost_summary
from repro.analysis.runner import ExperimentRunner
from repro.analysis.validation import ALL_CHECKS, scorecard


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(insts=1000, warmup=1500, benchmarks=("gzip",), num_seeds=1)


class TestScorecard:
    def test_every_check_produces_a_row(self, runner):
        result = scorecard(runner)
        assert len(result.rows) == len(ALL_CHECKS)
        for row in result.rows:
            assert row[1] in ("PASS", "FAIL")
            assert row[2]  # detail string populated

    def test_timing_check_passes(self, runner):
        result = scorecard(runner)
        assert result.row_for("timing-anchors")[1] == "PASS"

    def test_subset_without_mcf_skips_ordering(self, runner):
        result = scorecard(runner)
        row = result.row_for("table2-mcf-slowest")
        assert row[1] == "PASS" and "skipped" in row[2]

    def test_check_names_unique(self):
        names = [check.name for check in ALL_CHECKS]
        assert len(names) == len(set(names))


class TestCostSummary:
    def test_hardware_rows_are_savings(self, runner):
        result = cost_summary(runner)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["fast-bus comparators / entry"][3] == -50.0
        assert by_name["wakeup delay, 64 entries (ps)"][3] < 0
        assert by_name["RF access time (ns)"][3] < 0
        assert by_name["RF area (rel)"][3] < -30.0

    def test_area_normalized(self, runner):
        result = cost_summary(runner)
        row = result.row_for("RF area (rel)")
        assert row[1] == 1.0 and 0.3 < row[2] < 0.7
