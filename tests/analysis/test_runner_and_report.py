"""Tests for the experiment runner, report rendering, and experiment defs."""

import pytest

from repro.analysis.report import ExperimentResult, render, render_bars
from repro.analysis.runner import ExperimentRunner
from repro.pipeline.config import FOUR_WIDE, SchedulerModel


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(insts=800, warmup=1200, benchmarks=("gzip", "mcf"))


class TestRunner:
    def test_memoization(self, runner):
        first = runner.base("gzip", 4)
        second = runner.base("gzip", 4)
        assert first is second

    def test_widths_are_distinct(self, runner):
        assert runner.base("gzip", 4) is not runner.base("gzip", 8)

    def test_normalized_ipc_near_one_for_base_variant(self, runner):
        config = FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)
        value = runner.normalized_ipc("gzip", config)
        assert 0.7 < value < 1.2

    def test_workload_shared(self, runner):
        assert runner.workload("mcf") is runner.workload("mcf")

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTS", "123")
        monkeypatch.setenv("REPRO_BENCHMARKS", "bzip,mcf")
        fresh = ExperimentRunner()
        assert fresh.insts == 123
        assert fresh.benchmarks == ("bzip", "mcf")

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTS", "not-a-number")
        assert ExperimentRunner().insts == 15_000


class TestReport:
    def result(self):
        return ExperimentResult(
            "Table X", "demo", ["name", "value"],
            rows=[["a", 1.5], ["b", 2.0]],
            notes=["a note"],
        )

    def test_render_contains_everything(self):
        text = render(self.result())
        assert "Table X" in text and "demo" in text
        assert "1.500" in text and "a note" in text

    def test_column_accessor(self):
        assert self.result().column("value") == [1.5, 2.0]

    def test_row_for(self):
        assert self.result().row_for("b") == ["b", 2.0]
        with pytest.raises(KeyError):
            self.result().row_for("zzz")

    def test_render_bars(self):
        text = render_bars("title", {"x": 1.0, "y": 0.5})
        assert "title" in text and "#" in text
        assert text.index("x") < text.index("y")

    def test_render_bars_empty(self):
        assert render_bars("t", {}) == "t"


class TestExperimentDefinitions:
    def test_all_registered(self):
        from repro.analysis.experiments import ALL_EXPERIMENTS

        expected = {
            "table1", "table2", "fig2", "fig3", "fig4", "fig6", "table3",
            "fig7", "fig10", "fig14", "fig15", "fig16", "timing", "cost",
            "predictors",
        }
        assert expected == set(ALL_EXPERIMENTS)

    def test_table2_structure(self, runner):
        from repro.analysis.experiments import table2

        result = table2(runner)
        assert [row[0] for row in result.rows] == ["gzip", "mcf"]
        for row in result.rows:
            assert row[2] > 0 and row[4] > 0

    def test_fig14_has_average_row(self, runner):
        from repro.analysis.experiments import fig14

        result = fig14(runner, width=4)
        assert result.rows[-1][0] == "average"
        assert 0.5 < result.rows[-1][1] < 1.2

    def test_fig7_uses_shadow_bank(self, runner):
        from repro.analysis.experiments import fig7

        result = fig7(runner)
        assert len(result.rows) == 2
        for row in result.rows:
            for accuracy in row[1:5]:
                assert 0.0 <= accuracy <= 100.0

    def test_timing_claims_match(self, runner):
        from repro.analysis.experiments import timing_claims

        result = timing_claims(runner)
        for _, measured, paper in result.rows:
            assert measured == pytest.approx(paper, rel=0.01)
