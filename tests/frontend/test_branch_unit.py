"""Tests for the branch unit facade."""

import pytest

from repro.frontend.branch_unit import BranchPrediction, BranchUnit


@pytest.fixture
def unit():
    return BranchUnit()


class TestConditionalBranches:
    def test_direction_training(self, unit):
        prediction = None
        for _ in range(8):
            prediction = unit.predict(10, "BEQ", static_target=3)
            unit.resolve(10, "BEQ", prediction, True, 3, fallthrough=11)
        assert unit.predict(10, "BEQ", static_target=3).predicted_taken

    def test_correct_prediction_counts(self, unit):
        for _ in range(8):
            prediction = unit.predict(10, "BNE", static_target=3)
            unit.resolve(10, "BNE", prediction, True, 3, fallthrough=11)
        before = unit.mispredictions
        prediction = unit.predict(10, "BNE", static_target=3)
        assert not unit.resolve(10, "BNE", prediction, True, 3, fallthrough=11)
        assert unit.mispredictions == before

    def test_direction_mispredict_detected(self, unit):
        for _ in range(8):
            prediction = unit.predict(10, "BEQ", static_target=3)
            unit.resolve(10, "BEQ", prediction, True, 3, fallthrough=11)
        prediction = unit.predict(10, "BEQ", static_target=3)
        assert unit.resolve(10, "BEQ", prediction, False, 11, fallthrough=11)


class TestUnconditional:
    def test_br_never_mispredicts(self, unit):
        prediction = unit.predict(5, "BR", static_target=2)
        assert prediction.predicted_taken and prediction.predicted_target == 2
        assert not unit.resolve(5, "BR", prediction, True, 2, fallthrough=6)


class TestIndirect:
    def test_jmp_uses_btb(self, unit):
        prediction = unit.predict(20, "JMP", static_target=None)
        assert prediction.predicted_target is None  # cold BTB
        assert unit.resolve(20, "JMP", prediction, True, 50, fallthrough=21)
        prediction = unit.predict(20, "JMP", static_target=None)
        assert prediction.predicted_target == 50
        assert not unit.resolve(20, "JMP", prediction, True, 50, fallthrough=21)

    def test_jsr_pushes_ras_and_ret_pops(self, unit):
        unit.predict(30, "JSR", static_target=None)
        prediction = unit.predict(90, "RET", static_target=None)
        assert prediction.predicted_target == 31

    def test_ret_empty_ras_falls_back_to_btb(self, unit):
        unit.btb.install(90, 31)
        prediction = unit.predict(90, "RET", static_target=None)
        assert prediction.predicted_target == 31


class TestAccuracy:
    def test_accuracy_tracks(self, unit):
        prediction = BranchPrediction(True, 3)
        unit.resolve(1, "BR", prediction, True, 3, fallthrough=2)
        unit.resolve(1, "BR", prediction, True, 4, fallthrough=2)
        assert unit.accuracy == pytest.approx(0.5)

    def test_next_pc_helper(self):
        assert BranchPrediction(False, 9).next_pc(5) == 5
        assert BranchPrediction(True, 9).next_pc(5) == 9
        assert BranchPrediction(True, None).next_pc(5) is None
