"""Tests for the branch target buffer and return address stack."""

import pytest

from repro.errors import ConfigurationError
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(16, 4)
        assert btb.lookup(100) is None
        btb.install(100, 7)
        assert btb.lookup(100) == 7

    def test_update_existing(self):
        btb = BranchTargetBuffer(16, 4)
        btb.install(100, 7)
        btb.install(100, 9)
        assert btb.lookup(100) == 9

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(8, 4)  # 2 sets; even PCs map to set 0
        for pc in (0, 2, 4, 6):
            btb.install(pc, pc + 1)
        btb.lookup(0)          # refresh PC 0
        btb.install(8, 9)      # evicts PC 2 (LRU)
        assert btb.lookup(0) == 1
        assert btb.lookup(2) is None

    def test_hit_rate(self):
        btb = BranchTargetBuffer(16, 4)
        btb.lookup(1)
        btb.install(1, 2)
        btb.lookup(1)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer(10, 4)

    def test_sets_partition_pcs(self):
        btb = BranchTargetBuffer(8, 4)
        btb.install(0, 1)
        btb.install(1, 2)
        assert btb.lookup(0) == 1
        assert btb.lookup(1) == 2


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10

    def test_empty_pop_returns_none(self):
        assert ReturnAddressStack(4).pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_peek_and_len(self):
        ras = ReturnAddressStack(4)
        assert ras.peek() is None
        ras.push(5)
        assert ras.peek() == 5
        assert len(ras) == 1

    def test_clear(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.clear()
        assert len(ras) == 0
