"""Tests for branch direction predictors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.frontend.direction import (
    BimodalPredictor,
    CombinedPredictor,
    GSharePredictor,
    SaturatingCounter,
)


class TestSaturatingCounter:
    def test_initial_weakly_taken(self):
        assert SaturatingCounter(2).value == 2

    def test_saturates_high(self):
        counter = SaturatingCounter(2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(2)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0

    def test_predict_threshold(self):
        counter = SaturatingCounter(2, initial=1)
        assert not counter.predict
        counter.increment()
        assert counter.predict

    def test_train(self):
        counter = SaturatingCounter(2, initial=0)
        counter.train(True)
        counter.train(True)
        assert counter.predict

    def test_zero_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(0)

    def test_hysteresis(self):
        """A strong counter survives one contrary outcome."""
        counter = SaturatingCounter(2, initial=3)
        counter.train(False)
        assert counter.predict


class TestBimodal:
    def test_learns_always_taken(self):
        predictor = BimodalPredictor(128)
        for _ in range(4):
            predictor.update(100, True)
        assert predictor.predict(100) is True

    def test_learns_never_taken(self):
        predictor = BimodalPredictor(128)
        for _ in range(4):
            predictor.update(100, False)
        assert predictor.predict(100) is False

    def test_aliasing_wraps_by_table_size(self):
        predictor = BimodalPredictor(128)
        for _ in range(4):
            predictor.update(0, False)
        assert predictor.predict(128) is False  # aliases to index 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(100)


class TestGShare:
    def test_learns_alternating_pattern(self):
        """gshare disambiguates T/N alternation through history."""
        predictor = GSharePredictor(1024, history_bits=8)
        outcome = True
        correct = 0
        total = 400
        for step in range(total):
            if predictor.predict(500) == outcome:
                correct += 1
            predictor.update(500, outcome)
            outcome = not outcome
        # After warmup the pattern should be predicted nearly perfectly;
        # a bimodal predictor would sit near 50%.
        assert correct / total > 0.9

    def test_history_updates(self):
        predictor = GSharePredictor(256, history_bits=4)
        predictor.update(0, True)
        predictor.update(0, False)
        assert predictor.history == 0b10


class TestCombined:
    def test_beats_components_on_mixed_workload(self):
        """Selector learns to route each branch to its better component."""
        combined = CombinedPredictor(1024, 1024, 1024, history_bits=8)
        # Branch A: strongly biased (bimodal-friendly).
        # Branch B: alternating (gshare-friendly).
        correct = 0
        total = 0
        outcome_b = True
        for step in range(600):
            for pc, outcome in ((40, True), (80, outcome_b)):
                if step > 200:  # measure after warmup
                    correct += combined.predict(pc) == outcome
                    total += 1
                combined.update(pc, outcome)
            outcome_b = not outcome_b
        assert correct / total > 0.9

    def test_biased_branch(self):
        combined = CombinedPredictor(256, 256, 256)
        for _ in range(10):
            combined.update(7, True)
        assert combined.predict(7) is True


class TestPredictorProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4095), st.booleans()), max_size=200))
    def test_predict_never_crashes_and_is_boolean(self, stream):
        predictor = CombinedPredictor(256, 256, 256)
        for pc, taken in stream:
            assert isinstance(predictor.predict(pc), bool)
            predictor.update(pc, taken)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1 << 40))
    def test_large_pcs_are_masked(self, pc):
        predictor = BimodalPredictor(64)
        predictor.update(pc, True)
        assert isinstance(predictor.predict(pc), bool)
