"""Backend resolution precedence, feature gating and the numpy gate."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fastsim import (
    BACKEND_ENV_VAR,
    BACKENDS,
    apply_backend,
    make_processor,
    numpy_available,
    resolve_backend,
)
from repro.pipeline.config import FOUR_WIDE, MachineConfig
from repro.pipeline.processor import Processor


class TestResolutionPrecedence:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend() == "python"
        assert resolve_backend(None, FOUR_WIDE) == "python"

    def test_config_field_beats_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        config = dataclasses.replace(FOUR_WIDE, backend="vector")
        assert resolve_backend(None, config) == "vector"

    def test_env_beats_config_field(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        config = dataclasses.replace(FOUR_WIDE, backend="vector")
        assert resolve_backend(None, config) == "python"

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend("vector", FOUR_WIDE) == "vector"

    def test_empty_env_var_is_ignored(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend(None, FOUR_WIDE) == "python"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend("cuda")
        monkeypatch.setenv(BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend()

    def test_config_validates_backend_field(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            dataclasses.replace(FOUR_WIDE, backend="cuda")


class TestApplyBackend:
    def test_materializes_resolved_choice(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vector")
        applied = apply_backend(FOUR_WIDE)
        assert applied.backend == "vector"
        assert applied.name == FOUR_WIDE.name  # backend never renames

    def test_no_change_returns_same_object(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert apply_backend(FOUR_WIDE) is FOUR_WIDE

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vector")
        assert apply_backend(FOUR_WIDE, "python").backend == "python"


class TestMakeProcessor:
    def test_python_backend_returns_reference_processor(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        processor = make_processor(iter(()), FOUR_WIDE)
        assert isinstance(processor, Processor)

    @pytest.mark.parametrize(
        "kwargs, needle",
        [
            ({"check": True}, "lockstep checking"),
            ({"record_schedule": True}, "schedule traces"),
            ({"profile": True}, "stage profiling"),
        ],
    )
    def test_vector_rejects_python_only_features(self, kwargs, needle):
        with pytest.raises(ConfigurationError, match=needle):
            make_processor(iter(()), FOUR_WIDE, backend="vector", **kwargs)

    def test_vector_rejects_dependence_matrix(self):
        config = dataclasses.replace(FOUR_WIDE, use_dependence_matrix=True)
        with pytest.raises(ConfigurationError, match="dependence-matrix"):
            make_processor(iter(()), config, backend="vector")

    def test_missing_numpy_message_is_actionable(self, monkeypatch):
        import repro.fastsim as fastsim

        monkeypatch.setattr(fastsim, "numpy_available", lambda: False)
        with pytest.raises(ConfigurationError) as excinfo:
            make_processor(iter(()), FOUR_WIDE, backend="vector")
        assert str(excinfo.value) == (
            "backend 'vector' needs numpy; install it with pip install -e .[fast]"
        )

    def test_cli_surfaces_numpy_gate_as_one_line_error(self, monkeypatch, capsys):
        """`repro run --backend vector` without numpy: clean error, exit 1."""
        import repro.fastsim as fastsim
        from repro.cli import main

        monkeypatch.setattr(fastsim, "numpy_available", lambda: False)
        code = main(
            ["run", "gzip", "--insts", "100", "--warmup", "0", "--backend", "vector"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.strip() == (
            "error: backend 'vector' needs numpy; "
            "install it with pip install -e .[fast]"
        )


class TestBackendsConstant:
    def test_known_backends(self):
        assert BACKENDS == ("python", "vector")
        assert MachineConfig.__dataclass_fields__["backend"].default == "python"

    def test_numpy_available_is_boolean(self):
        assert numpy_available() in (True, False)
