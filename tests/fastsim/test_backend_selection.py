"""Backend resolution precedence, feature gating and the install gates."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fastsim import (
    BACKEND_ENV_VAR,
    BACKENDS,
    apply_backend,
    available_backends,
    make_processor,
    native_available,
    numpy_available,
    resolve_backend,
)
from repro.pipeline.config import FOUR_WIDE, MachineConfig
from repro.pipeline.processor import Processor


class TestResolutionPrecedence:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend() == "python"
        assert resolve_backend(None, FOUR_WIDE) == "python"

    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_config_field_beats_default(self, monkeypatch, backend):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        config = dataclasses.replace(FOUR_WIDE, backend=backend)
        assert resolve_backend(None, config) == backend

    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_env_beats_config_field(self, monkeypatch, backend):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        config = dataclasses.replace(FOUR_WIDE, backend=backend)
        assert resolve_backend(None, config) == "python"

    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_explicit_flag_beats_env(self, monkeypatch, backend):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend(backend, FOUR_WIDE) == backend

    def test_env_native_beats_config_vector(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "native")
        config = dataclasses.replace(FOUR_WIDE, backend="vector")
        assert resolve_backend(None, config) == "native"

    def test_empty_env_var_is_ignored(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend(None, FOUR_WIDE) == "python"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend("cuda")
        monkeypatch.setenv(BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend()

    def test_config_validates_backend_field(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            dataclasses.replace(FOUR_WIDE, backend="cuda")


class TestApplyBackend:
    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_materializes_resolved_choice(self, monkeypatch, backend):
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        applied = apply_backend(FOUR_WIDE)
        assert applied.backend == backend
        assert applied.name == FOUR_WIDE.name  # backend never renames

    def test_no_change_returns_same_object(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert apply_backend(FOUR_WIDE) is FOUR_WIDE

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vector")
        assert apply_backend(FOUR_WIDE, "python").backend == "python"


class TestMakeProcessor:
    def test_python_backend_returns_reference_processor(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        processor = make_processor(iter(()), FOUR_WIDE)
        assert isinstance(processor, Processor)

    @pytest.mark.parametrize("backend", ["vector", "native"])
    @pytest.mark.parametrize(
        "kwargs, needle",
        [
            ({"check": True}, "lockstep checking"),
            ({"record_schedule": True}, "schedule traces"),
            ({"profile": True}, "stage profiling"),
        ],
    )
    def test_fast_backends_reject_python_only_features(
        self, kwargs, needle, backend
    ):
        with pytest.raises(ConfigurationError, match=needle):
            make_processor(iter(()), FOUR_WIDE, backend=backend, **kwargs)

    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_fast_backends_reject_dependence_matrix(self, backend):
        config = dataclasses.replace(FOUR_WIDE, use_dependence_matrix=True)
        with pytest.raises(ConfigurationError, match="dependence-matrix"):
            make_processor(iter(()), config, backend=backend)

    def test_missing_numpy_message_is_actionable(self, monkeypatch):
        import repro.fastsim as fastsim

        monkeypatch.setattr(fastsim, "numpy_available", lambda: False)
        with pytest.raises(ConfigurationError) as excinfo:
            make_processor(iter(()), FOUR_WIDE, backend="vector")
        assert str(excinfo.value) == (
            "backend 'vector' needs numpy; install it with pip install -e .[fast]"
        )

    def test_missing_native_message_is_actionable(self, monkeypatch):
        import repro.fastsim as fastsim

        monkeypatch.setattr(fastsim, "native_available", lambda: False)
        with pytest.raises(ConfigurationError) as excinfo:
            make_processor(iter(()), FOUR_WIDE, backend="native")
        assert str(excinfo.value) == (
            "backend 'native' needs the compiled extension; build it "
            "with pip install -e .[native] (requires a C compiler)"
        )

    def test_cli_surfaces_numpy_gate_as_one_line_error(self, monkeypatch, capsys):
        """`repro run --backend vector` without numpy: clean error, exit 1."""
        import repro.fastsim as fastsim
        from repro.cli import main

        monkeypatch.setattr(fastsim, "numpy_available", lambda: False)
        code = main(
            ["run", "gzip", "--insts", "100", "--warmup", "0", "--backend", "vector"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.strip() == (
            "error: backend 'vector' needs numpy; "
            "install it with pip install -e .[fast]"
        )

    def test_cli_surfaces_native_gate_as_one_line_error(self, monkeypatch, capsys):
        """`repro run --backend native` without the artifact: clean error."""
        import repro.fastsim as fastsim
        from repro.cli import main

        monkeypatch.setattr(fastsim, "native_available", lambda: False)
        code = main(
            ["run", "gzip", "--insts", "100", "--warmup", "0", "--backend", "native"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.strip() == (
            "error: backend 'native' needs the compiled extension; "
            "build it with pip install -e .[native] (requires a C compiler)"
        )


class TestBackendsConstant:
    def test_known_backends(self):
        assert BACKENDS == ("python", "vector", "native")
        assert MachineConfig.__dataclass_fields__["backend"].default == "python"

    def test_numpy_available_is_boolean(self):
        assert numpy_available() in (True, False)

    def test_native_available_is_boolean(self):
        assert native_available() in (True, False)

    def test_available_backends_is_installed_subset(self):
        installed = available_backends()
        assert installed[0] == "python"
        assert set(installed) <= set(BACKENDS)
        assert ("vector" in installed) == numpy_available()
        assert ("native" in installed) == native_available()
