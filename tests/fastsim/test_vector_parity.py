"""Bit-parity of the vector backend against the reference Processor.

The heavyweight gate is ``repro fuzz --cross-backend`` (random programs,
full config matrix); these tests pin a fast deterministic slice of the
same contract in tier-1: identical serialized results — every counter,
histogram and predictor-bank count — on representative machine variants,
plus the cross-backend fuzz plumbing itself.
"""

import json

import pytest

from repro.analysis.cache import serialize_result
from repro.fastsim import make_processor, numpy_available
from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    BypassModel,
    RecoveryModel,
    RegFileModel,
    RenameModel,
    SchedulerModel,
)
from repro.workloads.feed import EmulatorFeed, ReplayFeed
from repro.workloads.kernels import kernel_program
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vector backend needs numpy"
)

_VARIANTS = {
    "base": FOUR_WIDE,
    "seq-wakeup+sel": FOUR_WIDE.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP, recovery=RecoveryModel.SELECTIVE
    ),
    "tag-elim": FOUR_WIDE.with_techniques(scheduler=SchedulerModel.TAG_ELIM),
    "kitchen-sink": FOUR_WIDE.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP,
        regfile=RegFileModel.SEQUENTIAL,
        rename=RenameModel.HALF_PORTS,
        bypass=BypassModel.HALF,
        recovery=RecoveryModel.SELECTIVE,
    ),
    "8-wide": EIGHT_WIDE,
}


def _payload(processor, insts, warmup):
    result = processor.run(max_insts=insts, warmup=warmup)
    return json.dumps(serialize_result(result), sort_keys=True)


def _assert_parity(make_feed, config, insts=1_200, warmup=0, shadow=None):
    payloads = {}
    for backend in ("python", "vector"):
        processor = make_processor(
            make_feed(), config, backend=backend, shadow_sizes=shadow
        )
        payloads[backend] = _payload(processor, insts, warmup)
    assert payloads["python"] == payloads["vector"]


@pytest.mark.parametrize("name", sorted(_VARIANTS))
def test_synthetic_workload_parity(name):
    config = _VARIANTS[name]
    _assert_parity(
        lambda: SyntheticWorkload(get_profile("gzip"), seed=3), config
    )


def test_parity_with_warmup_and_shadow_bank():
    _assert_parity(
        lambda: SyntheticWorkload(get_profile("gcc"), seed=7),
        FOUR_WIDE,
        warmup=200,
        shadow=(64, 256),
    )


def test_emulator_feed_parity():
    """The generator ingest path (no decoded columns) is also bit-exact."""
    program = kernel_program("pointer_chase")
    _assert_parity(lambda: EmulatorFeed(program, name="pointer_chase"), FOUR_WIDE)


def test_replay_feed_decoded_columns_parity():
    """Pre-decoded ReplayFeed (the fast path) matches the reference too."""
    workload = SyntheticWorkload(get_profile("vortex"), seed=5)
    feed = ReplayFeed.from_stream(workload, 1_600)
    feed.columns()
    _assert_parity(lambda: feed_copy(feed), FOUR_WIDE)


def feed_copy(feed):
    """Fresh ReplayFeed over the same ops (processors consume feeds once)."""
    clone = ReplayFeed(
        feed.ops, name=feed.name, pc_address=getattr(feed, "pc_address", None)
    )
    clone.columns()
    return clone


def test_vector_backend_is_single_run():
    workload = SyntheticWorkload(get_profile("gzip"), seed=3)
    processor = make_processor(workload, FOUR_WIDE, backend="vector")
    processor.run(max_insts=300, warmup=0)
    with pytest.raises(Exception, match="single-run"):
        processor.run(max_insts=300, warmup=0)


def test_cross_backend_fuzz_smoke():
    """A short cross-backend fuzz session through the real orchestration."""
    from repro.verify.fuzz import config_matrix, run_fuzz

    report = run_fuzz(
        3,
        seed=11,
        configs=config_matrix(names=["base", "tag-elim+sel"]),
        cross_backend=True,
    )
    assert report.ok, report.summary()
    assert report.checked == 3 * 3  # 3 programs x (base x2 recoveries + 1)


def test_runner_serves_both_backends_identically(monkeypatch, tmp_path):
    """REPRO_BACKEND flows through the runner; stats stay bit-identical."""
    from repro.analysis.runner import ExperimentRunner

    payloads = {}
    for backend in ("python", "vector"):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        runner = ExperimentRunner(
            insts=800, warmup=200, seed=3, benchmarks=("gzip",), cache=False
        )
        result = runner.result("gzip", FOUR_WIDE)
        payloads[backend] = json.dumps(serialize_result(result), sort_keys=True)
    assert payloads["python"] == payloads["vector"]
