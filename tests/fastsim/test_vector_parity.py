"""Bit-parity of the vector and native backends against the reference.

The heavyweight gate is ``repro fuzz --cross-backend`` (random programs,
full config matrix); these tests pin a fast deterministic slice of the
same contract in tier-1: identical serialized results — every counter,
histogram and predictor-bank count — on representative machine variants,
plus the cross-backend fuzz plumbing itself.  Every parity test is
parameterized over both fast backends and skips cleanly when a backend's
prerequisite (numpy / the compiled extension) is missing.
"""

import json

import pytest

from repro.analysis.cache import serialize_result
from repro.fastsim import make_processor, native_available, numpy_available
from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    BypassModel,
    RecoveryModel,
    RegFileModel,
    RenameModel,
    SchedulerModel,
)
from repro.workloads.feed import EmulatorFeed, ReplayFeed
from repro.workloads.kernels import kernel_program
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

_VARIANTS = {
    "base": FOUR_WIDE,
    "seq-wakeup+sel": FOUR_WIDE.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP, recovery=RecoveryModel.SELECTIVE
    ),
    "tag-elim": FOUR_WIDE.with_techniques(scheduler=SchedulerModel.TAG_ELIM),
    "kitchen-sink": FOUR_WIDE.with_techniques(
        scheduler=SchedulerModel.SEQ_WAKEUP,
        regfile=RegFileModel.SEQUENTIAL,
        rename=RenameModel.HALF_PORTS,
        bypass=BypassModel.HALF,
        recovery=RecoveryModel.SELECTIVE,
    ),
    "8-wide": EIGHT_WIDE,
}

#: Fast backends under parity test, with their availability probes.
_FAST_BACKENDS = ("vector", "native")


def _require(backend):
    if backend == "vector" and not numpy_available():
        pytest.skip("vector backend needs numpy (pip install -e .[fast])")
    if backend == "native" and not native_available():
        pytest.skip(
            "native backend needs the compiled extension "
            "(pip install -e .[native])"
        )


def _payload(processor, insts, warmup):
    result = processor.run(max_insts=insts, warmup=warmup)
    return json.dumps(serialize_result(result), sort_keys=True)


def _assert_parity(
    make_feed, config, fast_backend, insts=1_200, warmup=0, shadow=None
):
    payloads = {}
    for backend in ("python", fast_backend):
        processor = make_processor(
            make_feed(), config, backend=backend, shadow_sizes=shadow
        )
        payloads[backend] = _payload(processor, insts, warmup)
    assert payloads["python"] == payloads[fast_backend]


@pytest.mark.parametrize("backend", _FAST_BACKENDS)
@pytest.mark.parametrize("name", sorted(_VARIANTS))
def test_synthetic_workload_parity(name, backend):
    _require(backend)
    config = _VARIANTS[name]
    _assert_parity(
        lambda: SyntheticWorkload(get_profile("gzip"), seed=3), config, backend
    )


@pytest.mark.parametrize("backend", _FAST_BACKENDS)
def test_parity_with_warmup_and_shadow_bank(backend):
    _require(backend)
    _assert_parity(
        lambda: SyntheticWorkload(get_profile("gcc"), seed=7),
        FOUR_WIDE,
        backend,
        warmup=200,
        shadow=(64, 256),
    )


@pytest.mark.parametrize("backend", _FAST_BACKENDS)
def test_emulator_feed_parity(backend):
    """The generator ingest path (no decoded columns) is also bit-exact."""
    _require(backend)
    program = kernel_program("pointer_chase")
    _assert_parity(
        lambda: EmulatorFeed(program, name="pointer_chase"), FOUR_WIDE, backend
    )


@pytest.mark.parametrize("backend", _FAST_BACKENDS)
def test_replay_feed_decoded_columns_parity(backend):
    """Pre-decoded ReplayFeed (the fast path) matches the reference too."""
    _require(backend)
    workload = SyntheticWorkload(get_profile("vortex"), seed=5)
    feed = ReplayFeed.from_stream(workload, 1_600)
    feed.columns()
    _assert_parity(lambda: feed_copy(feed), FOUR_WIDE, backend)


def feed_copy(feed):
    """Fresh ReplayFeed over the same ops (processors consume feeds once)."""
    clone = ReplayFeed(
        feed.ops, name=feed.name, pc_address=getattr(feed, "pc_address", None)
    )
    clone.columns()
    return clone


@pytest.mark.parametrize("backend", _FAST_BACKENDS)
def test_fast_backends_are_single_run(backend):
    _require(backend)
    workload = SyntheticWorkload(get_profile("gzip"), seed=3)
    processor = make_processor(workload, FOUR_WIDE, backend=backend)
    processor.run(max_insts=300, warmup=0)
    with pytest.raises(Exception, match="single-run"):
        processor.run(max_insts=300, warmup=0)


def test_cross_backend_fuzz_smoke():
    """A short cross-backend fuzz session through the real orchestration.

    Covers every installed backend (the default resolution), so on a
    fully-built checkout this is a genuine python/vector/native 3-way
    byte-parity check.
    """
    from repro.verify.fuzz import config_matrix, run_fuzz

    if not numpy_available():
        pytest.skip("cross-backend fuzzing needs at least the vector backend")
    report = run_fuzz(
        3,
        seed=11,
        configs=config_matrix(names=["base", "tag-elim+sel"]),
        cross_backend=True,
    )
    assert report.ok, report.summary()
    assert report.checked == 3 * 3  # 3 programs x (base x2 recoveries + 1)
    assert report.backends is not None and report.backends[0] == "python"
    assert ("native" in report.backends) == native_available()


def test_cross_backend_fuzz_pinned_backends_fail_loudly(monkeypatch):
    """A CI leg that pins --backends must not silently narrow the gate."""
    import repro.verify.fuzz as fuzz_mod
    from repro.errors import ConfigurationError
    from repro.verify.fuzz import resolve_cross_backends

    monkeypatch.setattr(fuzz_mod, "native_available", lambda: False)
    with pytest.raises(ConfigurationError, match="compiled extension"):
        resolve_cross_backends(["python", "vector", "native"])


@pytest.mark.parametrize("backend", _FAST_BACKENDS)
def test_runner_serves_all_backends_identically(monkeypatch, backend):
    """REPRO_BACKEND flows through the runner; stats stay bit-identical."""
    _require(backend)
    from repro.analysis.runner import ExperimentRunner

    payloads = {}
    for choice in ("python", backend):
        monkeypatch.setenv("REPRO_BACKEND", choice)
        runner = ExperimentRunner(
            insts=800, warmup=200, seed=3, benchmarks=("gzip",), cache=False
        )
        result = runner.result("gzip", FOUR_WIDE)
        payloads[choice] = json.dumps(serialize_result(result), sort_keys=True)
    assert payloads["python"] == payloads[backend]
