"""Queue persistence: journal mechanics and crash/restart recovery."""

from repro.analysis.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.executor import JobExecutor
from repro.serve.jobs import JobTable, SpoolJournal
from repro.serve.protocol import parse_spec
from repro.serve.server import BackgroundServer

from .conftest import tiny_run


def _submit(table: JobTable, journal: SpoolJournal, wire: dict):
    job, _coalesced = table.submit(parse_spec(wire))
    journal.record_submit(job)
    return job


class TestSpoolJournal:
    def test_submit_then_recover(self, tmp_path):
        table, journal = JobTable(), SpoolJournal(tmp_path)
        _submit(table, journal, tiny_run())
        _submit(table, journal, tiny_run("gcc"))
        recovered = SpoolJournal(tmp_path).recover()
        assert [job_id for job_id, _spec in recovered] == ["j-000001", "j-000002"]
        assert recovered[0][1].benchmark == "gzip"

    def test_done_jobs_are_not_recovered(self, tmp_path):
        table, journal = JobTable(), SpoolJournal(tmp_path)
        first = _submit(table, journal, tiny_run())
        _submit(table, journal, tiny_run("gcc"))
        for settled in table.finish(first, result={"kind": "run"}):
            journal.record_done(settled)
        recovered = SpoolJournal(tmp_path).recover()
        assert [job_id for job_id, _spec in recovered] == ["j-000002"]

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        table, journal = JobTable(), SpoolJournal(tmp_path)
        _submit(table, journal, tiny_run())
        with journal.path.open("a") as handle:
            handle.write('{"op": "submit", "id": "j-0000')  # crash mid-write
        recovered = SpoolJournal(tmp_path).recover()
        assert [job_id for job_id, _spec in recovered] == ["j-000001"]

    def test_compact_rewrites_only_pending(self, tmp_path):
        table, journal = JobTable(), SpoolJournal(tmp_path)
        jobs = [_submit(table, journal, tiny_run(seed=index)) for index in range(1, 5)]
        for settled in table.finish(jobs[0], result={}):
            journal.record_done(settled)
        for settled in table.finish(jobs[2], error="boom"):
            journal.record_done(settled)
        journal.compact(table.pending(), next_id=table.next_id)
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 3  # id watermark + one submit per pending job
        fresh = SpoolJournal(tmp_path)
        assert [job_id for job_id, _spec in fresh.recover()] == ["j-000002", "j-000004"]
        assert fresh.next_id == 5

    def test_watermark_prevents_id_reuse_after_compaction(self, tmp_path):
        table, journal = JobTable(), SpoolJournal(tmp_path)
        jobs = [_submit(table, journal, tiny_run(seed=index)) for index in range(1, 4)]
        # The highest-numbered job completes; compaction drops its records.
        for settled in table.finish(jobs[2], result={}):
            journal.record_done(settled)
        journal.compact(table.pending(), next_id=table.next_id)

        fresh_table, fresh_journal = JobTable(), SpoolJournal(tmp_path)
        for job_id, spec in fresh_journal.recover():
            fresh_table.submit(spec, job_id=job_id)
        fresh_table.reserve_next_id(fresh_journal.next_id)
        new_job, _ = fresh_table.submit(parse_spec(tiny_run(seed=99)))
        assert new_job.id == "j-000004"  # j-000003 is never reissued


class TestCrashRestart:
    def test_crash_loses_nothing_and_restart_completes(self, tmp_path):
        spool = tmp_path / "spool"
        cache = tmp_path / "cache"
        specs = [tiny_run(seed=seed) for seed in range(4)]

        # Phase 1: accept jobs but never run them (workers=0), then crash.
        first = BackgroundServer(
            port=0, workers=0, spool=spool,
            executor=JobExecutor(cache=ResultCache(cache)),
        )
        first.start()
        ids = [r["id"] for r in ServeClient(first.base_url).submit(specs)]
        first.stop(graceful=False)  # simulated crash: no drain, no compaction

        # The journal still holds every submission, none marked done.
        assert len(SpoolJournal(spool).recover()) == 4

        # Phase 2: a fresh process over the same spool finishes the backlog.
        second = BackgroundServer(
            port=0, workers=2, spool=spool,
            executor=JobExecutor(cache=ResultCache(cache)),
        )
        with second:
            client = ServeClient(second.base_url)
            for job_id in ids:
                document = client.wait(job_id, timeout=60, poll=1.0)
                assert document["status"] == "done"
                assert document["id"] == job_id  # original ids survive restart
        assert SpoolJournal(spool).recover() == []

    def test_graceful_drain_persists_queued_jobs(self, tmp_path):
        spool = tmp_path / "spool"
        server = BackgroundServer(
            port=0, workers=0, spool=spool,
            executor=JobExecutor(cache=ResultCache(tmp_path / "cache")),
        )
        server.start()
        ServeClient(server.base_url).submit([tiny_run(seed=s) for s in range(3)])
        server.stop(graceful=True)
        # Drain compacts the journal down to the id watermark plus
        # exactly the pending jobs.
        lines = SpoolJournal(spool).path.read_text().splitlines()
        assert len(lines) == 4
        assert len(SpoolJournal(spool).recover()) == 3

    def test_restart_does_not_resimulate_coalesced_backlog(self, tmp_path):
        spool = tmp_path / "spool"
        cache = tmp_path / "cache"
        first = BackgroundServer(
            port=0, workers=0, spool=spool,
            executor=JobExecutor(cache=ResultCache(cache)),
        )
        first.start()
        # Six jobs, two distinct fingerprints.
        ids = [
            r["id"]
            for r in ServeClient(first.base_url).submit(
                [tiny_run()] * 3 + [tiny_run("gcc")] * 3
            )
        ]
        first.stop(graceful=False)

        executor = JobExecutor(cache=ResultCache(cache))
        second = BackgroundServer(port=0, workers=2, spool=spool, executor=executor)
        with second:
            client = ServeClient(second.base_url)
            for job_id in ids:
                assert client.wait(job_id, timeout=60, poll=1.0)["status"] == "done"
            assert executor.simulated() == 2  # coalescing re-established on recovery
