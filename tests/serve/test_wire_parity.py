"""The wire path must be indistinguishable from the offline path.

Two guarantees: (a) a run served over HTTP and written with
``write_stats_json`` produces a byte-identical file to a direct
``ExperimentRunner.export_run`` call with the same inputs, and (b) every
program in the differential-fuzzing corpus replayed through a served
``verify`` job agrees with a direct ``check_source`` call.
"""

from pathlib import Path

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.runner import ExperimentRunner
from repro.obs.export import write_stats_json
from repro.serve.client import ServeClient
from repro.serve.executor import JobExecutor
from repro.serve.protocol import parse_spec
from repro.serve.server import BackgroundServer
from repro.verify import check_source, config_matrix

from .conftest import TINY, tiny_run

CORPUS = sorted(Path(__file__).parent.parent.joinpath("verify", "corpus").glob("*.hpa"))


class TestRunExportParity:
    def test_served_stats_bytes_match_offline_export(self, tmp_path, server):
        specs = [tiny_run(seed=7), tiny_run("gcc", scheduler="seq_wakeup", shadow=True)]
        client = ServeClient(server.base_url)
        receipts = client.submit(specs)

        served_dir = tmp_path / "served"
        offline_dir = tmp_path / "offline"
        # Offline path: a fresh runner over its own empty cache.
        runner = ExperimentRunner(
            insts=TINY["insts"], warmup=TINY["warmup"],
            cache=ResultCache(tmp_path / "offline-cache"),
        )
        for wire, receipt in zip(specs, receipts):
            document = client.wait(receipt["id"], timeout=60, poll=1.0)
            served_path = write_stats_json(document["result"]["stats"], served_dir)

            spec = parse_spec(wire)
            offline_path = runner.export_run(
                spec.benchmark, spec.config(), offline_dir,
                seed=spec.seed, shadow=spec.shadow,
            )
            assert served_path.name == offline_path.name
            assert served_path.read_bytes() == offline_path.read_bytes()


class TestCorpusReplay:
    def test_corpus_exists(self):
        assert len(CORPUS) >= 1  # the fuzzing PR seeded these

    @pytest.mark.parametrize("program", CORPUS, ids=lambda path: path.stem)
    def test_served_verify_matches_direct_check(self, program, tmp_path):
        source = program.read_text(encoding="utf-8")
        (config,) = config_matrix(names=["base+nonsel"])
        direct_failure = check_source(source, config, budget=50_000)

        executor = JobExecutor(cache=ResultCache(tmp_path / "cache"))
        with BackgroundServer(port=0, workers=1, executor=executor) as bg:
            client = ServeClient(bg.base_url)
            (receipt,) = client.submit(
                {"kind": "verify", "source": source, "configs": ["base+nonsel"]}
            )
            result = client.wait(receipt["id"], timeout=120, poll=1.0)["result"]
        assert result["kind"] == "verify"
        assert result["ok"] is (direct_failure is None)
        if direct_failure is not None:
            assert result["failures"][0]["kind"] == direct_failure.kind
