"""Client wait-resume across server restarts (the spool-watermark fix).

A long-poll that loses its connection because the server is restarting
must keep polling the **original job id** — the restarted server
recovers pending jobs from its spool under their old ids — and a 404
after the restart must be classified against the journal's id
watermark: below it means completed-and-compacted, at/above it means
never issued.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.cache import ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.executor import JobExecutor
from repro.serve.server import BackgroundServer

from tests.serve.conftest import tiny_run


def _executor(tmp_path) -> JobExecutor:
    return JobExecutor(cache=ResultCache(tmp_path / "cache"))


class TestWaitResume:
    def test_wait_survives_a_restart_with_the_original_id(self, tmp_path):
        spool = tmp_path / "spool"
        first = BackgroundServer(
            port=0, workers=1, spool=spool, executor=_executor(tmp_path)
        )
        first.start()
        port = first.port
        client = ServeClient(first.base_url, timeout=10.0)
        # One in-flight job plus one that stays queued: the queued one is
        # what must survive the restart.
        receipts = client.submit(
            [tiny_run("gzip", seed=61), tiny_run("mcf", seed=61)]
        )
        queued_id = receipts[-1]["id"]

        outcome: dict = {}

        def wait_through_restart() -> None:
            try:
                outcome["document"] = client.wait(queued_id, timeout=90.0, poll=0.5)
            except Exception as error:  # noqa: BLE001 - recorded for the assert
                outcome["error"] = error

        waiter = threading.Thread(target=wait_through_restart)
        waiter.start()
        # Restart window: drain (persists the queue), gap, come back up
        # on the same port with the same spool.
        first.stop(graceful=True)
        time.sleep(0.5)
        second = BackgroundServer(
            port=port, workers=1, spool=spool, executor=_executor(tmp_path)
        )
        second.start()
        try:
            waiter.join(timeout=90)
            assert not waiter.is_alive()
            assert "error" not in outcome, f"wait raised: {outcome.get('error')}"
            document = outcome["document"]
            assert document["status"] == "done"
            assert document["id"] == queued_id
        finally:
            second.stop(graceful=True)

    def test_compacted_id_gets_a_watermark_diagnosis(self, tmp_path):
        spool = tmp_path / "spool"
        first = BackgroundServer(
            port=0, workers=1, spool=spool, executor=_executor(tmp_path)
        )
        first.start()
        port = first.port
        client = ServeClient(first.base_url, timeout=10.0)
        receipt = client.submit([tiny_run("gzip", seed=62)])[0]
        client.wait(receipt["id"], timeout=60.0)
        first.stop(graceful=True)  # compaction drops the done record

        second = BackgroundServer(
            port=port, workers=1, spool=spool, executor=_executor(tmp_path)
        )
        second.start()
        try:
            # The id is below the restarted server's watermark: the error
            # says so instead of pretending the job never existed.
            with pytest.raises(ServeError, match="compacted"):
                ServeClient(second.base_url, timeout=10.0).wait(
                    receipt["id"], timeout=10.0
                )
        finally:
            second.stop(graceful=True)

    def test_never_issued_id_is_called_out(self, tmp_path):
        server = BackgroundServer(
            port=0, workers=1, spool=tmp_path / "spool", executor=_executor(tmp_path)
        )
        server.start()
        try:
            with pytest.raises(ServeError, match="never issued"):
                ServeClient(server.base_url, timeout=10.0).wait(
                    "j-999999", timeout=5.0
                )
        finally:
            server.stop(graceful=True)

    def test_watermark_rides_the_404_body(self, tmp_path):
        server = BackgroundServer(
            port=0, workers=1, spool=tmp_path / "spool", executor=_executor(tmp_path)
        )
        server.start()
        try:
            client = ServeClient(server.base_url, timeout=10.0)
            with pytest.raises(ServeError) as info:
                client.job("j-000042")
            assert info.value.status == 404
            assert isinstance(info.value.payload.get("next_id"), int)
        finally:
            server.stop(graceful=True)
