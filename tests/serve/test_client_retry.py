"""Client retry/backoff discipline against a scripted flaky server.

The fixture is a raw socket server that plays one scripted behaviour per
connection — drop, 429-with-Retry-After, mid-response disconnect — then
finally answers properly, so every retry path in the SDK is exercised
against real sockets rather than mocks.
"""

import json
import random
import socket
import threading

import pytest

from repro.serve.client import RetryPolicy, ServeClient, ServeError

OK_BODY = json.dumps(
    {"jobs": [{"id": "j-000001", "status": "queued", "coalesced": False,
               "coalesced_into": None, "fingerprint": "f" * 64}]}
).encode()


def _read_request(conn: socket.socket) -> bytes:
    conn.settimeout(5)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        chunk = conn.recv(65536)
        if not chunk:
            break
        rest += chunk
    return data


class FlakyServer:
    """Plays one scripted behaviour per accepted connection."""

    def __init__(self, behaviors: list[str]):
        self.behaviors = behaviors
        self.connections = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self) -> "FlakyServer":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._sock.close()
        self._thread.join(timeout=5)

    def _serve(self) -> None:
        while self.connections < len(self.behaviors):
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            behavior = self.behaviors[self.connections]
            self.connections += 1
            try:
                self._play(conn, behavior)
            finally:
                conn.close()

    def _play(self, conn: socket.socket, behavior: str) -> None:
        if behavior == "drop":
            return  # close without reading: connection reset mid-request
        _read_request(conn)
        if behavior == "429":
            body = b'{"error": "queue full"}\n'
            conn.sendall(
                b"HTTP/1.1 429 Too Many Requests\r\n"
                b"Content-Type: application/json\r\n"
                b"Retry-After: 0.05\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body
            )
        elif behavior == "truncate":
            # Claim a long body, send a fragment, disconnect mid-response.
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 5000\r\n"
                b"Connection: close\r\n\r\n"
                b'{"jobs": [{"id"'
            )
        elif behavior == "ok":
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(OK_BODY)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + OK_BODY
            )
        else:  # pragma: no cover - fixture bug
            raise AssertionError(f"unknown behavior {behavior}")


def _client(port: int, sleeps: list, retries: int = 5) -> ServeClient:
    return ServeClient(
        f"http://127.0.0.1:{port}",
        timeout=5,
        retry=RetryPolicy(retries=retries, backoff_s=0.01, max_backoff_s=0.08),
        sleep=sleeps.append,
        rng=random.Random(1234),
    )


class TestRetries:
    def test_survives_drop_429_and_truncation(self):
        sleeps: list = []
        with FlakyServer(["drop", "429", "truncate", "ok"]) as flaky:
            client = _client(flaky.port, sleeps)
            receipts = client.submit({"benchmark": "gzip"})
            assert receipts[0]["id"] == "j-000001"
            assert flaky.connections == 4
        assert len(sleeps) == 3  # one sleep per failed attempt
        # The 429 retry honoured the server's Retry-After hint exactly.
        assert sleeps[1] == pytest.approx(0.05)

    def test_backoff_grows_exponentially_with_jitter(self):
        policy = RetryPolicy(retries=6, backoff_s=0.1, max_backoff_s=10.0)
        rng = random.Random(7)
        delays = [policy.delay(attempt, rng) for attempt in range(5)]
        for attempt, delay in enumerate(delays):
            base = 0.1 * (2**attempt)
            assert base * 0.5 <= delay <= base  # jitter stays in [0.5, 1.0]x
        assert delays[4] > delays[0]

    def test_gives_up_after_retry_budget(self):
        sleeps: list = []
        with FlakyServer(["drop"] * 3) as flaky:
            client = _client(flaky.port, sleeps, retries=2)
            with pytest.raises(ServeError, match="failed after 3 attempt"):
                client.submit({"benchmark": "gzip"})
            assert flaky.connections == 3
        assert len(sleeps) == 2

    def test_4xx_is_not_retried(self):
        sleeps: list = []
        body = b'{"error": "unknown benchmark"}\n'
        response = (
            b"HTTP/1.1 400 Bad Request\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: close\r\n\r\n" + body
        )

        class Bad400(FlakyServer):
            def _play(self, conn, behavior):
                _read_request(conn)
                conn.sendall(response)

        with Bad400(["400"]) as flaky:
            client = _client(flaky.port, sleeps)
            with pytest.raises(ServeError, match="unknown benchmark"):
                client.submit({"benchmark": "doom"})
            assert flaky.connections == 1
        assert sleeps == []

    def test_connection_refused_retries_then_fails(self):
        sleeps: list = []
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here
        client = _client(port, sleeps, retries=2)
        with pytest.raises(ServeError, match="failed after 3 attempt"):
            client.healthz()
        assert len(sleeps) == 2
