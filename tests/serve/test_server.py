"""End-to-end server behaviour: submit, coalesce, backpressure, metrics."""

import pytest

from repro.analysis.cache import ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.executor import JobExecutor
from repro.serve.server import BackgroundServer

from .conftest import tiny_run

VERIFY_SOURCE = "    LDI  r1, 5\n    ADD  r2, r1, #1\n    HALT\n"


class TestRunJobs:
    def test_single_run_returns_versioned_stats(self, server):
        client = ServeClient(server.base_url)
        (receipt,) = client.submit(tiny_run())
        assert receipt["status"] == "queued" and not receipt["coalesced"]
        document = client.wait(receipt["id"], timeout=60, poll=1.0)
        stats = document["result"]["stats"]
        assert stats["schema_version"] == 1
        assert stats["run"]["benchmark"] == "gzip"
        assert stats["derived"]["ipc"] > 0
        assert stats["fingerprint"] == document["fingerprint"]

    def test_identical_jobs_coalesce_distinct_do_not(self, server):
        client = ServeClient(server.base_url)
        receipts = client.submit(
            [tiny_run()] * 4 + [tiny_run("gcc")] * 3 + [tiny_run(seed=8)]
        )
        coalesced = [r for r in receipts if r["coalesced"]]
        primaries = [r for r in receipts if not r["coalesced"]]
        assert len(primaries) == 3 and len(coalesced) == 5
        for receipt in receipts:
            assert client.wait(receipt["id"], timeout=60, poll=1.0)["status"] == "done"
        # 8 jobs, 3 distinct fingerprints -> exactly 3 simulations.
        assert server.server.executor.simulated() == 3
        metrics = client.metrics()
        assert metrics["metrics"]["serve.coalesce_hits"] == 5

    def test_followers_share_the_primary_result(self, server):
        client = ServeClient(server.base_url)
        first, second = client.submit([tiny_run("bzip"), tiny_run("bzip")])
        assert second["coalesced_into"] == first["id"]
        primary = client.wait(first["id"], timeout=60, poll=1.0)
        follower = client.wait(second["id"], timeout=60, poll=1.0)
        assert follower["result"] == primary["result"]

    def test_job_failure_is_reported_not_fatal(self, server, monkeypatch):
        client = ServeClient(server.base_url)
        # An unserviceable spec sneaks past validation only via a broken
        # executor; simulate one by poisoning the cache directory lookup.
        monkeypatch.setattr(
            server.server.executor, "execute",
            lambda spec: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        (receipt,) = client.submit(tiny_run("mcf"))
        from repro.serve.client import JobFailed

        with pytest.raises(JobFailed, match="boom"):
            client.wait(receipt["id"], timeout=30, poll=0.5)
        assert client.healthz()["ok"] is True  # worker survived


class TestVerifyJobs:
    def test_corpus_style_verify_job(self, server):
        client = ServeClient(server.base_url)
        (receipt,) = client.submit(
            {"kind": "verify", "source": VERIFY_SOURCE, "configs": ["base+nonsel"]}
        )
        document = client.wait(receipt["id"], timeout=60, poll=1.0)
        result = document["result"]
        assert result["kind"] == "verify" and result["ok"] is True
        assert result["checked"] == 1 and result["configs"] == ["base+nonsel"]

    def test_verify_jobs_coalesce_on_source(self, server):
        client = ServeClient(server.base_url)
        spec = {"kind": "verify", "source": VERIFY_SOURCE, "configs": ["base+nonsel"]}
        first, second = client.submit([spec, spec])
        assert second["coalesced"] and second["coalesced_into"] == first["id"]


class TestBackpressure:
    def test_429_with_retry_after_when_queue_full(self, tmp_path):
        executor = JobExecutor(cache=ResultCache(tmp_path / "cache"))
        with BackgroundServer(port=0, workers=0, queue_size=2, executor=executor) as bg:
            client = ServeClient(bg.base_url)
            client.submit([tiny_run(), tiny_run("gcc")])  # fills the queue
            status, headers, document = client._once(
                "POST", "/v1/jobs", tiny_run("bzip")
            )
            assert status == 429
            assert "queue full" in document["error"]
            retry_after = {k.lower(): v for k, v in headers.items()}["retry-after"]
            assert int(retry_after) >= 1

    def test_coalescing_submissions_bypass_backpressure(self, tmp_path):
        executor = JobExecutor(cache=ResultCache(tmp_path / "cache"))
        with BackgroundServer(port=0, workers=0, queue_size=1, executor=executor) as bg:
            client = ServeClient(bg.base_url)
            client.submit(tiny_run())
            # Same fingerprint: accepted as a follower despite a full queue.
            (receipt,) = client.submit(tiny_run())
            assert receipt["coalesced"]

    def test_atomic_batch_rejection(self, tmp_path):
        executor = JobExecutor(cache=ResultCache(tmp_path / "cache"))
        with BackgroundServer(port=0, workers=0, queue_size=2, executor=executor) as bg:
            client = ServeClient(bg.base_url)
            batch = [tiny_run(), tiny_run("gcc"), tiny_run("bzip")]
            status, _headers, _document = client._once("POST", "/v1/jobs", {"jobs": batch})
            assert status == 429
            assert client.jobs() == []  # nothing partially admitted


class TestHttpSurface:
    def test_bad_spec_is_400(self, server):
        client = ServeClient(server.base_url)
        with pytest.raises(ServeError, match="unknown benchmark") as excinfo:
            client.submit(tiny_run("doom"))
        assert excinfo.value.status == 400

    def test_unknown_job_404(self, server):
        client = ServeClient(server.base_url)
        with pytest.raises(ServeError) as excinfo:
            client.job("j-999999")
        assert excinfo.value.status == 404

    def test_unknown_route_404_and_bad_method_405(self, server):
        client = ServeClient(server.base_url)
        assert client._once("GET", "/v2/nope", None)[0] == 404
        assert client._once("DELETE", "/v1/jobs", None)[0] == 405

    def test_invalid_json_body_400(self, server):
        import http.client

        connection = http.client.HTTPConnection(server.server.host, server.port, timeout=10)
        connection.request("POST", "/v1/jobs", body=b"{not json",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        assert response.status == 400
        connection.close()

    def test_cancel_queued_job(self, tmp_path):
        executor = JobExecutor(cache=ResultCache(tmp_path / "cache"))
        with BackgroundServer(port=0, workers=0, executor=executor) as bg:
            client = ServeClient(bg.base_url)
            (receipt,) = client.submit(tiny_run())
            document = client.cancel(receipt["id"])
            assert document["status"] == "cancelled"
            assert client.job(receipt["id"])["status"] == "cancelled"

    def test_list_jobs_with_status_filter(self, server):
        client = ServeClient(server.base_url)
        (receipt,) = client.submit(tiny_run("twolf"))
        client.wait(receipt["id"], timeout=60, poll=1.0)
        done = client.jobs(status="done")
        assert any(job["id"] == receipt["id"] for job in done)
        assert all("result" not in job for job in done)  # listings are light


class TestMetrics:
    def test_metrics_document_shape(self, server):
        client = ServeClient(server.base_url)
        (receipt,) = client.submit(tiny_run("vpr"))
        client.wait(receipt["id"], timeout=60, poll=1.0)
        document = client.metrics()
        serve = document["serve"]
        assert serve["queue_depth"] == 0 and serve["workers"] == 2
        assert serve["latency_ms"]["p50"] is not None
        assert serve["latency_ms"]["p99"] >= serve["latency_ms"]["p50"]
        metrics = document["metrics"]
        assert metrics["serve.submitted"] >= 1
        assert metrics["serve.completed"] >= 1
        assert "serve.job_latency_ms" in metrics
