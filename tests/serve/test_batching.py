"""Server-side batched dispatch: drain many queued jobs per execution.

A worker that wakes up takes everything already queued (up to the batch
cap) and runs it as one ``execute_batch`` — one warm-pool fan-out per
wakeup instead of one per job — while every job still settles
individually: per-spec failures never poison batchmates, and results are
the same documents the one-at-a-time path produced.
"""

import pytest

from repro.analysis.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.executor import JobExecutor
from repro.serve.protocol import parse_batch_with_ids
from repro.serve.server import BackgroundServer

from .conftest import tiny_run


def _specs(payloads):
    specs, _ = parse_batch_with_ids({"jobs": payloads})
    return specs


def _poison(executor, benchmark):
    """Make *executor* fail any spec for *benchmark* at execution time
    (unknown benchmarks are rejected at the protocol layer, so a runtime
    failure needs a healthy-looking spec with a broken execution)."""
    original = executor.execute

    def execute(spec):
        if getattr(spec, "benchmark", None) == benchmark:
            raise RuntimeError(f"poisoned benchmark {benchmark}")
        return original(spec)

    executor.execute = execute


class TestExecuteBatch:
    def test_batch_matches_one_at_a_time(self, tmp_path):
        solo = JobExecutor(cache=ResultCache(tmp_path / "solo"))
        batched = JobExecutor(cache=ResultCache(tmp_path / "batched"))
        payloads = [tiny_run(seed=seed) for seed in (1, 2, 3)]
        expected = [solo.execute(spec) for spec in _specs(payloads)]
        outcomes = batched.execute_batch(_specs(payloads))
        assert outcomes == expected

    def test_per_spec_failures_are_isolated(self, fresh_executor):
        _poison(fresh_executor, "gcc")
        specs = _specs([tiny_run(seed=1), tiny_run("gcc"), tiny_run(seed=2)])
        good, bad, also_good = fresh_executor.execute_batch(specs)
        assert good["kind"] == "run" and also_good["kind"] == "run"
        assert isinstance(bad, Exception) and "poisoned benchmark gcc" in str(bad)


class TestBatchedDrain:
    def test_one_worker_drains_the_queue_in_batches(self, tmp_path):
        executor = JobExecutor(cache=ResultCache(tmp_path / "cache"))
        with BackgroundServer(
            port=0, workers=1, batch=5, executor=executor
        ) as background:
            client = ServeClient(background.base_url)
            receipts = client.submit([tiny_run(seed=seed) for seed in range(12)])
            for receipt in receipts:
                document = client.wait(receipt["id"], timeout=120, poll=0.5)
                assert document["status"] == "done"
                assert document["result"]["stats"]["derived"]["ipc"] > 0
            metrics = client.metrics()["metrics"]
            assert metrics["serve.completed"] == 12
            assert "serve.failed" not in metrics
            batches = metrics["serve.batch_size"]
            # 12 jobs enqueued before the single worker wakes: it must
            # have drained multiple jobs per execution, bounded by the cap.
            assert any(int(size) > 1 for size in batches)
            assert max(int(size) for size in batches) <= 5
            assert sum(int(size) * count for size, count in batches.items()) == 12

    def test_batch_with_a_poison_job_settles_everyone(self, tmp_path):
        executor = JobExecutor(cache=ResultCache(tmp_path / "cache"))
        _poison(executor, "gcc")
        with BackgroundServer(
            port=0, workers=1, batch=8, executor=executor
        ) as background:
            client = ServeClient(background.base_url)
            receipts = client.submit(
                [tiny_run(seed=1), tiny_run("gcc"), tiny_run(seed=2)]
            )
            from repro.serve.client import JobFailed

            done = client.wait(receipts[0]["id"], timeout=120, poll=0.5)
            assert done["status"] == "done"
            with pytest.raises(JobFailed, match="poisoned benchmark gcc"):
                client.wait(receipts[1]["id"], timeout=120, poll=0.5)
            assert client.wait(receipts[2]["id"], timeout=120, poll=0.5)["status"] == "done"
            metrics = client.metrics()["metrics"]
            assert metrics["serve.completed"] == 2
            assert metrics["serve.failed"] == 1

    def test_pool_metrics_surface_when_pool_is_live(self, server):
        from repro.analysis.pool import maybe_pool

        client = ServeClient(server.base_url)
        (receipt,) = client.submit(tiny_run())
        client.wait(receipt["id"], timeout=60, poll=0.5)
        metrics = client.metrics()["metrics"]
        if maybe_pool() is not None:
            assert "pool.dispatches" in metrics
        assert "serve.batch_size" in metrics
