"""Shared fixtures for the serving-layer tests.

Every server gets its own spool directory and its own empty on-disk
result cache, so tests never read or pollute the repository's
``results/cache/`` and coalescing/simulation counts are exact.
"""

from __future__ import annotations

import pytest

from repro.analysis.cache import ResultCache
from repro.serve.executor import JobExecutor
from repro.serve.server import BackgroundServer

#: Run lengths small enough that one simulation takes ~10 ms.
TINY = {"insts": 200, "warmup": 100}


def tiny_run(benchmark: str = "gzip", **overrides) -> dict:
    """A wire-level run spec with tiny run lengths."""
    spec = {"kind": "run", "benchmark": benchmark, "seed": 7, **TINY}
    spec.update(overrides)
    return spec


@pytest.fixture
def fresh_executor(tmp_path):
    """A JobExecutor over an empty, test-private disk cache."""
    return JobExecutor(cache=ResultCache(tmp_path / "cache"))


@pytest.fixture
def server(tmp_path, fresh_executor):
    """A running background server with spool + private cache."""
    background = BackgroundServer(
        port=0, workers=2, spool=tmp_path / "spool", executor=fresh_executor
    )
    with background:
        yield background
