"""Trace jobs through the executor and the HTTP server."""

import pytest

from repro.serve.client import ServeClient
from repro.serve.protocol import parse_spec
from repro.trace.capture import capture_kernel


@pytest.fixture(scope="module")
def small_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "vs.hpt"
    capture_kernel("vector_sum", path, n=400)
    return path


class TestExecutor:
    def test_full_run_returns_stats_export(self, fresh_executor, small_trace):
        spec = parse_spec({"kind": "trace", "trace": str(small_trace)})
        document = fresh_executor.execute(spec)
        assert document["kind"] == "trace"
        stats = document["stats"]
        assert stats["run"]["benchmark"] == f"tracefile:{spec.content_hash}"
        assert stats["run"]["seed"] == 0
        assert stats["derived"]["ipc"] > 0
        assert stats["fingerprint"] == spec.fingerprint()

    def test_sampled_run_returns_report(self, fresh_executor, small_trace):
        spec = parse_spec(
            {"kind": "trace", "trace": str(small_trace), "sampled": True,
             "interval": 500, "sample_warmup": 100}
        )
        document = fresh_executor.execute(spec)
        report = document["report"]
        assert report["weighted_ipc"] > 0
        assert report["content_hash"] == spec.content_hash

    def test_feed_is_memoized_per_content_hash(self, fresh_executor, small_trace):
        spec = parse_spec({"kind": "trace", "trace": str(small_trace)})
        fresh_executor.execute(spec)
        feed = fresh_executor._feeds[spec.content_hash]
        fresh_executor.execute(spec)
        assert fresh_executor._feeds[spec.content_hash] is feed

    def test_stale_hash_fails_loudly(self, fresh_executor, small_trace):
        from repro.trace import TraceFormatError

        spec = parse_spec(
            {"kind": "trace", "trace": str(small_trace), "content_hash": "00" * 32}
        )
        with pytest.raises(TraceFormatError, match="stale"):
            fresh_executor.execute(spec)


class TestServedTraceJobs:
    def test_submit_and_wait_over_http(self, server, small_trace):
        client = ServeClient(server.base_url)
        (receipt,) = client.submit(
            [{"kind": "trace", "trace": str(small_trace)}]
        )
        document = client.wait(receipt["id"], timeout=120)
        assert document["result"]["kind"] == "trace"
        assert document["result"]["stats"]["derived"]["ipc"] > 0

    def test_same_content_coalesces_across_paths(self, server, small_trace, tmp_path):
        import shutil

        copy = tmp_path / "copy.hpt"
        shutil.copy(small_trace, copy)
        client = ServeClient(server.base_url)
        receipts = client.submit(
            [
                {"kind": "trace", "trace": str(small_trace)},
                {"kind": "trace", "trace": str(copy)},
            ]
        )
        client.wait(receipts[0]["id"], timeout=120)
        client.wait(receipts[1]["id"], timeout=120)
        assert receipts[1]["coalesced"] or receipts[1]["status"] in ("queued", "done")
        jobs = {job["id"]: job for job in client.jobs()}
        fingerprints = {
            jobs[receipt["id"]]["fingerprint"] for receipt in receipts
        }
        assert len(fingerprints) == 1
