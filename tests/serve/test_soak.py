"""Acceptance soak: 200 submissions, 20 configs, one graceful restart.

Mirrors the issue's acceptance criterion end to end: 200 concurrent
submissions over 20 distinct configurations must complete with at most
20 actual simulations (coalescing proven), zero lost jobs across one
graceful restart, and stats bytes identical to the offline path.
"""

import random
import threading

from repro.analysis.cache import ResultCache
from repro.analysis.runner import ExperimentRunner
from repro.obs.export import write_stats_json
from repro.serve.client import ServeClient
from repro.serve.executor import JobExecutor
from repro.serve.protocol import parse_spec
from repro.serve.server import BackgroundServer

SOAK = {"insts": 120, "warmup": 60}

# 20 distinct configs: 2 benchmarks x 5 seeds x 2 schedulers.
CONFIGS = [
    {"kind": "run", "benchmark": benchmark, "seed": seed, "scheduler": scheduler, **SOAK}
    for benchmark in ("gzip", "gcc")
    for seed in range(5)
    for scheduler in ("base", "seq_wakeup")
]


def _submit_concurrently(base_url: str, specs: list[dict], threads: int = 8) -> list[str]:
    """Submit specs from many threads at once; returns job ids in order."""
    ids: list[str | None] = [None] * len(specs)
    errors: list[Exception] = []
    chunks = [list(range(i, len(specs), threads)) for i in range(threads)]

    def worker(indexes: list[int]) -> None:
        client = ServeClient(base_url, timeout=30)
        try:
            for index in indexes:
                (receipt,) = client.submit(specs[index])
                ids[index] = receipt["id"]
        except Exception as exc:  # surfaced below; keeps other threads going
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(chunk,)) for chunk in chunks]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=120)
    assert not errors, errors
    assert all(job_id is not None for job_id in ids)
    return ids  # type: ignore[return-value]


def test_soak_200_submissions_restart_and_parity(tmp_path):
    rng = random.Random(2003)
    specs = [CONFIGS[rng.randrange(len(CONFIGS))] for _ in range(200)]
    # Every distinct config appears at least once in the 200.
    for config in CONFIGS:
        specs[specs.index(config) if config in specs else 0] = config
    spool = tmp_path / "spool"
    cache = tmp_path / "cache"

    # Phase 1: accept the first half, let workers start chewing, then
    # drain gracefully mid-flight.
    first = BackgroundServer(
        port=0, workers=2, spool=spool,
        executor=JobExecutor(cache=ResultCache(cache)),
    )
    first.start()
    first_ids = _submit_concurrently(first.base_url, specs[:100])
    first.stop(graceful=True)

    # Jobs that finished before the drain already delivered results; the
    # rest must survive the restart under their original ids.
    done_before_restart = {
        job_id for job_id, job in first.server.table.jobs.items() if job.status == "done"
    }
    recovered_ids = [job_id for job_id in first_ids if job_id not in done_before_restart]
    assert len(done_before_restart) + len(recovered_ids) == 100  # nothing dropped

    # Phase 2: a restarted server recovers the unfinished backlog and
    # takes the second half of the load.
    executor = JobExecutor(cache=ResultCache(cache))
    second = BackgroundServer(port=0, workers=4, spool=spool, executor=executor)
    second.start()
    try:
        second_ids = _submit_concurrently(second.base_url, specs[100:])
        client = ServeClient(second.base_url, timeout=30)
        all_ids = first_ids + second_ids
        statuses = dict.fromkeys(done_before_restart, "done")
        for job_id in recovered_ids + second_ids:
            statuses[job_id] = client.wait(job_id, timeout=300, poll=2.0)["status"]

        # Zero lost jobs: every one of the 200 ids reached `done`.
        assert len(all_ids) == 200 and len(set(all_ids)) == 200
        assert len(statuses) == 200
        assert all(status == "done" for status in statuses.values())

        # Coalescing proven: at most one simulation per distinct config,
        # across both server generations combined (shared disk cache).
        total_simulated = first.server.executor.simulated() + executor.simulated()
        assert total_simulated <= len(CONFIGS)

        # Byte parity with the offline path for a sample of the results.
        offline = ExperimentRunner(
            insts=SOAK["insts"], warmup=SOAK["warmup"],
            cache=ResultCache(tmp_path / "offline-cache"),
        )
        for index in rng.sample(range(100, 200), 3):
            wire = specs[index]
            spec = parse_spec(wire)
            job_id = all_ids[index]
            document = client.job(job_id)["result"]["stats"]
            served = write_stats_json(document, tmp_path / "served")
            direct = offline.export_run(
                spec.benchmark, spec.config(), tmp_path / "offline",
                seed=spec.seed, shadow=spec.shadow,
            )
            assert served.read_bytes() == direct.read_bytes()
    finally:
        second.stop(graceful=True)
