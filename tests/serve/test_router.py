"""Cluster router tests: sharding, stealing, failover, registration.

Integration tests boot real BackgroundServer workers (each its own
thread + event loop) that share one on-disk result store, with a
BackgroundRouter in front — the same topology ``scripts/cluster_smoke.py``
exercises with full subprocesses in CI.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.analysis.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.executor import JobExecutor
from repro.serve.router import RouterServer, BackgroundRouter, WorkerHandle
from repro.serve.server import BackgroundServer

from tests.serve.conftest import tiny_run


# ----------------------------------------------------------------------
# Unit tests: placement policy (no sockets)
# ----------------------------------------------------------------------
class TestPlacement:
    def _router(self, urls, **kwargs) -> RouterServer:
        return RouterServer(workers=urls, **kwargs)

    def test_home_worker_wins_when_cold(self):
        router = self._router(["http://a:1", "http://b:2"])
        fingerprint = "f" * 64
        home = router.ring.node(fingerprint)
        worker, stolen = router._choose_worker(fingerprint)
        assert worker is not None and worker.url == home
        assert stolen is False

    def test_hot_home_is_stolen_from(self):
        router = self._router(["http://a:1", "http://b:2"], steal_watermark=4)
        fingerprint = "f" * 64
        home = router.ring.node(fingerprint)
        other = next(url for url in router.workers if url != home)
        router.workers[home].queue_depth = 10  # over the watermark
        worker, stolen = router._choose_worker(fingerprint)
        assert worker.url == other
        assert stolen is True

    def test_draining_home_routes_away_without_counting_as_steal(self):
        router = self._router(["http://a:1", "http://b:2"])
        fingerprint = "f" * 64
        home = router.ring.node(fingerprint)
        other = next(url for url in router.workers if url != home)
        router.workers[home].draining = True
        worker, stolen = router._choose_worker(fingerprint)
        assert worker.url == other
        assert stolen is False

    def test_no_routable_workers(self):
        router = self._router(["http://a:1"])
        router.workers["http://a:1"].draining = True
        worker, stolen = router._choose_worker("f" * 64)
        assert worker is None and stolen is False

    def test_everyone_hot_picks_least_loaded(self):
        router = self._router(
            ["http://a:1", "http://b:2", "http://c:3"], steal_watermark=1
        )
        for url, depth in zip(sorted(router.workers), (9, 3, 7)):
            router.workers[url].queue_depth = depth
        worker, _stolen = router._choose_worker("f" * 64)
        assert worker.queue_depth == 3

    def test_probe_failures_evict_from_ring(self):
        # Point at a port nothing listens on: every probe fails.
        router = self._router(["http://127.0.0.1:9"], health_failures=2)
        worker = router.workers["http://127.0.0.1:9"]
        assert worker.url in router.ring
        for _ in range(2):
            asyncio.run(router._probe(worker))
        assert worker.url not in router.ring
        assert worker.healthy is False


# ----------------------------------------------------------------------
# Integration: a real 2-worker cluster behind a router
# ----------------------------------------------------------------------
@pytest.fixture
def cluster(tmp_path):
    """(router, client, workers, executors) over one shared store."""
    store = tmp_path / "store"
    executors = [JobExecutor(cache=ResultCache(store)) for _ in range(2)]
    workers = [
        BackgroundServer(port=0, workers=2, name=f"w{index}", executor=executor)
        for index, executor in enumerate(executors)
    ]
    for worker in workers:
        worker.start()
    router = BackgroundRouter(
        port=0,
        workers=[worker.base_url for worker in workers],
        spool=tmp_path / "router-spool",
        health_interval_s=0.1,
        health_failures=2,
        watch_poll_s=2.0,
    )
    router.start()
    client = ServeClient(router.base_url, timeout=30.0)
    try:
        yield router, client, workers, executors
    finally:
        router.stop(graceful=True)
        for worker in workers:
            worker.stop(graceful=True)


class TestClusterIntegration:
    def test_jobs_complete_through_the_router(self, cluster):
        _router, client, _workers, _executors = cluster
        documents = client.submit_and_wait(
            [tiny_run("gzip"), tiny_run("mcf")], timeout=60.0
        )
        assert [doc["status"] for doc in documents] == ["done", "done"]
        for document in documents:
            assert document["result"]["kind"] == "run"
            assert "derived" in document["result"]["stats"]

    def test_duplicate_specs_coalesce_cluster_wide(self, cluster):
        _router, client, _workers, executors = cluster
        receipts = client.submit([tiny_run("gzip", seed=11)] * 5)
        assert sum(1 for receipt in receipts if receipt["coalesced"]) == 4
        primary = next(r for r in receipts if not r["coalesced"])
        for receipt in receipts:
            document = client.wait(receipt["id"], timeout=60.0)
            assert document["status"] == "done"
            if receipt["coalesced"]:
                assert receipt["coalesced_into"] == primary["id"]
        assert sum(executor.simulated() for executor in executors) == 1

    def test_resubmission_after_completion_hits_the_shared_store(self, cluster):
        _router, client, _workers, executors = cluster
        client.submit_and_wait([tiny_run("gzip", seed=21)], timeout=60.0)
        # New router job (the first is terminal, so no coalescing) — but
        # whichever worker receives it finds the published blob.
        client.submit_and_wait([tiny_run("gzip", seed=21)], timeout=60.0)
        assert sum(executor.simulated() for executor in executors) == 1

    def test_router_healthz_and_worker_listing(self, cluster):
        router, client, workers, _executors = cluster
        health = client.healthz()
        assert health["role"] == "router" and health["workers"] == 2
        listing = client.request("GET", "/v1/workers")["workers"]
        assert sorted(w["url"] for w in listing) == sorted(
            worker.base_url for worker in workers
        )
        # Health probes learn the worker names within a probe cycle.
        deadline = time.monotonic() + 10.0
        names: set = set()
        while names != {"w0", "w1"} and time.monotonic() < deadline:
            listing = client.request("GET", "/v1/workers")["workers"]
            names = {w["name"] for w in listing if w["name"]}
            time.sleep(0.05)
        assert names == {"w0", "w1"}

    def test_worker_registration_endpoint(self, cluster, tmp_path):
        router, client, _workers, _executors = cluster
        extra = BackgroundServer(
            port=0,
            workers=1,
            name="late",
            executor=JobExecutor(cache=ResultCache(tmp_path / "store")),
        )
        extra.start()
        try:
            receipt = client.request(
                "POST",
                "/v1/workers/register",
                {"url": extra.base_url, "name": "late"},
            )
            assert receipt["registered"]["url"] == extra.base_url
            listing = client.request("GET", "/v1/workers")["workers"]
            assert extra.base_url in {w["url"] for w in listing}
            assert extra.base_url in router.router.ring
        finally:
            extra.stop(graceful=True)

    def test_dead_worker_jobs_redispatch_to_survivors(self, cluster):
        """Killing a worker mid-sweep loses no jobs (tentpole failover)."""
        _router, client, workers, executors = cluster
        specs = [tiny_run("gzip", seed=100 + index) for index in range(8)]
        receipts = client.submit(specs)
        # Hard-kill one worker immediately: its in-flight and queued jobs
        # must re-dispatch to the survivor.
        workers[0].stop(graceful=False)
        documents = [client.wait(receipt["id"], timeout=90.0) for receipt in receipts]
        assert all(document["status"] == "done" for document in documents)
        # The shared store bounds total work: never more simulations than
        # unique fingerprints (the SIGKILLed worker may have completed
        # some before dying, which the survivor then found published).
        assert sum(executor.simulated() for executor in executors) <= len(specs)

    def test_router_restart_redispatches_spooled_jobs(self, tmp_path):
        """A router crash/restart resumes pending jobs under original ids."""
        spool = tmp_path / "spool"
        # No workers: accepted jobs starve in the dispatch loop, pending.
        first = BackgroundRouter(port=0, workers=[], spool=spool)
        first.start()
        receipt = ServeClient(first.base_url).submit([tiny_run("gzip", seed=31)])[0]
        first.stop(graceful=True)

        worker = BackgroundServer(
            port=0,
            workers=1,
            executor=JobExecutor(cache=ResultCache(tmp_path / "store")),
        )
        worker.start()
        second = BackgroundRouter(
            port=0, workers=[worker.base_url], spool=spool, watch_poll_s=2.0
        )
        second.start()
        try:
            assert second.router.recovered == 1
            document = ServeClient(second.base_url).wait(receipt["id"], timeout=60.0)
            assert document["status"] == "done"
            assert document["id"] == receipt["id"]
        finally:
            second.stop(graceful=True)
            worker.stop(graceful=True)


class TestWorkerProtocolExtensions:
    def test_worker_accepts_router_assigned_ids(self, tmp_path):
        worker = BackgroundServer(
            port=0,
            workers=1,
            executor=JobExecutor(cache=ResultCache(tmp_path / "store")),
        )
        worker.start()
        try:
            client = ServeClient(worker.base_url)
            receipts = client.submit(
                {"jobs": [tiny_run("gzip", seed=41)], "ids": ["j-000777"]}
            )
            assert receipts[0]["id"] == "j-000777"
            # Idempotent re-dispatch: same id again is acknowledged, not
            # forked into a new identity.
            again = client.submit(
                {"jobs": [tiny_run("gzip", seed=41)], "ids": ["j-000777"]}
            )
            assert again[0]["id"] == "j-000777"
            document = client.wait("j-000777", timeout=60.0)
            assert document["status"] == "done"
            # The id counter moved past the assigned id.
            assert worker.server.table.next_id > 777
        finally:
            worker.stop(graceful=True)

    def test_worker_healthz_reports_queue_depth_and_name(self, tmp_path):
        worker = BackgroundServer(
            port=0,
            workers=1,
            name="probe-me",
            executor=JobExecutor(cache=ResultCache(tmp_path / "store")),
        )
        worker.start()
        try:
            health = ServeClient(worker.base_url).healthz()
            assert health["name"] == "probe-me"
            assert health["queue_depth"] == 0
            assert health["draining"] is False
        finally:
            worker.stop(graceful=True)


class TestStealingLive:
    def test_watermark_zero_spreads_load(self, tmp_path):
        """With the watermark at 0 every home is 'hot': placement must
        still complete all jobs (stealing never strands work)."""
        store = tmp_path / "store"
        executors = [JobExecutor(cache=ResultCache(store)) for _ in range(2)]
        workers = [
            BackgroundServer(port=0, workers=1, executor=executor)
            for executor in executors
        ]
        for worker in workers:
            worker.start()
        router = BackgroundRouter(
            port=0,
            workers=[worker.base_url for worker in workers],
            steal_watermark=0,
            health_interval_s=0.1,
            watch_poll_s=2.0,
        )
        router.start()
        try:
            client = ServeClient(router.base_url, timeout=30.0)
            specs = [tiny_run("gzip", seed=200 + index) for index in range(6)]
            documents = client.submit_and_wait(specs, timeout=90.0)
            assert all(document["status"] == "done" for document in documents)
            metrics = client.metrics()["metrics"]
            assert metrics.get("router.dispatches", 0) >= 6
        finally:
            router.stop(graceful=True)
            for worker in workers:
                worker.stop(graceful=True)


def test_drain_reports_within_deadline(cluster):
    """Router drain with no pending work returns promptly."""
    router, client, _workers, _executors = cluster
    client.submit_and_wait([tiny_run("gzip", seed=51)], timeout=60.0)
    started = time.monotonic()
    router.stop(graceful=True)
    assert time.monotonic() - started < 30.0
