"""Wire-protocol validation and fingerprint semantics."""

import pytest

from repro.analysis.cache import fingerprint as cache_fingerprint
from repro.analysis.runner import SHADOW_SIZES
from repro.pipeline.config import FOUR_WIDE, SchedulerModel
from repro.serve.protocol import (
    ProtocolError,
    RunSpec,
    VerifySpec,
    parse_batch,
    parse_spec,
)


class TestRunSpecParsing:
    def test_minimal_spec_defaults(self):
        spec = parse_spec({"benchmark": "gzip"})
        assert isinstance(spec, RunSpec)
        assert spec.insts == 15_000 and spec.width == 4 and spec.kind == "run"

    def test_wire_round_trip(self):
        spec = parse_spec(
            {"benchmark": "gcc", "scheduler": "seq_wakeup", "insts": 500,
             "warmup": 250, "seed": 3, "shadow": True, "priority": 2}
        )
        assert parse_spec(spec.as_wire()) == spec

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ProtocolError, match="unknown benchmark"):
            parse_spec({"benchmark": "doom"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown run-spec field"):
            parse_spec({"benchmark": "gzip", "instz": 100})

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ProtocolError, match="unknown scheduler"):
            parse_spec({"benchmark": "gzip", "scheduler": "warp"})

    def test_bad_width_rejected(self):
        with pytest.raises(ProtocolError, match="width"):
            parse_spec({"benchmark": "gzip", "width": 6})

    def test_nonpositive_insts_rejected(self):
        with pytest.raises(ProtocolError, match="insts"):
            parse_spec({"benchmark": "gzip", "insts": 0})

    def test_non_integer_rejected(self):
        with pytest.raises(ProtocolError, match="seed"):
            parse_spec({"benchmark": "gzip", "seed": "five"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            parse_spec({"kind": "train", "benchmark": "gzip"})


class TestFingerprints:
    def test_matches_result_cache_digest(self):
        spec = parse_spec(
            {"benchmark": "gzip", "scheduler": "seq_wakeup", "insts": 400,
             "warmup": 200, "seed": 9}
        )
        config = FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)
        assert spec.fingerprint() == cache_fingerprint("gzip", 9, 400, 200, config, None)

    def test_shadow_changes_fingerprint(self):
        base = parse_spec({"benchmark": "gzip"})
        shadowed = parse_spec({"benchmark": "gzip", "shadow": True})
        assert base.fingerprint() != shadowed.fingerprint()
        config = base.config()
        assert shadowed.fingerprint() == cache_fingerprint(
            "gzip", 42, 15_000, 20_000, config, SHADOW_SIZES
        )

    def test_priority_does_not_change_fingerprint(self):
        low = parse_spec({"benchmark": "gzip", "priority": 0})
        high = parse_spec({"benchmark": "gzip", "priority": 9})
        assert low.fingerprint() == high.fingerprint()


class TestVerifySpec:
    SOURCE = "    LDI  r1, 5\n    ADD  r2, r1, #1\n    HALT\n"

    def test_parse_and_round_trip(self):
        spec = parse_spec({"kind": "verify", "source": self.SOURCE, "configs": ["base+nonsel"]})
        assert isinstance(spec, VerifySpec)
        assert parse_spec(spec.as_wire()) == spec

    def test_empty_source_rejected(self):
        with pytest.raises(ProtocolError, match="source"):
            parse_spec({"kind": "verify", "source": "  "})

    def test_unknown_config_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fuzz config"):
            parse_spec({"kind": "verify", "source": self.SOURCE, "configs": ["warp"]})

    def test_fingerprint_depends_on_source(self):
        one = parse_spec({"kind": "verify", "source": self.SOURCE})
        two = parse_spec({"kind": "verify", "source": self.SOURCE + "NOP\n"})
        assert one.fingerprint() != two.fingerprint()


class TestBatch:
    def test_single_spec_body(self):
        specs = parse_batch({"benchmark": "gzip"})
        assert len(specs) == 1

    def test_jobs_list_body(self):
        specs = parse_batch({"jobs": [{"benchmark": "gzip"}, {"benchmark": "gcc"}]})
        assert [spec.benchmark for spec in specs] == ["gzip", "gcc"]

    def test_empty_jobs_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_batch({"jobs": []})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_batch([1, 2])


class TestBackendField:
    def test_default_backend_is_python(self):
        spec = parse_spec({"benchmark": "gzip"})
        assert spec.backend == "python"
        assert spec.config().backend == "python"

    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_backend_round_trips_through_wire(self, backend):
        spec = parse_spec({"benchmark": "gzip", "backend": backend})
        assert spec.backend == backend
        assert spec.config().backend == backend
        assert parse_spec(spec.as_wire()) == spec

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProtocolError, match="unknown backend"):
            parse_spec({"benchmark": "gzip", "backend": "cuda"})

    def test_backend_changes_fingerprint(self):
        """Coalescing and cached results must never cross backends."""
        fingerprints = {
            backend: parse_spec(
                {"benchmark": "gzip", "backend": backend}
            ).fingerprint()
            for backend in ("python", "vector", "native")
        }
        assert len(set(fingerprints.values())) == 3

    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_backend_fingerprint_matches_cache_digest(self, backend):
        spec = parse_spec({"benchmark": "gzip", "backend": backend})
        expected = cache_fingerprint(
            "gzip", spec.seed, spec.insts, spec.warmup, spec.config(), None
        )
        assert spec.fingerprint() == expected
