"""Wire-protocol validation and fingerprint semantics."""

import pytest

from repro.analysis.cache import fingerprint as cache_fingerprint
from repro.analysis.runner import SHADOW_SIZES
from repro.pipeline.config import FOUR_WIDE, SchedulerModel
from repro.serve.protocol import (
    ProtocolError,
    RunSpec,
    TraceSpec,
    VerifySpec,
    parse_batch,
    parse_spec,
)


class TestRunSpecParsing:
    def test_minimal_spec_defaults(self):
        spec = parse_spec({"benchmark": "gzip"})
        assert isinstance(spec, RunSpec)
        assert spec.insts == 15_000 and spec.width == 4 and spec.kind == "run"

    def test_wire_round_trip(self):
        spec = parse_spec(
            {"benchmark": "gcc", "scheduler": "seq_wakeup", "insts": 500,
             "warmup": 250, "seed": 3, "shadow": True, "priority": 2}
        )
        assert parse_spec(spec.as_wire()) == spec

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ProtocolError, match="unknown benchmark"):
            parse_spec({"benchmark": "doom"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown run-spec field"):
            parse_spec({"benchmark": "gzip", "instz": 100})

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ProtocolError, match="unknown scheduler"):
            parse_spec({"benchmark": "gzip", "scheduler": "warp"})

    def test_bad_width_rejected(self):
        with pytest.raises(ProtocolError, match="width"):
            parse_spec({"benchmark": "gzip", "width": 6})

    def test_nonpositive_insts_rejected(self):
        with pytest.raises(ProtocolError, match="insts"):
            parse_spec({"benchmark": "gzip", "insts": 0})

    def test_non_integer_rejected(self):
        with pytest.raises(ProtocolError, match="seed"):
            parse_spec({"benchmark": "gzip", "seed": "five"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            parse_spec({"kind": "train", "benchmark": "gzip"})


class TestFingerprints:
    def test_matches_result_cache_digest(self):
        spec = parse_spec(
            {"benchmark": "gzip", "scheduler": "seq_wakeup", "insts": 400,
             "warmup": 200, "seed": 9}
        )
        config = FOUR_WIDE.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)
        assert spec.fingerprint() == cache_fingerprint("gzip", 9, 400, 200, config, None)

    def test_shadow_changes_fingerprint(self):
        base = parse_spec({"benchmark": "gzip"})
        shadowed = parse_spec({"benchmark": "gzip", "shadow": True})
        assert base.fingerprint() != shadowed.fingerprint()
        config = base.config()
        assert shadowed.fingerprint() == cache_fingerprint(
            "gzip", 42, 15_000, 20_000, config, SHADOW_SIZES
        )

    def test_priority_does_not_change_fingerprint(self):
        low = parse_spec({"benchmark": "gzip", "priority": 0})
        high = parse_spec({"benchmark": "gzip", "priority": 9})
        assert low.fingerprint() == high.fingerprint()


class TestVerifySpec:
    SOURCE = "    LDI  r1, 5\n    ADD  r2, r1, #1\n    HALT\n"

    def test_parse_and_round_trip(self):
        spec = parse_spec({"kind": "verify", "source": self.SOURCE, "configs": ["base+nonsel"]})
        assert isinstance(spec, VerifySpec)
        assert parse_spec(spec.as_wire()) == spec

    def test_empty_source_rejected(self):
        with pytest.raises(ProtocolError, match="source"):
            parse_spec({"kind": "verify", "source": "  "})

    def test_unknown_config_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fuzz config"):
            parse_spec({"kind": "verify", "source": self.SOURCE, "configs": ["warp"]})

    def test_fingerprint_depends_on_source(self):
        one = parse_spec({"kind": "verify", "source": self.SOURCE})
        two = parse_spec({"kind": "verify", "source": self.SOURCE + "NOP\n"})
        assert one.fingerprint() != two.fingerprint()


class TestBatch:
    def test_single_spec_body(self):
        specs = parse_batch({"benchmark": "gzip"})
        assert len(specs) == 1

    def test_jobs_list_body(self):
        specs = parse_batch({"jobs": [{"benchmark": "gzip"}, {"benchmark": "gcc"}]})
        assert [spec.benchmark for spec in specs] == ["gzip", "gcc"]

    def test_empty_jobs_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_batch({"jobs": []})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_batch([1, 2])


class TestBackendField:
    def test_default_backend_is_python(self):
        spec = parse_spec({"benchmark": "gzip"})
        assert spec.backend == "python"
        assert spec.config().backend == "python"

    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_backend_round_trips_through_wire(self, backend):
        spec = parse_spec({"benchmark": "gzip", "backend": backend})
        assert spec.backend == backend
        assert spec.config().backend == backend
        assert parse_spec(spec.as_wire()) == spec

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProtocolError, match="unknown backend"):
            parse_spec({"benchmark": "gzip", "backend": "cuda"})

    def test_backend_changes_fingerprint(self):
        """Coalescing and cached results must never cross backends."""
        fingerprints = {
            backend: parse_spec(
                {"benchmark": "gzip", "backend": backend}
            ).fingerprint()
            for backend in ("python", "vector", "native")
        }
        assert len(set(fingerprints.values())) == 3

    @pytest.mark.parametrize("backend", ["vector", "native"])
    def test_backend_fingerprint_matches_cache_digest(self, backend):
        spec = parse_spec({"benchmark": "gzip", "backend": backend})
        expected = cache_fingerprint(
            "gzip", spec.seed, spec.insts, spec.warmup, spec.config(), None
        )
        assert spec.fingerprint() == expected


class TestTraceSpecParsing:
    HASH = "ab" * 32

    def spec(self, **overrides):
        payload = {"kind": "trace", "trace": "some/file.hpt", "content_hash": self.HASH}
        payload.update(overrides)
        return parse_spec(payload)

    def test_explicit_hash_needs_no_file(self):
        spec = self.spec()
        assert isinstance(spec, TraceSpec)
        assert spec.content_hash == self.HASH
        assert spec.insts is None and not spec.sampled

    def test_corpus_name_resolves_hash_from_header(self):
        spec = parse_spec({"kind": "trace", "trace": "vector_sum_80k"})
        assert len(spec.content_hash) == 64

    def test_unresolvable_reference_without_hash_is_400(self):
        with pytest.raises(ProtocolError, match="neither a corpus trace name"):
            parse_spec({"kind": "trace", "trace": "no_such_trace"})

    def test_wire_round_trip_is_lossless(self):
        spec = self.spec(sampled=True, k=4, interval=5_000, warm_caches=False,
                         backend="native", insts=None)
        again = parse_spec(spec.as_wire())
        assert again == spec and again.fingerprint() == spec.fingerprint()

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown trace-spec field"):
            self.spec(simpoints=10)

    def test_trace_is_required(self):
        with pytest.raises(ProtocolError, match="trace is required"):
            parse_spec({"kind": "trace", "content_hash": self.HASH})

    def test_zero_insts_rejected(self):
        with pytest.raises(ProtocolError, match="insts"):
            self.spec(insts=0)

    def test_fingerprint_keys_on_content_not_reference(self):
        a = self.spec()
        b = self.spec(trace="renamed/elsewhere.hpt")
        assert a.trace != b.trace
        assert a.fingerprint() == b.fingerprint()

    def test_sampled_and_full_fingerprints_differ(self):
        assert self.spec().fingerprint() != self.spec(sampled=True).fingerprint()

    def test_machine_knobs_change_fingerprint(self):
        assert self.spec().fingerprint() != self.spec(width=8).fingerprint()
        assert self.spec().fingerprint() != self.spec(backend="vector").fingerprint()
