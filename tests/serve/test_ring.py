"""Properties of the consistent-hash ring the cluster router shards on."""

from __future__ import annotations

from collections import Counter

from repro.serve.ring import HashRing

KEYS = [f"fingerprint-{index:04d}" for index in range(2000)]


class TestHashRing:
    def test_empty_ring_maps_nothing(self):
        ring = HashRing()
        assert ring.node("anything") is None
        assert len(ring) == 0

    def test_mapping_is_deterministic(self):
        first = HashRing(["w1", "w2", "w3"])
        second = HashRing(["w3", "w1", "w2"])  # insertion order is irrelevant
        assert [first.node(key) for key in KEYS] == [second.node(key) for key in KEYS]

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node(key) == "only" for key in KEYS)

    def test_add_and_remove_round_trip(self):
        ring = HashRing(["w1"])
        assert ring.add("w2") is True
        assert ring.add("w2") is False
        assert "w2" in ring and len(ring) == 2
        assert ring.remove("w2") is True
        assert ring.remove("w2") is False
        assert ring.nodes() == ["w1"]

    def test_load_is_roughly_balanced(self):
        ring = HashRing(["w1", "w2", "w3"])
        counts = Counter(ring.node(key) for key in KEYS)
        assert set(counts) == {"w1", "w2", "w3"}
        # Virtual replicas keep the split from degenerating; exact shares
        # vary with the hash but every node must carry real load.
        assert min(counts.values()) > len(KEYS) * 0.15
        assert max(counts.values()) < len(KEYS) * 0.55

    def test_removal_only_moves_the_dead_nodes_keys(self):
        """The consistency property: survivors keep their assignments."""
        ring = HashRing(["w1", "w2", "w3"])
        before = {key: ring.node(key) for key in KEYS}
        ring.remove("w2")
        after = {key: ring.node(key) for key in KEYS}
        for key in KEYS:
            if before[key] != "w2":
                assert after[key] == before[key]
            else:
                assert after[key] in ("w1", "w3")

    def test_addition_only_takes_keys_for_the_new_node(self):
        ring = HashRing(["w1", "w2"])
        before = {key: ring.node(key) for key in KEYS}
        ring.add("w3")
        after = {key: ring.node(key) for key in KEYS}
        for key in KEYS:
            assert after[key] == before[key] or after[key] == "w3"
