"""TraceFeed replay parity: live emulation and every installed backend."""

import json

import pytest

from repro.analysis.cache import serialize_result
from repro.fastsim import apply_backend, available_backends, make_processor
from repro.pipeline.config import FOUR_WIDE
from repro.pipeline.processor import Processor
from repro.trace.capture import capture_kernel
from repro.trace.feed import TraceFeed
from repro.workloads.feed import EmulatorFeed
from repro.workloads.kernels import kernel_program


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "strsearch.hpt"
    capture_kernel("strsearch", path)
    return TraceFeed(path)


class TestReplayMatchesLive:
    def test_replayed_stats_equal_live_emulation(self, trace):
        live = Processor(
            EmulatorFeed(kernel_program("strsearch"), name="strsearch"), FOUR_WIDE
        ).run(max_insts=10**7)
        replayed = Processor(trace, FOUR_WIDE).run(max_insts=len(trace.ops))
        assert serialize_result(replayed) == serialize_result(live)


class TestCrossBackendParity:
    def test_serialized_stats_are_byte_identical(self, trace):
        blobs = {}
        for backend in available_backends():
            config = apply_backend(FOUR_WIDE, backend)
            processor = make_processor(trace, config, backend=backend)
            result = processor.run(max_insts=len(trace.ops))
            blobs[backend] = json.dumps(serialize_result(result), sort_keys=True)
        reference = blobs["python"]
        for backend, blob in blobs.items():
            assert blob == reference, f"{backend} diverges from python"

    def test_partial_run_parity(self, trace):
        blobs = set()
        for backend in available_backends():
            config = apply_backend(FOUR_WIDE, backend)
            processor = make_processor(trace, config, backend=backend)
            result = processor.run(max_insts=3_000, warmup=1_000)
            blobs.add(json.dumps(serialize_result(result), sort_keys=True))
        assert len(blobs) == 1
