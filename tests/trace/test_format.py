"""Tracefile container: round trips, determinism, corruption rejection."""

import struct
import zlib

import pytest

from repro.trace.capture import capture_kernel, capture_program, program_sha256
from repro.trace.format import (
    MAGIC,
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    isa_version,
    read_header,
)
from repro.workloads.feed import EmulatorFeed
from repro.workloads.kernels import kernel_program

FIELDS = (
    "seq",
    "pc",
    "opcode",
    "op_class",
    "dest",
    "srcs",
    "sched_deps",
    "store_data_reg",
    "mem_addr",
    "taken",
    "next_pc",
    "static_target",
    "is_two_source_format",
    "is_eliminated_nop",
)


def capture(tmp_path, kernel="strsearch", chunk_records=None, **kwargs):
    path = tmp_path / f"{kernel}.hpt"
    if chunk_records is None:
        capture_kernel(kernel, path, **kwargs)
    else:
        program = kernel_program(kernel, **kwargs)
        with TraceWriter(
            path,
            name=kernel,
            program_sha256=program_sha256(program),
            chunk_records=chunk_records,
        ) as writer:
            writer.extend(EmulatorFeed(program, name=kernel))
    return path


class TestRoundTrip:
    def test_every_persisted_field_is_identical(self, tmp_path):
        program = kernel_program("strsearch")
        live = list(EmulatorFeed(program, name="strsearch"))
        path = capture(tmp_path)
        replayed = list(TraceReader(path).ops())
        assert len(replayed) == len(live)
        for original, decoded in zip(live, replayed):
            for name in FIELDS:
                assert getattr(original, name) == getattr(decoded, name), name

    def test_small_chunks_round_trip(self, tmp_path):
        whole = list(TraceReader(capture(tmp_path)).ops())
        chunked = list(TraceReader(capture(tmp_path, chunk_records=64)).ops())
        assert len(whole) == len(chunked)
        for a, b in zip(whole, chunked):
            for name in FIELDS:
                assert getattr(a, name) == getattr(b, name), name

    def test_limit_truncates_the_stream(self, tmp_path):
        path = tmp_path / "fib.hpt"
        header = capture_kernel("fibonacci", path, limit=40)
        assert header["insts"] == 40
        assert len(list(TraceReader(path).ops())) == 40
        assert len(list(TraceReader(path).ops(limit=7))) == 7

    def test_capture_is_byte_deterministic(self, tmp_path):
        first = capture(tmp_path / "a", kernel="sieve")
        second = capture(tmp_path / "b", kernel="sieve")
        assert first.read_bytes() == second.read_bytes()

    def test_header_identity_fields(self, tmp_path):
        program = kernel_program("dotproduct")
        path = tmp_path / "dot.hpt"
        capture_program(program, path, name="dot")
        header = read_header(path)
        assert header["format_version"] == TRACE_FORMAT_VERSION
        assert header["isa_version"] == isa_version()
        assert header["program_sha256"] == program_sha256(program)
        assert header["name"] == "dot"

    def test_program_hash_ignores_labels_not_substance(self):
        program = kernel_program("dotproduct")
        assert program_sha256(program) == program_sha256(program)
        other = kernel_program("dotproduct", n=32)
        assert program_sha256(program) != program_sha256(other)


def one_line(error: pytest.ExceptionInfo) -> str:
    message = str(error.value)
    assert "\n" not in message
    return message


class TestCorruptionRejection:
    def test_bad_magic(self, tmp_path):
        path = capture(tmp_path, kernel="fibonacci")
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError) as error:
            read_header(path)
        assert "magic" in one_line(error)

    def test_truncated_mid_chunk(self, tmp_path):
        path = capture(tmp_path, kernel="fibonacci")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 30])
        with pytest.raises(TraceFormatError) as error:
            list(TraceReader(path).ops())
        one_line(error)

    def test_tampered_chunk_payload(self, tmp_path):
        path = capture(tmp_path, kernel="fibonacci")
        blob = bytearray(path.read_bytes())
        header_len = struct.unpack_from("<I", blob, len(MAGIC))[0]
        # first byte of the first chunk's compressed payload
        payload = len(MAGIC) + 4 + header_len + 4 + 16
        blob[payload] ^= 0x55
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError) as error:
            list(TraceReader(path).ops())
        assert "CRC" in one_line(error) or "crc" in one_line(error)

    def test_trailing_garbage(self, tmp_path):
        path = capture(tmp_path, kernel="fibonacci")
        path.write_bytes(path.read_bytes() + b"extra")
        with pytest.raises(TraceFormatError) as error:
            list(TraceReader(path).ops())
        one_line(error)

    def test_unsupported_version(self, tmp_path):
        path = capture(tmp_path, kernel="fibonacci")
        blob = bytearray(path.read_bytes())
        header_len = struct.unpack_from("<I", blob, len(MAGIC))[0]
        start = len(MAGIC) + 4
        text = blob[start : start + header_len].decode("utf-8")
        # same length so the framing stays valid; only the value changes
        mutated = text.replace(
            f'"format_version": {TRACE_FORMAT_VERSION}', '"format_version": 9'
        )
        assert mutated != text
        raw = mutated.encode("utf-8")
        assert len(raw) == header_len
        blob[start : start + header_len] = raw
        struct.pack_into("<I", blob, start + header_len, zlib.crc32(raw))
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError) as error:
            read_header(path)
        assert "version" in one_line(error)

    def test_not_a_tracefile(self, tmp_path):
        path = tmp_path / "junk.hpt"
        path.write_text("not a tracefile")
        with pytest.raises(TraceFormatError):
            read_header(path)
