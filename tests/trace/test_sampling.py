"""SimPoint-style sampling: profiling, clustering, warming, accuracy."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fastsim import apply_backend, available_backends
from repro.pipeline.config import FOUR_WIDE
from repro.trace.capture import capture_kernel
from repro.trace.feed import TraceFeed
from repro.trace.run import run_full
from repro.trace.sampling import (
    kmeans,
    pick_representatives,
    profile_intervals,
    project_bbv,
    simulate_sampled,
    warming_ops,
)
from repro.workloads.feed import EmulatorFeed
from repro.workloads.kernels import kernel_program
from repro.workloads.trace import DynOp


def kernel_ops(name, **kwargs):
    return list(EmulatorFeed(kernel_program(name, **kwargs), name=name))


def fastest_config():
    backends = available_backends()
    pick = "native" if "native" in backends else backends[-1]
    return apply_backend(FOUR_WIDE, pick)


class TestProfiling:
    def test_counts_partition_the_trace(self):
        ops = kernel_ops("strsearch")
        vectors, counts = profile_intervals(ops, 500)
        assert sum(counts) == len(ops)
        assert len(vectors) == len(counts)
        assert all(sum(bbv.values()) == count for bbv, count in zip(vectors, counts))

    def test_leaders_are_block_starts(self):
        ops = kernel_ops("fibonacci")
        vectors, _counts = profile_intervals(ops, 10**9)
        (bbv,) = vectors
        leaders = set(bbv)
        assert ops[0].pc in leaders
        # every taken-branch target starts a block
        for op in ops:
            if op.is_control and op.next_pc != op.pc + 1:
                assert op.next_pc in leaders

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            profile_intervals([], 0)


class TestProjection:
    def test_projection_is_l1_normalized(self):
        bbv = {0: 3, 64: 5, 1024: 2}
        point = project_bbv(bbv, 16)
        assert len(point) == 16
        assert sum(abs(x) for x in point) == pytest.approx(1.0)

    def test_projection_is_deterministic(self):
        bbv = {i * 7: i + 1 for i in range(50)}
        assert project_bbv(bbv, 32) == project_bbv(bbv, 32)


class TestKMeans:
    POINTS = [[0.0, 1.0], [0.1, 0.9], [1.0, 0.0], [0.9, 0.1], [0.95, 0.05]]

    def test_deterministic_for_a_seed(self):
        a = kmeans(self.POINTS, 2, seed=1)
        b = kmeans(self.POINTS, 2, seed=1)
        assert a == b

    def test_separates_obvious_clusters(self):
        _centroids, labels = kmeans(self.POINTS, 2, seed=1)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3] == labels[4]
        assert labels[0] != labels[2]

    def test_k_capped_by_point_count(self):
        centroids, labels = kmeans(self.POINTS, 50, seed=0)
        assert len(centroids) <= len(self.POINTS)
        assert len(labels) == len(self.POINTS)


class TestRepresentatives:
    def test_weights_sum_to_one(self):
        ops = kernel_ops("sieve", n=600)
        vectors, counts = profile_intervals(ops, 500)
        points = [project_bbv(bbv, 16) for bbv in vectors]
        reps = pick_representatives(points, counts, 4, seed=1)
        assert reps == sorted(reps)
        assert sum(weight for _index, weight in reps) == pytest.approx(1.0)
        assert all(0 <= index < len(points) for index, _weight in reps)


class TestWarming:
    def ops_for(self, addresses):
        return [
            DynOp(seq=i, pc=100 + i, opcode="LDQ", op_class=None, mem_addr=addr)
            for i, addr in enumerate(addresses)
        ]

    def test_last_access_order_and_dedup(self):
        ops = self.ops_for([0, 16, 32, 16, 0])
        warming = warming_ops(ops, len(ops), 16, 100)
        assert [op.mem_addr for op in warming] == [32, 16, 0]

    def test_cap_keeps_most_recent_lines(self):
        ops = self.ops_for([0, 16, 32, 48])
        warming = warming_ops(ops, len(ops), 16, 2)
        assert [op.mem_addr for op in warming] == [32, 48]

    def test_ops_are_dependence_free(self):
        warming = warming_ops(self.ops_for([64]), 1, 16, 10)
        (op,) = warming
        assert op.dest is None and op.srcs == () and op.sched_deps == ()


class TestSampledAccuracy:
    """The tentpole bound, at tier-1 scale: a ~100k homogeneous trace."""

    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "dot.hpt"
        capture_kernel("dotproduct", path, n=12_000)
        return TraceFeed(path)

    def test_weighted_ipc_within_two_percent_at_low_coverage(self, trace):
        config = fastest_config()
        full = run_full(trace, config)
        report = simulate_sampled(trace, config)
        assert report["coverage"] < 0.5
        error = abs(report["weighted_ipc"] - full.ipc) / full.ipc
        assert error <= 0.02, (report["weighted_ipc"], full.ipc)

    def test_report_is_deterministic(self, trace):
        config = fastest_config()
        first = simulate_sampled(trace, config)
        second = simulate_sampled(trace, config)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_report_shape(self, trace):
        report = simulate_sampled(trace, fastest_config())
        assert report["insts"] == len(trace.ops)
        assert report["simulated_insts"] == sum(
            sample["committed"] for sample in report["samples"]
        )
        assert sum(s["weight"] for s in report["samples"]) == pytest.approx(1.0)
        assert report["content_hash"] == trace.content_hash
