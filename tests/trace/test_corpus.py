"""The shipped corpus, and content-hash (never path) cache identity."""

import shutil

import pytest

from repro.analysis.cache import ResultCache
from repro.pipeline.config import FOUR_WIDE
from repro.trace.capture import capture_kernel
from repro.trace.corpus import (
    CORPUS,
    CORPUS_BY_NAME,
    capture_corpus_entry,
    corpus_listing,
    corpus_path,
    load_corpus_feed,
    resolve_trace,
)
from repro.trace.feed import TraceFeed
from repro.trace.format import TraceFormatError, read_header
from repro.trace.run import run_full, sampled_fingerprint, trace_fingerprint


class TestShippedCorpus:
    def test_every_committed_entry_is_readable(self):
        for entry in CORPUS:
            if not entry.committed:
                continue
            header = read_header(corpus_path(entry))
            assert header["name"] == entry.name
            assert header["source"]["kernel"] == entry.kernel
            assert header["insts"] > 60_000

    def test_committed_files_match_fresh_capture(self, tmp_path):
        entry = CORPUS_BY_NAME["vector_sum_80k"]
        fresh = tmp_path / "fresh.hpt"
        capture_corpus_entry(entry, fresh)
        assert fresh.read_bytes() == corpus_path(entry).read_bytes()

    def test_listing_reports_committed_sizes(self):
        rows = {row["name"]: row for row in corpus_listing()}
        assert rows["sieve_105k"]["insts"] == read_header(corpus_path("sieve_105k"))["insts"]
        assert not rows["vector_sum_1m"].get("insts")

    def test_resolve_prefers_corpus_names_and_errors_helpfully(self, tmp_path):
        assert resolve_trace("sieve_105k") == corpus_path("sieve_105k")
        with pytest.raises(TraceFormatError, match="corpus"):
            resolve_trace("not_a_trace")
        loose = tmp_path / "loose.hpt"
        capture_kernel("fibonacci", loose)
        assert resolve_trace(str(loose)) == loose


class TestContentHashIdentity:
    """Satellite: fingerprints key on file *content*, never path or mtime."""

    def test_fingerprint_survives_copy_and_mtime(self, tmp_path):
        source = tmp_path / "a" / "trace.hpt"
        source.parent.mkdir()
        capture_kernel("fibonacci", source)
        copy = tmp_path / "b" / "renamed.hpt"
        copy.parent.mkdir()
        shutil.copy(source, copy)
        copy.touch()  # fresh mtime
        original = TraceFeed(source)
        moved = TraceFeed(copy)
        assert original.content_hash == moved.content_hash
        assert trace_fingerprint(original.content_hash, FOUR_WIDE) == trace_fingerprint(
            moved.content_hash, FOUR_WIDE
        )

    def test_different_content_changes_the_fingerprint(self, tmp_path):
        whole = tmp_path / "whole.hpt"
        short = tmp_path / "short.hpt"
        capture_kernel("fibonacci", whole)
        capture_kernel("fibonacci", short, limit=100)
        a = TraceFeed(whole).content_hash
        b = TraceFeed(short).content_hash
        assert a != b
        assert trace_fingerprint(a, FOUR_WIDE) != trace_fingerprint(b, FOUR_WIDE)

    def test_sampling_plan_changes_the_fingerprint(self, tmp_path):
        path = tmp_path / "t.hpt"
        capture_kernel("fibonacci", path)
        digest = TraceFeed(path).content_hash
        base = sampled_fingerprint(digest, FOUR_WIDE)
        assert base != sampled_fingerprint(digest, FOUR_WIDE, k=3)
        assert base != sampled_fingerprint(digest, FOUR_WIDE, interval=5_000)
        assert base != sampled_fingerprint(digest, FOUR_WIDE, warm_caches=False)
        assert base != trace_fingerprint(digest, FOUR_WIDE)


class TestCachedRuns:
    def test_run_full_round_trips_through_the_store(self, tmp_path):
        source = tmp_path / "t.hpt"
        capture_kernel("vector_sum", source, n=400)
        feed = TraceFeed(source)
        cache = ResultCache(tmp_path / "cache")
        first = run_full(feed, FOUR_WIDE, cache=cache)
        hits_before = cache.hits
        second = run_full(feed, FOUR_WIDE, cache=cache)
        assert cache.hits == hits_before + 1
        assert second.stats.cycles == first.stats.cycles
        assert second.ipc == first.ipc

    def test_cache_is_shared_across_paths(self, tmp_path):
        source = tmp_path / "t.hpt"
        capture_kernel("vector_sum", source, n=400)
        copy = tmp_path / "elsewhere.hpt"
        shutil.copy(source, copy)
        cache = ResultCache(tmp_path / "cache")
        run_full(TraceFeed(source), FOUR_WIDE, cache=cache)
        hits_before = cache.hits
        run_full(TraceFeed(copy), FOUR_WIDE, cache=cache)
        assert cache.hits == hits_before + 1

    def test_load_corpus_feed_limit(self):
        feed = load_corpus_feed("vector_sum_80k", limit=500)
        assert len(feed.ops) == 500
