"""Regression corpus: every checked-in repro case must replay clean.

Each ``tests/verify/corpus/*.hpa`` file is a program that once exposed (or
specifically stresses) a scheduler corner — store-to-load forwarding,
non-pipelined divider chains, loop-carried branches, cold-miss replay.  The
replay runs every case across the full eight-machine configuration matrix:
a once-fixed bug must stay fixed everywhere.
"""

from pathlib import Path

from repro.verify import REPRO_SUFFIX, read_repro, replay_corpus

CORPUS = Path(__file__).parent / "corpus"


def test_corpus_is_populated():
    cases = sorted(CORPUS.glob(f"*{REPRO_SUFFIX}"))
    assert len(cases) >= 3


def test_corpus_files_have_metadata():
    for path in CORPUS.glob(f"*{REPRO_SUFFIX}"):
        case = read_repro(path)
        assert case.source.strip(), f"{path.name} has no program body"
        assert case.kind, f"{path.name} lacks a kind header"


def test_corpus_replays_clean_across_matrix():
    report = replay_corpus(CORPUS)
    assert report.checked == report.programs * 8
    assert report.ok, "\n" + report.summary()
