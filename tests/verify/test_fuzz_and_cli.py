"""Fuzz orchestration, configuration matrix, repro files, and the CLI."""

import pytest

from repro.cli import main
from repro.core.wakeup import WakeupLogic
from repro.errors import ConfigurationError
from repro.pipeline.config import RecoveryModel, RegFileModel, SchedulerModel
from repro.verify import (
    FuzzReport,
    ReproCase,
    check_source,
    config_matrix,
    generate_source,
    read_repro,
    run_fuzz,
    write_repro,
)


class TestConfigMatrix:
    def test_full_matrix_is_eight_machines(self):
        matrix = config_matrix()
        assert len(matrix) == 8
        assert len({config.name for config in matrix}) == 8
        schedulers = {config.scheduler for config in matrix}
        assert schedulers == {
            SchedulerModel.BASE,
            SchedulerModel.SEQ_WAKEUP,
            SchedulerModel.TAG_ELIM,
        }
        assert any(c.regfile is RegFileModel.SEQUENTIAL for c in matrix)
        recoveries = {config.recovery for config in matrix}
        assert recoveries == {
            RecoveryModel.NON_SELECTIVE,
            RecoveryModel.SELECTIVE,
        }

    def test_filter_by_technique_selects_both_recoveries(self):
        matrix = config_matrix(["tag-elim"])
        assert [config.name for config in matrix] == [
            "tag-elim+nonsel",
            "tag-elim+sel",
        ]

    def test_filter_by_full_label(self):
        matrix = config_matrix(["seq-wakeup+sel"])
        assert len(matrix) == 1
        assert matrix[0].name == "seq-wakeup+sel"
        assert matrix[0].scheduler is SchedulerModel.SEQ_WAKEUP
        assert matrix[0].recovery is RecoveryModel.SELECTIVE

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="doom"):
            config_matrix(["doom"])


class TestRunFuzz:
    def test_clean_sweep(self):
        report = run_fuzz(programs=3, seed=11)
        assert report.ok
        assert report.programs == 3
        assert report.checked == 3 * 8
        assert "0 failure(s)" in report.summary()

    def test_raw_seeds_override_derivation(self):
        source = generate_source(123)
        config = config_matrix(["base+nonsel"])
        report = run_fuzz(programs=99, raw_seeds=[123], configs=config)
        assert report.ok and report.programs == 1
        # ... and the program checked is exactly the one that seed makes.
        assert check_source(source, config[0]) is None

    def test_progress_callback(self):
        seen = []
        run_fuzz(programs=2, seed=5, configs=config_matrix(["base+nonsel"]),
                 progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_max_failures_stops_early(self, monkeypatch):
        # Every issue is a violation once the selector stops counting, so
        # the sweep must stop after the first failing program.
        from repro.core.select import Selector

        monkeypatch.setattr(Selector, "take_slot",
                            lambda self, bubble_next=False: 0)
        report = run_fuzz(programs=50, seed=0,
                          configs=config_matrix(["base+nonsel"]),
                          shrink=False, max_failures=1)
        assert len(report.failures) == 1
        assert report.programs < 50

    def test_report_ok_property(self):
        report = FuzzReport(programs=0, config_names=[], checked=0)
        assert report.ok and "0 failure(s)" in report.summary()


class TestReproFiles:
    def test_round_trip(self, tmp_path):
        case = ReproCase(
            source="LDI r4, 1\nHALT\n",
            kind="issue-width",
            config="base+nonsel",
            seed=77,
            note="demo",
        )
        path = write_repro(case, tmp_path / "demo.hpa")
        loaded = read_repro(path)
        assert loaded.source == case.source
        assert loaded.kind == "issue-width"
        assert loaded.config == "base+nonsel"
        assert loaded.seed == 77
        assert loaded.note == "demo"

    def test_written_file_is_directly_assemblable(self, tmp_path):
        from repro.isa.assembler import assemble

        case = ReproCase(source=generate_source(3), kind="demo", seed=3)
        path = write_repro(case, tmp_path / "gen.hpa")
        assert len(assemble(path.read_text())) > 0

    def test_replay_command_embedded(self, tmp_path):
        path = write_repro(ReproCase(source="HALT\n"), tmp_path / "r.hpa")
        assert "--replay" in path.read_text()


class TestCli:
    def test_fuzz_clean_exit(self, capsys):
        code = main(["fuzz", "--programs", "2", "--seed", "11",
                     "--configs", "base+nonsel,tag-elim+sel", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 program(s) x 2 config(s)" in out

    def test_fuzz_gen_seed_single_program(self, capsys):
        code = main(["fuzz", "--gen-seed", "123",
                     "--configs", "base", "--quiet"])
        assert code == 0
        assert "1 program(s)" in capsys.readouterr().out

    def test_fuzz_unknown_config_errors(self, capsys):
        code = main(["fuzz", "--programs", "1", "--configs", "doom", "--quiet"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: unknown fuzz config")
        assert "Traceback" not in err

    def test_fuzz_failure_exit_code_and_repro(self, capsys, tmp_path,
                                              monkeypatch):
        def never_ready_is_fine(self, entry):
            return True

        monkeypatch.setattr(WakeupLogic, "entry_ready", never_ready_is_fine)
        code = main(["fuzz", "--programs", "5", "--seed", "0",
                     "--configs", "base+nonsel", "--max-failures", "1",
                     "--out", str(tmp_path), "--quiet"])
        assert code == 1
        out = capsys.readouterr().out
        assert "failure(s)" in out
        assert "repro: PYTHONPATH=src python -m repro fuzz --replay" in out
        written = list(tmp_path.glob("*.hpa"))
        assert written, "failing case was not written to --out"

    def test_fuzz_replay_corpus(self, capsys, tmp_path):
        case = ReproCase(source=generate_source(9), kind="demo", seed=9)
        write_repro(case, tmp_path / "case.hpa")
        code = main(["fuzz", "--replay", str(tmp_path),
                     "--configs", "base", "--quiet"])
        assert code == 0
        assert "1 program(s)" in capsys.readouterr().out
