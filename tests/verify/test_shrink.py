"""Shrinker: ddmin mechanics plus the end-to-end bug-catching acceptance.

The acceptance test is the one the whole subsystem exists for: inject a
real scheduler bug (a wakeup comparator stuck at ready), let the fuzzer
find it, and require the shrunk repro to be small enough for a human to
debug (<= 12 instructions).
"""

import pytest

from repro.core.last_arrival import OperandSide
from repro.core.wakeup import WakeupLogic
from repro.verify import (
    config_matrix,
    count_instructions,
    read_repro,
    run_fuzz,
    shrink_source,
)


class TestShrinkSource:
    def test_minimizes_to_failure_inducing_lines(self):
        # Oracle: fails iff both marker lines survive.
        source = "\n".join(
            [f"filler {index}" for index in range(20)] + ["keep-a"]
            + [f"pad {index}" for index in range(17)] + ["keep-b"]
        )

        def still_fails(candidate):
            return "keep-a" in candidate and "keep-b" in candidate

        shrunk = shrink_source(source, still_fails)
        assert shrunk.splitlines() == ["keep-a", "keep-b"]

    def test_single_line_failure(self):
        source = "\n".join(["x"] * 30 + ["bad"] + ["y"] * 30)
        shrunk = shrink_source(source, lambda c: "bad" in c)
        assert shrunk.splitlines() == ["bad"]

    def test_non_failing_input_raises(self):
        with pytest.raises(ValueError):
            shrink_source("a\nb\nc", lambda candidate: False)

    def test_respects_max_tests_budget(self):
        calls = 0

        def still_fails(candidate):
            nonlocal calls
            calls += 1
            return "bad" in candidate

        shrink_source("\n".join(["x"] * 50 + ["bad"]), still_fails, max_tests=10)
        assert calls <= 11  # baseline check + at most max_tests candidates

    def test_count_instructions(self):
        assert count_instructions("LDI r4, 1\nADD r5, r4, r4\nHALT") == 3


class TestInjectedWakeupBug:
    """Acceptance: the fuzzer finds, classifies and shrinks a real bug."""

    def test_stuck_comparator_caught_and_shrunk(self, monkeypatch, tmp_path):
        # The bug: the right-side wakeup comparator is stuck at ready, so
        # any instruction whose *right* operand is still in flight can
        # issue early.  Values still commit correctly (the timing model
        # never computes them) — only the invariant checker can see this.
        def stuck_right(self, entry):
            if not entry.mem_dep_ready:
                return False
            for operand in entry.operands:
                if operand.side is OperandSide.RIGHT:
                    continue
                if not operand.ready:
                    return False
            return True

        monkeypatch.setattr(WakeupLogic, "entry_ready", stuck_right)

        report = run_fuzz(
            programs=10,
            seed=0,
            configs=config_matrix(["base+nonsel"]),
            corpus_dir=tmp_path,
            max_failures=1,
        )

        assert not report.ok, "injected wakeup bug was not caught"
        failure = report.failures[0]
        assert failure.kind == "issue-before-ready"
        assert failure.shrunk_source is not None
        assert count_instructions(failure.shrunk_source) <= 12

        # The failure is written as a replayable repro file.
        assert failure.repro_path is not None and failure.repro_path.exists()
        case = read_repro(failure.repro_path)
        assert case.kind == "issue-before-ready"
        assert case.config == "base+nonsel"
        assert case.seed == failure.seed
        assert case.source == failure.shrunk_source
