"""Invariant checkers: each one must catch its targeted pipeline mutation.

The mutation tests break one structural promise of the pipeline with a
monkeypatch (a lying wakeup predicate, an uncounted issue slot, ...) and
assert that ``check_source`` classifies the resulting failure under the
right invariant ``kind``.  All of these are timing-only bugs: the committed
value stream stays correct, so lockstep alone would miss every one.
"""

import pytest

from repro.core.iq import EntryState, IQEntry
from repro.core.select import Selector
from repro.core.wakeup import WakeupLogic
from repro.isa.assembler import assemble
from repro.isa.opcodes import OpClass
from repro.pipeline.fu import FunctionalUnits
from repro.pipeline.processor import Processor
from repro.pipeline.regfile import RegisterFilePolicy
from repro.verify import InvariantViolation, check_source, config_matrix
from repro.workloads.feed import EmulatorFeed
from repro.workloads.trace import DynOp

BASE, BASE_SEL = config_matrix(["base"])
SEQ_RF = config_matrix(["seq-regfile+nonsel"])[0]

#: A long-latency producer (non-pipelined DIV) with eight consumers that
#: all wake on its broadcast, spread across three FU pools so the issue
#: width — not any single pool — is the binding limit.
WIDE_WAKE = """
    LDI r1, 4096
    LDI r14, 7
    DIV r5, r14, r14
    ADD r4, r5, #1
    ADD r6, r5, #2
    ADD r7, r5, #3
    ADD r8, r5, #4
    LDQ r9, 0(r5)
    LDQ r10, 8(r5)
    MUL r11, r5, r5
    MUL r12, r5, r5
    HALT
"""

#: Three loads waking together on one broadcast (mem_ports is 2).
THREE_LOADS = """
    LDI r14, 7
    DIV r5, r14, r14
    LDQ r6, 0(r5)
    LDQ r7, 8(r5)
    LDQ r8, 16(r5)
    HALT
"""

#: A two-source SUB whose right operand hangs off a DIV.
PENDING_RIGHT = """
    LDI r14, 7
    LDI r4, 1
    DIV r5, r14, r14
    SUB r6, r4, r5
    HALT
"""

#: Three two-source ADDs, ready at insert (operands produced long before,
#: NOP padding keeps the broadcasts clear of the inserts), issuing in one
#: cycle: 6 register reads against the sequential machine's 4 ports.
READ_BURST = (
    "    LDI r4, 1\n"
    "    LDI r5, 2\n"
    "    LDI r6, 3\n"
    "    LDI r7, 4\n"
    + "    NOP\n" * 12
    + "    ADD r8, r4, r5\n"
    "    ADD r9, r6, r7\n"
    "    ADD r10, r4, r6\n"
    "    HALT\n"
)

#: A cold-miss load with a dependent chain issued in its hit-speculation
#: shadow.
MISS_SHADOW = """
    LDI r1, 4096
    LDQ r4, 0(r1)
    ADD r5, r4, #1
    ADD r6, r5, #1
    HALT
"""


def assert_clean(source):
    """Unmutated sanity check: the program passes everywhere."""
    for config in config_matrix():
        failure = check_source(source, config)
        assert failure is None, failure.message


class TestMutationsCaught:
    """Each targeted pipeline bug maps to its invariant kind."""

    def test_programs_pass_unmutated(self):
        for source in (WIDE_WAKE, THREE_LOADS, PENDING_RIGHT, READ_BURST,
                       MISS_SHADOW):
            assert_clean(source)

    def test_issue_width(self, monkeypatch):
        # A selector that hands out slots without counting them: every
        # wake-cycle candidate issues at once.
        monkeypatch.setattr(Selector, "take_slot",
                            lambda self, bubble_next=False: 0)
        failure = check_source(WIDE_WAKE, BASE)
        assert failure is not None and failure.kind == "issue-width"

    def test_fu_port(self, monkeypatch):
        # Functional units that never report a port conflict: three loads
        # issue against two memory ports.
        monkeypatch.setattr(FunctionalUnits, "can_issue",
                            lambda self, op_class, now: True)
        failure = check_source(THREE_LOADS, BASE)
        assert failure is not None and failure.kind == "fu-port"

    def test_rf_port(self, monkeypatch):
        # Sequential register file that never sequentializes: two-source
        # instructions take both reads up front and blow the port budget.
        monkeypatch.setattr(RegisterFilePolicy, "decide_sequential_access",
                            lambda self, entry, now: False)
        failure = check_source(READ_BURST, SEQ_RF)
        assert failure is not None and failure.kind == "rf-port"

    def test_issue_before_ready(self, monkeypatch):
        # Wakeup logic whose second comparator is stuck ready (the bug
        # class sequential wakeup is most exposed to).
        def broken(self, entry):
            if not entry.mem_dep_ready:
                return False
            return not entry.operands or entry.operands[0].ready

        monkeypatch.setattr(WakeupLogic, "entry_ready", broken)
        failure = check_source(PENDING_RIGHT, BASE)
        assert failure is not None and failure.kind == "issue-before-ready"

    def test_replay_window(self, monkeypatch):
        # A squash that forgets to pull speculatively-issued dependents
        # back into the scheduler after a load miss.
        monkeypatch.setattr(Processor, "_squash", lambda self, entry: None)
        failure = check_source(MISS_SHADOW, BASE)
        assert failure is not None and failure.kind == "replay-window"

    def test_mutation_does_not_outlive_monkeypatch(self):
        # The monkeypatches above are class-level; everything must be
        # clean again here regardless of test order.
        assert check_source(MISS_SHADOW, BASE) is None


class TestCommitChecks:
    """Commit-side invariants, driven directly on handcrafted entries."""

    def _checker(self):
        program = assemble("LDI r4, 1\nHALT")
        processor = Processor(EmulatorFeed(program), BASE, check=True)
        return processor.checker.invariants

    def _entry(self, seq, state=EntryState.COMPLETED):
        op = DynOp(seq=seq, pc=seq, opcode="ADD", op_class=OpClass.INT_ALU)
        entry = IQEntry(op, tag=seq, operands=[], insert_cycle=0)
        entry.state = state
        return entry

    def test_in_order_contiguous_commits_pass(self):
        checker = self._checker()
        for seq in range(8):
            checker.on_commit(self._entry(seq), now=seq // 4)
        assert checker.commits_checked == 8

    def test_commit_width(self):
        checker = self._checker()
        for seq in range(4):
            checker.on_commit(self._entry(seq), now=7)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_commit(self._entry(4), now=7)
        assert excinfo.value.kind == "commit-width"

    def test_commit_state(self):
        checker = self._checker()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_commit(self._entry(0, state=EntryState.ISSUED), now=1)
        assert excinfo.value.kind == "commit-state"

    def test_commit_order(self):
        checker = self._checker()
        checker.on_commit(self._entry(0), now=1)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_commit(self._entry(2), now=1)
        assert excinfo.value.kind == "commit-order"

    def test_violation_carries_kind_and_cycle(self):
        error = InvariantViolation("fu-port", 42, "too many loads")
        assert error.kind == "fu-port"
        assert error.cycle == 42
        assert "cycle 42" in str(error) and "[fu-port]" in str(error)
