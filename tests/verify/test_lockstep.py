"""Lockstep co-simulation: every commit-stream corruption must be caught."""

import pytest

from repro.errors import VerificationError
from repro.isa.assembler import assemble
from repro.pipeline.processor import Processor
from repro.verify import DivergenceError, LockstepChecker, config_matrix
from repro.workloads.feed import EmulatorFeed

BASE = config_matrix(["base+nonsel"])[0]

SOURCE = """
    LDI r1, 4096
    LDI r4, 5
    LDI r5, 3
    ADD r6, r4, r5
    STQ r6, 0(r1)
    LDQ r7, 0(r1)
    MUL r8, r7, r4
    BEQ r31, done
    ADD r9, r9, #1      ; never executed
done:
    SUB r9, r8, r6
    HALT
"""


def stream(program):
    return list(EmulatorFeed(program))


class TamperedFeed:
    """An EmulatorFeed whose op stream passes through a mutation hook."""

    def __init__(self, program, mutate):
        self.program = program
        self.entry = 0
        self.name = "tampered"
        self._mutate = mutate

    def __iter__(self):
        for op in EmulatorFeed(self.program):
            result = self._mutate(op)
            if result is not None:
                yield result


class TestCheckerUnit:
    """LockstepChecker driven directly on a (possibly doctored) stream."""

    def test_clean_stream_passes(self):
        program = assemble(SOURCE)
        checker = LockstepChecker(program)
        ops = stream(program)
        for op in ops:
            checker.on_commit(op, cycle=op.seq)
        checker.finish()
        assert checker.commits == len(ops)

    @pytest.mark.parametrize(
        "field, corrupt",
        [
            ("dest-value", lambda op: setattr(op, "dest_value", 999_999)),
            ("store-value", lambda op: setattr(op, "store_value", -1)),
            ("pc", lambda op: setattr(op, "pc", op.pc + 1)),
            ("next-pc", lambda op: setattr(op, "next_pc", op.next_pc + 3)),
            ("mem-addr", lambda op: setattr(op, "mem_addr", 8)),
            ("taken", lambda op: setattr(op, "taken", not op.taken)),
        ],
    )
    def test_field_corruption_detected(self, field, corrupt):
        program = assemble(SOURCE)
        checker = LockstepChecker(program)
        # Corrupt the first op that carries the field being tested.
        picker = {
            "dest-value": lambda op: op.dest_value is not None,
            "store-value": lambda op: op.is_store,
            "pc": lambda op: True,
            "next-pc": lambda op: True,
            "mem-addr": lambda op: op.mem_addr is not None,
            "taken": lambda op: op.is_branch,
        }[field]
        corrupted = False
        with pytest.raises(DivergenceError) as excinfo:
            for op in stream(program):
                if not corrupted and picker(op):
                    corrupt(op)
                    corrupted = True
                checker.on_commit(op, cycle=0)
        assert corrupted
        assert excinfo.value.kind == f"lockstep-{field}"

    def test_duplicated_commit_is_divergence(self):
        program = assemble(SOURCE)
        checker = LockstepChecker(program)
        ops = stream(program)
        with pytest.raises(DivergenceError):
            checker.on_commit(ops[0], cycle=0)
            checker.on_commit(ops[0], cycle=0)  # golden has moved past it

    def test_commit_past_halt(self):
        program = assemble("LDI r4, 1\nHALT")
        checker = LockstepChecker(program)
        ops = stream(program)
        checker.on_commit(ops[0], cycle=0)
        with pytest.raises(DivergenceError) as excinfo:
            checker.on_commit(ops[0], cycle=1)
        assert excinfo.value.kind == "lockstep-past-halt"

    def test_truncated_stream_fails_finish(self):
        program = assemble(SOURCE)
        checker = LockstepChecker(program)
        for op in stream(program)[:3]:
            checker.on_commit(op, cycle=0)
        with pytest.raises(DivergenceError) as excinfo:
            checker.finish()
        assert excinfo.value.kind == "lockstep-missing-commits"

    def test_nan_values_compare_equal(self):
        source = """
            LDI r1, 4096
            LDF f1, 0(r1)
            MULF f1, f1, f1     ; square up to infinity...
            MULF f1, f1, f1
            MULF f1, f1, f1
            MULF f1, f1, f1
            MULF f1, f1, f1
            SUBF f2, f1, f1     ; inf - inf = NaN
            HALT
        .data 4096
            .word 4611686018427387904
        """
        program = assemble(source)
        checker = LockstepChecker(program)
        ops = stream(program)
        nan_ops = [op for op in ops
                   if isinstance(op.dest_value, float)
                   and op.dest_value != op.dest_value]
        assert nan_ops, "program failed to produce a NaN"
        for op in ops:
            checker.on_commit(op, cycle=0)
        checker.finish()


class TestThroughPipeline:
    """A corrupted feed must blow up a full Processor(check=True) run."""

    def _run(self, mutate):
        program = assemble(SOURCE)
        dynamic = len(stream(program))
        feed = TamperedFeed(program, mutate)
        processor = Processor(feed, BASE, check=True)
        result = processor.run(max_insts=dynamic + 8, warmup=0)
        processor.checker.finish()
        return result

    def test_clean_feed_passes(self):
        result = self._run(lambda op: op)
        assert result.total_committed == len(stream(assemble(SOURCE)))

    def test_value_tamper_raises_at_commit(self):
        def mutate(op):
            if op.seq == 3:
                op.dest_value = 123456
            return op

        with pytest.raises(DivergenceError) as excinfo:
            self._run(mutate)
        assert excinfo.value.kind == "lockstep-dest-value"
        assert excinfo.value.seq == 3

    def test_dropped_op_raises(self):
        # The hole is caught either as a commit-order invariant break or as
        # a lockstep divergence — both are VerificationErrors.
        with pytest.raises(VerificationError):
            self._run(lambda op: None if op.seq == 2 else op)

    def test_divergence_is_a_verification_error(self):
        assert issubclass(DivergenceError, VerificationError)
