"""Random-program generator: determinism, validity, stressor coverage."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator
from repro.verify import GeneratorKnobs, ProgramGenerator, generate_source

BUDGET = 50_000


class TestDeterminism:
    def test_same_seed_same_program(self):
        assert generate_source(42) == generate_source(42)

    def test_different_seeds_differ(self):
        sources = {generate_source(seed) for seed in range(10)}
        assert len(sources) == 10

    def test_knobs_change_output(self):
        small = GeneratorKnobs(segments=2)
        large = GeneratorKnobs(segments=16)
        assert generate_source(1, small) != generate_source(1, large)


class TestValidity:
    @pytest.mark.parametrize("seed", range(25))
    def test_assembles_and_halts(self, seed):
        program = assemble(generate_source(seed))
        emulator = Emulator(program)
        steps = emulator.run(max_steps=BUDGET)
        assert emulator.halted
        assert steps >= 1  # at least the HALT

    def test_program_helper_assembles(self):
        program = ProgramGenerator(seed=3).program()
        assert len(program) > 0

    def test_larger_knobs_make_larger_programs(self):
        small = len(assemble(generate_source(5, GeneratorKnobs(segments=2))))
        large = len(assemble(generate_source(5, GeneratorKnobs(segments=20))))
        assert large > small


class TestStressorCoverage:
    """A modest batch must exercise the paper's machinery end to end."""

    def _batch(self, count=30):
        return "\n".join(generate_source(seed) for seed in range(count))

    def test_mixes_present(self):
        batch = self._batch()
        # Aliasing memory traffic, long-latency chains, control flow.
        for mnemonic in ("LDQ", "STQ", "DIV", "MULF", "BNE", "JSR", "RET"):
            assert mnemonic in batch, f"{mnemonic} never generated"
        # 0/1/2-source operand shapes (Figures 2/3 stressors).
        assert "NOP2" in batch
        assert "r31" in batch  # zero-register sources

    def test_backward_branches_only_in_counted_loops(self):
        """Termination by construction: every backward target is a loop label."""
        for seed in range(15):
            program = assemble(generate_source(seed))
            labels_reversed = {index: name for name, index in program.labels.items()}
            for pc, inst in enumerate(program.instructions):
                if inst.target is not None and inst.target <= pc:
                    label = labels_reversed.get(inst.target, "")
                    assert label.startswith("loop"), (
                        f"seed {seed}: backward branch at {pc} to {label!r}"
                    )
