"""Tests for the IL1/DL1/L2/memory hierarchy."""

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig


@pytest.fixture
def hierarchy():
    return MemoryHierarchy()


class TestLatencies:
    def test_dl1_hit_latency(self, hierarchy):
        hierarchy.load(0x1000)
        result = hierarchy.load(0x1000)
        assert result.l1_hit and result.latency == 2

    def test_l2_hit_latency(self, hierarchy):
        hierarchy.load(0x1000)      # fills DL1 and L2
        hierarchy.dl1.invalidate(0x1000)
        result = hierarchy.load(0x1000)
        assert not result.l1_hit and result.l2_hit
        assert result.latency == 2 + 8

    def test_memory_latency(self, hierarchy):
        result = hierarchy.load(0x1000)
        assert not result.l1_hit and not result.l2_hit
        assert result.latency == 2 + 8 + 50

    def test_fetch_uses_il1(self, hierarchy):
        hierarchy.fetch(0x0)
        result = hierarchy.fetch(0x0)
        assert result.l1_hit and result.latency == 2
        assert hierarchy.dl1.stats.accesses == 0

    def test_is_miss_flag(self, hierarchy):
        assert hierarchy.load(0x99).is_miss
        assert not hierarchy.load(0x99).is_miss


class TestInclusionBehaviour:
    def test_l2_is_unified(self, hierarchy):
        """An instruction fetch can warm the L2 for a later data access."""
        hierarchy.fetch(0x4000)
        hierarchy.dl1.flush()
        result = hierarchy.load(0x4000)
        assert result.l2_hit

    def test_store_allocates(self, hierarchy):
        hierarchy.store(0x2000)
        assert hierarchy.load(0x2000).l1_hit

    def test_probe_load_hit(self, hierarchy):
        assert hierarchy.probe_load_hit(0x3000) is False
        hierarchy.load(0x3000)
        assert hierarchy.probe_load_hit(0x3000) is True

    def test_flush(self, hierarchy):
        hierarchy.load(0x1000)
        hierarchy.fetch(0x1000)
        hierarchy.flush()
        assert hierarchy.load(0x1000).is_miss


class TestConfigDefaults:
    def test_table1_geometry(self):
        config = MemoryHierarchyConfig()
        assert config.il1.size_bytes == 64 * 1024
        assert config.il1.associativity == 2
        assert config.il1.line_bytes == 32
        assert config.dl1.associativity == 4
        assert config.dl1.line_bytes == 16
        assert config.l2.size_bytes == 512 * 1024
        assert config.l2.line_bytes == 64
        assert config.memory_latency == 50

    def test_custom_config(self):
        config = MemoryHierarchyConfig(
            dl1=CacheConfig("DL1", 1024, 2, 16), dl1_latency=1
        )
        hierarchy = MemoryHierarchy(config)
        hierarchy.load(0)
        assert hierarchy.load(0).latency == 1
