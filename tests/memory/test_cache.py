"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheConfig


def tiny_cache(assoc=2, sets=4, line=16):
    return Cache(CacheConfig("T", assoc * sets * line, assoc, line))


class TestConfig:
    def test_num_sets(self):
        config = CacheConfig("X", 64 * 1024, 4, 16)
        assert config.num_sets == 1024

    @pytest.mark.parametrize(
        "size,assoc,line",
        [(0, 1, 16), (1024, 0, 16), (1024, 1, 0), (1000, 2, 16), (1024, 2, 24)],
    )
    def test_bad_geometry_rejected(self, size, assoc, line):
        with pytest.raises(ConfigurationError):
            CacheConfig("X", size, assoc, line)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("X", 3 * 2 * 16, 2, 16)


class TestAccess:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_line_hits(self):
        cache = tiny_cache(line=16)
        cache.access(0x100)
        assert cache.access(0x10F) is True

    def test_adjacent_line_misses(self):
        cache = tiny_cache(line=16)
        cache.access(0x100)
        assert cache.access(0x110) is False

    def test_lru_eviction(self):
        cache = tiny_cache(assoc=2, sets=1, line=16)
        cache.access(0x000)
        cache.access(0x010)
        cache.access(0x020)  # evicts 0x000
        assert cache.access(0x010) is True
        assert cache.access(0x000) is False
        assert cache.stats.evictions >= 1

    def test_hit_refreshes_lru(self):
        cache = tiny_cache(assoc=2, sets=1, line=16)
        cache.access(0x000)
        cache.access(0x010)
        cache.access(0x000)  # refresh: 0x010 is now LRU
        cache.access(0x020)  # evicts 0x010
        assert cache.access(0x000) is True
        assert cache.access(0x010) is False

    def test_sets_are_independent(self):
        cache = tiny_cache(assoc=1, sets=2, line=16)
        cache.access(0x000)  # set 0
        cache.access(0x010)  # set 1
        assert cache.access(0x000) is True
        assert cache.access(0x010) is True

    def test_stats(self):
        cache = tiny_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x1000)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_miss_rate_empty(self):
        assert tiny_cache().stats.miss_rate == 0.0

    def test_stats_reset(self):
        cache = tiny_cache()
        cache.access(0x0)
        cache.stats.reset()
        assert cache.stats.accesses == 0


class TestProbeInvalidateFlush:
    def test_probe_does_not_fill(self):
        cache = tiny_cache()
        assert cache.probe(0x100) is False
        assert cache.access(0x100) is False  # still a miss

    def test_probe_does_not_touch_lru(self):
        cache = tiny_cache(assoc=2, sets=1, line=16)
        cache.access(0x000)
        cache.access(0x010)
        cache.probe(0x000)  # must NOT refresh
        cache.access(0x020)  # evicts 0x000 (true LRU)
        assert cache.probe(0x000) is False

    def test_invalidate(self):
        cache = tiny_cache()
        cache.access(0x100)
        assert cache.invalidate(0x100) is True
        assert cache.probe(0x100) is False
        assert cache.invalidate(0x100) is False

    def test_flush(self):
        cache = tiny_cache()
        cache.access(0x100)
        cache.access(0x200)
        cache.flush()
        assert cache.resident_lines == 0

    def test_line_address(self):
        cache = tiny_cache(line=32)
        assert cache.line_address(0x105) == 0x100


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=300))
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = tiny_cache(assoc=2, sets=4, line=16)
        for addr in addrs:
            cache.access(addr)
        assert cache.resident_lines <= 8
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=200))
    def test_immediate_rereference_always_hits(self, addrs):
        cache = tiny_cache()
        for addr in addrs:
            cache.access(addr)
            assert cache.probe(addr) is True

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=100)
    )
    def test_small_working_set_fits(self, addrs):
        """A working set within one way's reach never evicts after warmup."""
        cache = tiny_cache(assoc=4, sets=4, line=16)  # 16 lines capacity
        for addr in addrs:  # addresses span at most 256 B = 16 lines
            cache.access(addr)
        for addr in addrs:
            assert cache.access(addr) is True
