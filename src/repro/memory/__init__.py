"""Memory system substrate: set-associative caches and the paper's hierarchy.

Table 1 of the paper specifies:

* 64 KB 2-way, 32 B line IL1 (2-cycle latency)
* 64 KB 4-way, 16 B line DL1 (2-cycle latency)
* 512 KB 4-way, 64 B line unified L2 (8-cycle latency)
* main memory at 50 cycles
"""

from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.hierarchy import AccessResult, MemoryHierarchy, MemoryHierarchyConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "AccessResult",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
]
