"""Two-level cache hierarchy with the paper's Table 1 latencies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, CacheConfig


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Geometry and latency of the whole memory system (Table 1)."""

    il1: CacheConfig = CacheConfig("IL1", 64 * 1024, 2, 32)
    dl1: CacheConfig = CacheConfig("DL1", 64 * 1024, 4, 16)
    l2: CacheConfig = CacheConfig("L2", 512 * 1024, 4, 64)
    il1_latency: int = 2
    dl1_latency: int = 2
    l2_latency: int = 8
    memory_latency: int = 50


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access.

    Attributes:
        latency: total access latency in cycles.
        l1_hit: True if the access hit in its first-level cache.
        l2_hit: True if an L1 miss hit in the L2 (False on L1 hits too).
    """

    latency: int
    l1_hit: bool
    l2_hit: bool = False

    @property
    def is_miss(self) -> bool:
        return not self.l1_hit


class MemoryHierarchy:
    """IL1 + DL1 backed by a unified L2 and main memory.

    Latencies accumulate down the hierarchy: an access that misses everywhere
    costs ``l1 + l2 + memory`` cycles, mirroring sim-outorder's serial lookup
    model.
    """

    __slots__ = ("config", "il1", "dl1", "l2")

    def __init__(self, config: MemoryHierarchyConfig | None = None):
        self.config = config or MemoryHierarchyConfig()
        self.il1 = Cache(self.config.il1)
        self.dl1 = Cache(self.config.dl1)
        self.l2 = Cache(self.config.l2)

    # ------------------------------------------------------------------
    def fetch(self, pc_addr: int) -> AccessResult:
        """Instruction fetch of the line holding *pc_addr*."""
        return self._access(self.il1, self.config.il1_latency, pc_addr, write=False)

    def load(self, addr: int) -> AccessResult:
        """Data load from *addr*."""
        return self._access(self.dl1, self.config.dl1_latency, addr, write=False)

    def store(self, addr: int) -> AccessResult:
        """Data store to *addr* (write-allocate)."""
        return self._access(self.dl1, self.config.dl1_latency, addr, write=True)

    def probe_load_hit(self, addr: int) -> bool:
        """Non-destructive DL1 residency check (used by oracle schedulers)."""
        return self.dl1.probe(addr)

    # ------------------------------------------------------------------
    def _access(self, l1: Cache, l1_latency: int, addr: int, write: bool) -> AccessResult:
        if l1.access(addr, write=write):
            return AccessResult(latency=l1_latency, l1_hit=True)
        if self.l2.access(addr, write=write):
            return AccessResult(
                latency=l1_latency + self.config.l2_latency, l1_hit=False, l2_hit=True
            )
        return AccessResult(
            latency=l1_latency + self.config.l2_latency + self.config.memory_latency,
            l1_hit=False,
            l2_hit=False,
        )

    def flush(self) -> None:
        """Empty all caches (cold restart)."""
        self.il1.flush()
        self.dl1.flush()
        self.l2.flush()
