"""Set-associative cache model with true-LRU replacement.

The model tracks tags only (no data), which is all a timing simulator needs.
LRU is implemented with per-set ordered dictionaries: a hit moves the line to
the MRU position, a fill evicts the LRU line.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int

    def __post_init__(self):
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ConfigurationError(f"{self.name}: non-positive cache parameter")
        if not _is_power_of_two(self.line_bytes):
            raise ConfigurationError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line = {self.associativity * self.line_bytes}"
            )
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError(f"{self.name}: set count must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0


class Cache:
    """One level of set-associative cache with LRU replacement."""

    __slots__ = ("config", "stats", "_line_shift", "_set_mask", "_sets")

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    # ------------------------------------------------------------------
    def line_address(self, addr: int) -> int:
        """Align *addr* down to its cache-line address."""
        return (addr >> self._line_shift) << self._line_shift

    def _locate(self, addr: int) -> tuple[OrderedDict, int]:
        line = addr >> self._line_shift
        return self._sets[line & self._set_mask], line

    # ------------------------------------------------------------------
    def access(self, addr: int, write: bool = False) -> bool:
        """Look up *addr*; fill on miss.  Returns True on a hit."""
        cache_set, tag = self._locate(addr)
        self.stats.accesses += 1
        if tag in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(tag)
            if write:
                cache_set[tag] = True
            return True
        self.stats.misses += 1
        self._fill(cache_set, tag, dirty=write)
        return False

    def probe(self, addr: int) -> bool:
        """Check residency of *addr* without updating LRU or statistics."""
        cache_set, tag = self._locate(addr)
        return tag in cache_set

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding *addr*; returns True if it was present."""
        cache_set, tag = self._locate(addr)
        return cache_set.pop(tag, None) is not None

    def flush(self) -> None:
        """Empty the cache (statistics are preserved)."""
        for cache_set in self._sets:
            cache_set.clear()

    # ------------------------------------------------------------------
    def _fill(self, cache_set: OrderedDict, tag: int, dirty: bool) -> None:
        if len(cache_set) >= self.config.associativity:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[tag] = dirty

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently in the cache."""
        return sum(len(cache_set) for cache_set in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        cfg = self.config
        return (
            f"Cache({cfg.name}: {cfg.size_bytes}B {cfg.associativity}-way "
            f"{cfg.line_bytes}B lines)"
        )
