"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show available benchmarks, kernels and experiments;
* ``run`` — simulate a synthetic benchmark on a configured machine;
* ``kernel`` — run an assembly kernel (optionally with a pipeline trace);
* ``experiment`` — regenerate one or more of the paper's tables/figures;
* ``prefetch`` — warm the on-disk result cache with the base-machine runs.

``experiment`` and ``prefetch`` accept ``--jobs N`` to fan independent
simulations over N worker processes (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments as experiment_defs
from repro.analysis.report import render
from repro.analysis.runner import ExperimentRunner
from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    BypassModel,
    RegFileModel,
    RenameModel,
    SchedulerModel,
)
from repro.pipeline.pipetrace import render_pipetrace
from repro.pipeline.processor import Processor
from repro.workloads.feed import EmulatorFeed
from repro.workloads.kernels import KERNELS, kernel_program
from repro.workloads.profiles import SPEC_BENCHMARKS, get_profile
from repro.workloads.synthetic import SyntheticWorkload


def _machine(args) -> "MachineConfig":
    config = FOUR_WIDE if args.width == 4 else EIGHT_WIDE
    techniques = {}
    if args.scheduler != "base":
        techniques["scheduler"] = SchedulerModel(args.scheduler)
    if args.regfile != "base":
        techniques["regfile"] = RegFileModel(args.regfile)
    if args.half_rename:
        techniques["rename"] = RenameModel.HALF_PORTS
    if args.half_bypass:
        techniques["bypass"] = BypassModel.HALF
    if args.no_predictor:
        techniques["predictor_entries"] = None
    if techniques:
        config = config.with_techniques(**techniques)
    return config


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=4, choices=(4, 8))
    parser.add_argument(
        "--scheduler", default="base", choices=[m.value for m in SchedulerModel]
    )
    parser.add_argument(
        "--regfile", default="base", choices=[m.value for m in RegFileModel]
    )
    parser.add_argument("--half-rename", action="store_true")
    parser.add_argument("--half-bypass", action="store_true")
    parser.add_argument("--no-predictor", action="store_true")


def _print_summary(result, processor) -> None:
    stats = result.stats
    print(f"machine:   {result.config_name}")
    print(f"workload:  {result.workload_name}")
    print(f"cycles:    {stats.cycles}")
    print(f"committed: {stats.committed}")
    print(f"IPC:       {stats.ipc:.4f}")
    print(f"branch mispredict rate: {stats.branch_mispredict_rate:.2%}")
    print(f"DL1 miss rate:          {processor.memory.dl1.stats.miss_rate:.2%}")
    print(f"replayed issues:        {stats.replayed}")
    print(f"load-miss replays:      {stats.load_miss_replays}")
    if stats.sequential_rf_accesses:
        print(f"sequential RF accesses: {stats.sequential_rf_accesses}")
    if stats.tag_elim_misschedules:
        print(f"tag-elim misschedules:  {stats.tag_elim_misschedules}")
    if stats.rename_port_stalls:
        print(f"rename port stalls:     {stats.rename_port_stalls}")
    if stats.double_bypass_delays:
        print(f"double-bypass delays:   {stats.double_bypass_delays}")


def _cmd_list(args) -> int:
    print("benchmarks: " + ", ".join(SPEC_BENCHMARKS))
    print("kernels:    " + ", ".join(sorted(KERNELS)))
    print("experiments:" + " " + ", ".join(experiment_defs.ALL_EXPERIMENTS))
    return 0


def _cmd_run(args) -> int:
    config = _machine(args)
    workload = SyntheticWorkload(get_profile(args.benchmark), seed=args.seed)
    processor = Processor(workload, config)
    result = processor.run(max_insts=args.insts, warmup=args.warmup)
    _print_summary(result, processor)
    return 0


def _cmd_kernel(args) -> int:
    config = _machine(args)
    feed = EmulatorFeed(kernel_program(args.name), name=args.name)
    processor = Processor(feed, config, record_schedule=args.pipetrace > 0)
    result = processor.run(max_insts=10**7, warmup=0)
    _print_summary(result, processor)
    if args.pipetrace > 0:
        print()
        print(render_pipetrace(processor, first_seq=0, count=args.pipetrace))
    return 0


def _cmd_experiment(args) -> int:
    runner = ExperimentRunner(
        insts=args.insts,
        warmup=args.warmup,
        benchmarks=tuple(args.benchmarks.split(",")) if args.benchmarks else None,
        jobs=args.jobs,
    )
    names = list(experiment_defs.ALL_EXPERIMENTS) if "all" in args.ids else args.ids
    for name in names:
        function = experiment_defs.ALL_EXPERIMENTS.get(name)
        if function is None:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        print(render(function(runner)))
        print()
    return 0


def _cmd_prefetch(args) -> int:
    runner = ExperimentRunner(
        insts=args.insts,
        warmup=args.warmup,
        benchmarks=tuple(args.benchmarks.split(",")) if args.benchmarks else None,
        jobs=args.jobs,
    )
    if runner.cache is None:
        print("result cache is disabled (REPRO_CACHE=0); nothing to warm")
        return 2
    executed = runner.prefetch_base()
    print(f"cache dir: {runner.cache.directory}")
    print(f"simulated: {executed}")
    print(f"served from disk: {runner.cache.hits}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Half-Price Architecture reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="show benchmarks/kernels/experiments")

    run_parser = subparsers.add_parser("run", help="simulate a synthetic benchmark")
    run_parser.add_argument("benchmark", choices=SPEC_BENCHMARKS)
    run_parser.add_argument("--insts", type=int, default=15_000)
    run_parser.add_argument("--warmup", type=int, default=20_000)
    run_parser.add_argument("--seed", type=int, default=42)
    _add_machine_arguments(run_parser)

    kernel_parser = subparsers.add_parser("kernel", help="run an assembly kernel")
    kernel_parser.add_argument("name", choices=sorted(KERNELS))
    kernel_parser.add_argument(
        "--pipetrace", type=int, default=0, metavar="N",
        help="render the pipeline timeline of the first N instructions",
    )
    _add_machine_arguments(kernel_parser)

    experiment_parser = subparsers.add_parser(
        "experiment", help="regenerate paper tables/figures"
    )
    experiment_parser.add_argument(
        "ids", nargs="+",
        help="experiment ids (see 'repro list'), or 'all'",
    )
    experiment_parser.add_argument("--insts", type=int, default=None)
    experiment_parser.add_argument("--warmup", type=int, default=None)
    experiment_parser.add_argument("--benchmarks", default=None)
    experiment_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs (default: REPRO_JOBS/CPUs)",
    )

    prefetch_parser = subparsers.add_parser(
        "prefetch", help="warm the on-disk result cache with base-machine runs"
    )
    prefetch_parser.add_argument("--insts", type=int, default=None)
    prefetch_parser.add_argument("--warmup", type=int, default=None)
    prefetch_parser.add_argument("--benchmarks", default=None)
    prefetch_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs (default: REPRO_JOBS/CPUs)",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "kernel": _cmd_kernel,
        "experiment": _cmd_experiment,
        "prefetch": _cmd_prefetch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
