"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show available benchmarks, kernels and experiments;
* ``run`` — simulate a synthetic benchmark on a configured machine;
* ``kernel`` — run an assembly kernel (optionally with a pipeline trace);
* ``experiment`` — regenerate one or more of the paper's tables/figures;
* ``prefetch`` — warm the on-disk result cache with the base-machine runs;
* ``export-stats`` — write schema-versioned stats JSON, one per run;
* ``trace`` — the tracefile toolbox (docs/TRACES.md): ``capture`` a
  kernel/benchmark execution to a binary tracefile, ``info`` a
  tracefile's header, ``run`` a tracefile (full or SimPoint-sampled),
  and ``render`` a pipeline trace (ASCII or Chrome/Perfetto JSON);
* ``workloads`` — list kernels, synthetic profiles and the trace corpus;
* ``report`` — regression scorecard: diff a stats tree against a baseline;
* ``fuzz`` — differential fuzzing: random programs co-simulated against
  the functional emulator with pipeline invariant checkers armed
  (docs/VERIFICATION.md), with failure shrinking and corpus replay;
* ``serve`` — run the HTTP job server (simulation-as-a-service with
  request coalescing and backpressure, docs/SERVING.md);
* ``submit`` — submit runs to a serve endpoint and optionally wait;
* ``jobs`` — list or inspect jobs on a serve endpoint.

``experiment``, ``prefetch`` and ``export-stats`` accept ``--jobs N`` to
fan independent simulations over N worker processes (docs/PERFORMANCE.md);
the observability pipeline is described in docs/OBSERVABILITY.md.

Every failure exits nonzero with a one-line ``error: ...`` message on
stderr — library errors never surface as tracebacks.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro.analysis import experiments as experiment_defs
from repro.analysis.report import render
from repro.analysis.runner import ExperimentRunner
from repro.obs.chrometrace import write_chrome_trace
from repro.obs.scorecard import (
    DEFAULT_TOLERANCES,
    compare_trees,
    render_scorecard,
)
from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    BypassModel,
    RegFileModel,
    RenameModel,
    SchedulerModel,
)
from repro.errors import ReproError
from repro.fastsim import BACKENDS, apply_backend, make_processor
from repro.pipeline.pipetrace import render_pipetrace
from repro.pipeline.processor import Processor
from repro.workloads.feed import EmulatorFeed
from repro.workloads.kernels import KERNELS, kernel_program
from repro.workloads.profiles import SPEC_BENCHMARKS, get_profile
from repro.workloads.synthetic import SyntheticWorkload


def _machine(args) -> "MachineConfig":
    config = FOUR_WIDE if args.width == 4 else EIGHT_WIDE
    techniques = {}
    if args.scheduler != "base":
        techniques["scheduler"] = SchedulerModel(args.scheduler)
    if args.regfile != "base":
        techniques["regfile"] = RegFileModel(args.regfile)
    if args.half_rename:
        techniques["rename"] = RenameModel.HALF_PORTS
    if args.half_bypass:
        techniques["bypass"] = BypassModel.HALF
    if args.no_predictor:
        techniques["predictor_entries"] = None
    if techniques:
        config = config.with_techniques(**techniques)
    return config


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=4, choices=(4, 8))
    parser.add_argument(
        "--scheduler", default="base", choices=[m.value for m in SchedulerModel]
    )
    parser.add_argument(
        "--regfile", default="base", choices=[m.value for m in RegFileModel]
    )
    parser.add_argument("--half-rename", action="store_true")
    parser.add_argument("--half-bypass", action="store_true")
    parser.add_argument("--no-predictor", action="store_true")


def _print_summary(result, processor) -> None:
    stats = result.stats
    print(f"machine:   {result.config_name}")
    print(f"workload:  {result.workload_name}")
    print(f"cycles:    {stats.cycles}")
    print(f"committed: {stats.committed}")
    print(f"IPC:       {stats.ipc:.4f}")
    print(f"branch mispredict rate: {stats.branch_mispredict_rate:.2%}")
    print(f"DL1 miss rate:          {processor.memory.dl1.stats.miss_rate:.2%}")
    print(f"replayed issues:        {stats.replayed}")
    print(f"load-miss replays:      {stats.load_miss_replays}")
    if stats.sequential_rf_accesses:
        print(f"sequential RF accesses: {stats.sequential_rf_accesses}")
    if stats.tag_elim_misschedules:
        print(f"tag-elim misschedules:  {stats.tag_elim_misschedules}")
    if stats.rename_port_stalls:
        print(f"rename port stalls:     {stats.rename_port_stalls}")
    if stats.double_bypass_delays:
        print(f"double-bypass delays:   {stats.double_bypass_delays}")


def _cmd_list(args) -> int:
    print("benchmarks: " + ", ".join(SPEC_BENCHMARKS))
    print("kernels:    " + ", ".join(sorted(KERNELS)))
    print("experiments:" + " " + ", ".join(experiment_defs.ALL_EXPERIMENTS))
    return 0


def _cmd_run(args) -> int:
    config = apply_backend(_machine(args), args.backend)
    workload = SyntheticWorkload(get_profile(args.benchmark), seed=args.seed)
    processor = make_processor(
        workload, config, backend=config.backend, profile=args.profile
    )
    result = processor.run(max_insts=args.insts, warmup=args.warmup)
    _print_summary(result, processor)
    if processor.profiler is not None:
        print()
        print("stage wall time (profiled):")
        total = sum(processor.profiler.seconds.values()) or 1.0
        for name, seconds in sorted(
            processor.profiler.seconds.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {name:<18} {seconds * 1e3:8.2f} ms  {seconds / total:6.1%}")
    return 0


def _cmd_kernel(args) -> int:
    config = _machine(args)
    feed = EmulatorFeed(kernel_program(args.name), name=args.name)
    processor = Processor(feed, config, record_schedule=args.pipetrace > 0)
    result = processor.run(max_insts=10**7, warmup=0)
    _print_summary(result, processor)
    if args.pipetrace > 0:
        print()
        print(render_pipetrace(processor, first_seq=0, count=args.pipetrace))
    return 0


def _cmd_experiment(args) -> int:
    runner = ExperimentRunner(
        insts=args.insts,
        warmup=args.warmup,
        benchmarks=tuple(args.benchmarks.split(",")) if args.benchmarks else None,
        jobs=args.jobs,
    )
    names = list(experiment_defs.ALL_EXPERIMENTS) if "all" in args.ids else args.ids
    for name in names:
        function = experiment_defs.ALL_EXPERIMENTS.get(name)
        if function is None:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        print(render(function(runner)))
        print()
    return 0


def _cmd_prefetch(args) -> int:
    runner = ExperimentRunner(
        insts=args.insts,
        warmup=args.warmup,
        benchmarks=tuple(args.benchmarks.split(",")) if args.benchmarks else None,
        jobs=args.jobs,
    )
    if runner.cache is None:
        print("result cache is disabled (REPRO_CACHE=0); nothing to warm")
        return 2
    executed = runner.prefetch_base()
    print(f"cache dir: {runner.cache.directory}")
    print(f"simulated: {executed}")
    print(f"served from disk: {runner.cache.hits}")
    _print_pool_summary()
    return 0


def _print_pool_summary() -> None:
    """One line of warm-pool stats, if a fan-out actually started one."""
    from repro.analysis.pool import maybe_pool

    pool = maybe_pool()
    if pool is None:
        return
    metrics = pool.registry.as_dict()
    dispatches = metrics.get("pool.dispatches", 0)
    if not dispatches:
        return
    chunks = metrics.get("pool.chunks_sent", 0)
    jobs = metrics.get("pool.jobs_dispatched", 0)
    print(
        f"pool: {jobs} job(s) over {dispatches} dispatch(es) in {chunks} "
        f"chunk(s), {metrics.get('pool.worker_starts', 0)} worker start(s), "
        f"{metrics.get('pool.worker_reuse_hits', 0)} warm reuse(s), "
        f"{metrics.get('pool.crash_replacements', 0)} crash replacement(s)"
    )


def _cmd_export_stats(args) -> int:
    config = _machine(args)
    benchmarks = (
        SPEC_BENCHMARKS if args.benchmarks == ["all"] else tuple(args.benchmarks)
    )
    unknown = [name for name in benchmarks if name not in SPEC_BENCHMARKS]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(
        insts=args.insts,
        warmup=args.warmup,
        seed=args.seed,
        benchmarks=tuple(benchmarks),
        jobs=args.jobs,
        cache=not args.no_cache,
    )
    paths = runner.export_stats(args.out, configs=(config,), workers=args.jobs)
    for path in paths:
        print(path)
    return 0


def _cmd_trace(args) -> int:
    handlers = {
        "render": _cmd_trace_render,
        "capture": _cmd_trace_capture,
        "info": _cmd_trace_info,
        "run": _cmd_trace_run,
    }
    return handlers[args.trace_command](args)


def _cmd_trace_render(args) -> int:
    config = _machine(args)
    if args.name in KERNELS:
        feed = EmulatorFeed(kernel_program(args.name), name=args.name)
    elif args.name in SPEC_BENCHMARKS:
        feed = SyntheticWorkload(get_profile(args.name), seed=args.seed)
    else:
        print(f"unknown kernel/benchmark {args.name!r}", file=sys.stderr)
        return 2
    processor = Processor(feed, config, record_schedule=True)
    processor.run(max_insts=args.insts, warmup=0)
    if args.format == "chrome":
        out = args.out or f"{args.name}.trace.json"
        path = write_chrome_trace(
            processor, out, first_seq=args.first, count=args.count
        )
        print(f"wrote {path} (open in chrome://tracing or ui.perfetto.dev)")
    else:
        print(render_pipetrace(processor, first_seq=args.first, count=args.count or 16))
    return 0


def _kernel_kwargs(pairs: list[str]) -> dict:
    kwargs = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key or not value:
            raise ReproError(f"--arg wants NAME=INT, got {pair!r}")
        try:
            kwargs[key] = int(value)
        except ValueError:
            raise ReproError(f"--arg value for {key!r} must be an integer") from None
    return kwargs


def _cmd_trace_capture(args) -> int:
    from repro.trace import (
        CORPUS_BY_NAME,
        capture_corpus_entry,
        capture_kernel,
        capture_stream,
        corpus_path,
    )

    if args.corpus is None and args.source is None:
        print("error: give a kernel/benchmark name or --corpus NAME", file=sys.stderr)
        return 2
    if args.corpus is not None:
        entry = CORPUS_BY_NAME.get(args.corpus)
        if entry is None:
            known = ", ".join(sorted(CORPUS_BY_NAME))
            print(f"unknown corpus trace {args.corpus!r} (corpus: {known})", file=sys.stderr)
            return 2
        path = corpus_path(entry)
        header = capture_corpus_entry(entry, path)
    elif args.source in KERNELS:
        path = args.out or f"{args.source}.hpt"
        header = capture_kernel(
            args.source,
            path,
            name=args.name or args.source,
            limit=args.limit,
            **_kernel_kwargs(args.arg),
        )
    elif args.source in SPEC_BENCHMARKS:
        if args.limit is None:
            print(
                "error: synthetic benchmarks are unbounded; --limit is required",
                file=sys.stderr,
            )
            return 2
        path = args.out or f"{args.source}.hpt"
        workload = SyntheticWorkload(get_profile(args.source), seed=args.seed)
        header = capture_stream(
            workload,
            path,
            name=args.name or f"{args.source}-s{args.seed}",
            limit=args.limit,
            source={"kind": "synthetic", "benchmark": args.source, "seed": args.seed},
        )
    else:
        print(f"unknown kernel/benchmark {args.source!r}", file=sys.stderr)
        return 2
    print(
        f"captured {header['name']}  insts={header['insts']}  "
        f"sha={header['trace_sha256'][:12]}  -> {path}"
    )
    return 0


def _cmd_trace_info(args) -> int:
    from repro.trace import resolve_trace, trace_info

    info = trace_info(resolve_trace(args.trace))
    for key in (
        "path",
        "name",
        "insts",
        "bytes",
        "trace_sha256",
        "program_sha256",
        "isa_version",
        "format_version",
        "source",
    ):
        print(f"{key + ':':<16}{info[key]}")
    return 0


def _cmd_trace_run(args) -> int:
    from repro.analysis.cache import ResultCache
    from repro.trace import load_corpus_feed, run_full, run_sampled

    config = apply_backend(_machine(args), args.backend)
    feed = load_corpus_feed(args.trace)
    cache = None if args.no_cache else ResultCache.from_env()
    if args.sampled:
        report = run_sampled(
            feed,
            config,
            interval=args.interval,
            k=args.k,
            warmup=args.sample_warmup,
            dims=args.dims,
            seed=args.sample_seed,
            warm_caches=not args.no_warm_caches,
            cache=cache,
        )
        print(f"machine:   {report['config']}")
        print(f"trace:     {report['trace']} ({report['insts']} insts)")
        print(f"intervals: {report['intervals']} x {report['interval']}")
        print(f"clusters:  {report['clusters']} (of k={report['k']})")
        print(f"simulated: {report['simulated_insts']} insts "
              f"(coverage {report['coverage']:.3f})")
        print(f"weighted IPC: {report['weighted_ipc']:.4f}")
        if args.report_out is not None:
            import json

            from pathlib import Path

            out = Path(args.report_out)
            out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
            print(f"wrote {out}")
    else:
        result = run_full(
            feed, config, insts=args.insts, warmup=args.warmup, cache=cache
        )
        stats = result.stats
        print(f"machine:   {result.config_name}")
        print(f"trace:     {result.workload_name}")
        print(f"cycles:    {stats.cycles}")
        print(f"committed: {stats.committed}")
        print(f"IPC:       {stats.ipc:.4f}")
        print(f"branch mispredict rate: {stats.branch_mispredict_rate:.2%}")
    return 0


def _cmd_workloads(args) -> int:
    from repro.trace import corpus_listing

    print("kernels (assembled, run to completion):")
    for name in sorted(KERNELS):
        feed = EmulatorFeed(kernel_program(name), name=name)
        count = sum(1 for _ in feed)
        print(f"  {name:<14} {count:>8} insts")
    print()
    print("synthetic profiles (unbounded, seeded):")
    print("  " + ", ".join(SPEC_BENCHMARKS))
    print()
    print("trace corpus (workloads/traces/, see docs/TRACES.md):")
    for row in corpus_listing():
        parameters = ", ".join(f"{k}={v}" for k, v in row["kwargs"].items())
        origin = f"{row['kernel']}({parameters})"
        if row.get("missing"):
            state = (
                "uncommitted; captured by CI"
                if not row["committed"]
                else "MISSING — run scripts/make_corpus.py"
            )
            print(f"  {row['name']:<16} {origin:<24} [{state}]")
        elif row.get("error"):
            print(f"  {row['name']:<16} {origin:<24} [unreadable: {row['error']}]")
        else:
            print(
                f"  {row['name']:<16} {origin:<24} {row['insts']:>8} insts  "
                f"{row['bytes']:>7} B  sha {row['trace_sha256'][:12]}"
            )
    return 0


def _cmd_fuzz(args) -> int:
    # Imported here: the verify package is needed only by this command.
    from repro.verify import config_matrix, replay_corpus, run_fuzz

    config_names = None if args.configs == "all" else args.configs.split(",")
    configs = config_matrix(names=config_names)
    if args.backends is not None and not args.cross_backend:
        print("error: --backends requires --cross-backend", file=sys.stderr)
        return 2
    if args.replay is not None:
        from pathlib import Path

        if args.cross_backend:
            print("error: --cross-backend cannot be combined with --replay", file=sys.stderr)
            return 2
        if not Path(args.replay).exists():
            print(f"error: no such replay file or directory: {args.replay}", file=sys.stderr)
            return 2
        report = replay_corpus(args.replay, configs=configs, budget=args.budget)
    else:
        if args.gen_seed is not None:
            raw_seeds, programs = [args.gen_seed], 1
        else:
            raw_seeds, programs = None, args.programs

        def progress(done: int, total: int) -> None:
            if done % 50 == 0 or done == total:
                print(f"  fuzz progress: {done}/{total} programs", flush=True)

        report = run_fuzz(
            programs,
            seed=args.seed,
            configs=configs,
            budget=args.budget,
            shrink=not args.no_shrink,
            corpus_dir=args.out,
            max_failures=args.max_failures,
            raw_seeds=raw_seeds,
            progress=progress if not args.quiet else None,
            cross_backend=args.cross_backend,
            backends=(
                args.backends.split(",") if args.backends is not None else None
            ),
        )
    print(report.summary())
    for failure in report.failures:
        print()
        if failure.repro_path is not None:
            print(
                "repro: PYTHONPATH=src python -m repro fuzz "
                f"--replay {failure.repro_path}"
            )
        elif failure.seed is not None:
            print(
                "repro: PYTHONPATH=src python -m repro fuzz "
                f"--gen-seed {failure.seed} --configs {failure.config_name}"
            )
        if failure.shrunk_source is not None:
            print("shrunken repro:")
            print(failure.shrunk_source.rstrip())
    return 0 if report.ok else 1


def _cmd_report(args) -> int:
    tolerances = dict(DEFAULT_TOLERANCES)
    if args.tolerance is not None:
        tolerances[""] = args.tolerance
        tolerances["metrics"] = args.tolerance
    if args.ipc_tolerance is not None:
        tolerances["derived.ipc"] = args.ipc_tolerance
    card = compare_trees(args.baseline, args.current, tolerances)
    print(render_scorecard(card))
    return card.exit_code


def _machine_spec_fields(args, spec: dict) -> dict:
    """Fold submit's machine flags into a wire-level spec."""
    if args.scheduler != "base":
        spec["scheduler"] = args.scheduler
    if args.regfile != "base":
        spec["regfile"] = args.regfile
    if args.half_rename:
        spec["half_rename"] = True
    if args.half_bypass:
        spec["half_bypass"] = True
    if args.no_predictor:
        spec["predictor"] = False
    if args.shadow:
        spec["shadow"] = True
    if args.backend is not None:
        spec["backend"] = args.backend
    return spec


def _run_spec_from_args(args, benchmark: str) -> dict:
    """Wire-level run spec from submit's machine/run flags."""
    spec = {"kind": "run", "benchmark": benchmark, "width": args.width,
            "seed": args.seed, "priority": args.priority,
            "insts": args.insts if args.insts is not None else 15_000,
            "warmup": args.warmup if args.warmup is not None else 20_000}
    return _machine_spec_fields(args, spec)


def _trace_spec_from_args(args, ref: str) -> dict:
    """Wire-level trace spec; resolves the content hash locally if it can.

    A locally resolvable reference gets its ``content_hash`` pinned on the
    client, so the job identity is the trace *content* even if the server
    resolves the name to a different checkout path.  Unresolvable
    references are sent bare and resolved server-side at parse time.
    """
    spec = {"kind": "trace", "trace": ref, "width": args.width,
            "priority": args.priority}
    if args.insts is not None:
        spec["insts"] = args.insts
    if args.warmup is not None:
        spec["warmup"] = args.warmup
    if args.sampled:
        spec["sampled"] = True
    try:
        from repro.trace import read_header, resolve_trace

        spec["content_hash"] = read_header(resolve_trace(ref))["trace_sha256"]
    except ReproError:
        pass
    return _machine_spec_fields(args, spec)


def _cmd_serve(args) -> int:
    if args.router and args.worker:
        print("error: --router and --worker are mutually exclusive", file=sys.stderr)
        return 2
    if args.router:
        return _cmd_serve_router(args)
    from repro.analysis.cache import ResultCache
    from repro.serve.executor import JobExecutor
    from repro.serve.server import ServeServer, run_server

    if args.no_cache:
        cache: ResultCache | bool = False
    elif args.store is not None:
        cache = ResultCache(directory=args.store)
    else:
        cache = True
    server = ServeServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        spool=args.spool,
        executor=JobExecutor(cache=cache),
        name=args.name,
        batch=args.batch,
    )
    role = "worker" if args.worker else "serving"

    def announce(started: ServeServer) -> None:
        label = f" [{started.name}]" if started.name else ""
        print(f"{role}{label} on http://{started.host}:{started.port}", flush=True)
        if started.recovered:
            print(f"recovered {started.recovered} pending job(s) from {args.spool}", flush=True)

    code = run_server(server, announce=announce)
    pending = len(server.table.pending())
    completed = server.registry.get("serve.completed")
    print(
        f"drained: {completed.value if completed else 0} job(s) completed, "
        f"{pending} persisted for restart",
        flush=True,
    )
    return code


def _cmd_serve_router(args) -> int:
    from repro.serve.router import RouterServer, run_router

    if not args.worker_url:
        print(
            "error: --router needs at least one --worker-url "
            "(workers can also register at runtime via /v1/workers/register)",
            file=sys.stderr,
        )
        return 2
    router = RouterServer(
        host=args.host,
        port=args.port,
        workers=args.worker_url,
        spool=args.spool,
        queue_size=args.queue_size,
        steal_watermark=args.steal_watermark,
    )

    def announce(started: RouterServer) -> None:
        print(f"routing on http://{started.host}:{started.port}", flush=True)
        print(f"workers: {', '.join(started.ring.nodes())}", flush=True)
        if started.recovered:
            print(f"recovered {started.recovered} pending job(s) from {args.spool}", flush=True)

    code = run_router(router, announce=announce)
    pending = len(router.table.pending())
    completed = router.registry.get("router.completed")
    print(
        f"drained: {completed.value if completed else 0} job(s) completed, "
        f"{pending} persisted for restart",
        flush=True,
    )
    return code


def _cmd_submit(args) -> int:
    from repro.obs.export import write_stats_json
    from repro.serve.client import JobFailed, ServeClient

    if args.trace:
        if args.benchmarks == ["all"]:
            from repro.trace import CORPUS

            names = tuple(entry.name for entry in CORPUS if entry.committed)
        else:
            names = tuple(args.benchmarks)
        specs = [_trace_spec_from_args(args, ref) for ref in names]
    else:
        if args.sampled:
            print("error: --sampled requires --trace", file=sys.stderr)
            return 2
        benchmarks = (
            SPEC_BENCHMARKS if args.benchmarks == ["all"] else tuple(args.benchmarks)
        )
        unknown = [name for name in benchmarks if name not in SPEC_BENCHMARKS]
        if unknown:
            print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        specs = [_run_spec_from_args(args, benchmark) for benchmark in benchmarks]
    client = ServeClient(args.server, timeout=args.timeout)
    receipts = client.submit(specs)
    for receipt in receipts:
        suffix = f" (coalesced into {receipt['coalesced_into']})" if receipt["coalesced"] else ""
        print(f"{receipt['id']}  {receipt['status']}{suffix}")
    if not args.wait:
        return 0
    failures = 0
    for receipt in receipts:
        try:
            document = client.wait(receipt["id"], timeout=args.timeout)
        except JobFailed as error:
            print(f"{receipt['id']}  failed: {error}", file=sys.stderr)
            failures += 1
            continue
        result = document["result"]
        if "report" in result:
            report = result["report"]
            print(
                f"{receipt['id']}  done  {report['trace']}  "
                f"weighted IPC {report['weighted_ipc']:.4f}  "
                f"coverage {report['coverage']:.3f}"
            )
            if args.out is not None:
                import json
                from pathlib import Path

                out_dir = Path(args.out)
                out_dir.mkdir(parents=True, exist_ok=True)
                out = out_dir / f"{report['trace']}.report.json"
                out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
                print(f"  wrote {out}")
            continue
        stats = result["stats"]
        ipc = stats["derived"]["ipc"]
        label = stats["run"]["workload"] if args.trace else stats["run"]["benchmark"]
        print(f"{receipt['id']}  done  {label}  IPC {ipc:.4f}")
        if args.out is not None:
            print(f"  wrote {write_stats_json(stats, args.out)}")
    return 1 if failures else 0


def _cmd_jobs(args) -> int:
    from repro.serve.client import ServeClient

    client = ServeClient(args.server, timeout=args.timeout)
    if args.id is not None:
        document = client.job(args.id)
        document.pop("result", None)
        for key in ("id", "kind", "status", "fingerprint", "coalesced_into", "error"):
            print(f"{key + ':':<16}{document.get(key)}")
        return 0
    jobs = client.jobs(status=args.status)
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        label = job["spec"].get("benchmark") or job["spec"].get("trace") or job["kind"]
        coalesced = f" -> {job['coalesced_into']}" if job.get("coalesced_into") else ""
        print(f"{job['id']}  {job['status']:<9} {label}{coalesced}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Half-Price Architecture reproduction CLI"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="show benchmarks/kernels/experiments")

    run_parser = subparsers.add_parser("run", help="simulate a synthetic benchmark")
    run_parser.add_argument("benchmark", choices=SPEC_BENCHMARKS)
    run_parser.add_argument("--insts", type=int, default=15_000)
    run_parser.add_argument("--warmup", type=int, default=20_000)
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument(
        "--profile", action="store_true",
        help="wall-time the pipeline stages and print the breakdown",
    )
    run_parser.add_argument(
        "--backend", default=None, choices=BACKENDS,
        help="cycle-loop backend (default: REPRO_BACKEND, then the config)",
    )
    _add_machine_arguments(run_parser)

    kernel_parser = subparsers.add_parser("kernel", help="run an assembly kernel")
    kernel_parser.add_argument("name", choices=sorted(KERNELS))
    kernel_parser.add_argument(
        "--pipetrace", type=int, default=0, metavar="N",
        help="render the pipeline timeline of the first N instructions",
    )
    _add_machine_arguments(kernel_parser)

    experiment_parser = subparsers.add_parser(
        "experiment", help="regenerate paper tables/figures"
    )
    experiment_parser.add_argument(
        "ids", nargs="+",
        help="experiment ids (see 'repro list'), or 'all'",
    )
    experiment_parser.add_argument("--insts", type=int, default=None)
    experiment_parser.add_argument("--warmup", type=int, default=None)
    experiment_parser.add_argument("--benchmarks", default=None)
    experiment_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs (default: REPRO_JOBS/CPUs)",
    )

    prefetch_parser = subparsers.add_parser(
        "prefetch", help="warm the on-disk result cache with base-machine runs"
    )
    prefetch_parser.add_argument("--insts", type=int, default=None)
    prefetch_parser.add_argument("--warmup", type=int, default=None)
    prefetch_parser.add_argument("--benchmarks", default=None)
    prefetch_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs (default: REPRO_JOBS/CPUs)",
    )

    export_parser = subparsers.add_parser(
        "export-stats",
        help="write schema-versioned stats JSON, one file per simulation",
    )
    export_parser.add_argument(
        "benchmarks", nargs="+",
        help="benchmark names (see 'repro list'), or 'all'",
    )
    export_parser.add_argument("--insts", type=int, default=None)
    export_parser.add_argument("--warmup", type=int, default=None)
    export_parser.add_argument("--seed", type=int, default=None)
    export_parser.add_argument(
        "--out", default="results/stats", metavar="DIR",
        help="output directory for *.stats.json (default: results/stats)",
    )
    export_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs (default: REPRO_JOBS/CPUs)",
    )
    export_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache (always simulate)",
    )
    _add_machine_arguments(export_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="tracefile capture/replay and pipeline-trace rendering"
    )
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)

    trace_capture = trace_subparsers.add_parser(
        "capture", help="capture a kernel/benchmark execution to a tracefile"
    )
    trace_capture.add_argument(
        "source", nargs="?", default=None,
        help="kernel or benchmark name (omit with --corpus)",
    )
    trace_capture.add_argument(
        "--corpus", default=None, metavar="NAME",
        help="(re)capture a named corpus entry into workloads/traces/",
    )
    trace_capture.add_argument(
        "--out", default=None, metavar="FILE",
        help="output tracefile (default <source>.hpt)",
    )
    trace_capture.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="stop after N instructions (required for synthetic benchmarks)",
    )
    trace_capture.add_argument(
        "--arg", action="append", default=[], metavar="NAME=INT",
        help="kernel parameter, e.g. --arg n=16000 (repeatable)",
    )
    trace_capture.add_argument("--seed", type=int, default=42)
    trace_capture.add_argument(
        "--name", default=None, help="trace name recorded in the header"
    )

    trace_info = trace_subparsers.add_parser(
        "info", help="print a tracefile's self-describing header"
    )
    trace_info.add_argument("trace", help="corpus trace name or tracefile path")

    trace_run = trace_subparsers.add_parser(
        "run", help="simulate a tracefile (full, or SimPoint-sampled)"
    )
    trace_run.add_argument("trace", help="corpus trace name or tracefile path")
    trace_run.add_argument(
        "--insts", type=int, default=None,
        help="instruction budget (default: the whole trace)",
    )
    trace_run.add_argument("--warmup", type=int, default=0)
    trace_run.add_argument(
        "--sampled", action="store_true",
        help="SimPoint-style sampled simulation (docs/TRACES.md)",
    )
    trace_run.add_argument("--interval", type=int, default=10_000)
    trace_run.add_argument("--k", type=int, default=8)
    trace_run.add_argument("--sample-warmup", type=int, default=2_000)
    trace_run.add_argument("--dims", type=int, default=32)
    trace_run.add_argument("--sample-seed", type=int, default=1)
    trace_run.add_argument(
        "--no-warm-caches", action="store_true",
        help="skip cache-state reconstruction before sample windows",
    )
    trace_run.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="with --sampled: write the sampling report JSON here",
    )
    trace_run.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache (always simulate)",
    )
    trace_run.add_argument(
        "--backend", default=None, choices=BACKENDS,
        help="cycle-loop backend (default: REPRO_BACKEND, then the config)",
    )
    _add_machine_arguments(trace_run)

    trace_render = trace_subparsers.add_parser(
        "render", help="render a pipeline trace (ASCII or Chrome trace JSON)"
    )
    trace_render.add_argument("name", help="kernel or benchmark name")
    trace_render.add_argument(
        "--format", choices=("ascii", "chrome"), default="ascii"
    )
    trace_render.add_argument("--insts", type=int, default=500)
    trace_render.add_argument("--seed", type=int, default=42)
    trace_render.add_argument(
        "--first", type=int, default=0, metavar="SEQ",
        help="first dynamic instruction to render",
    )
    trace_render.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="instructions to render (ascii default 16, chrome default all)",
    )
    trace_render.add_argument(
        "--out", default=None, metavar="FILE",
        help="chrome format: output path (default <name>.trace.json)",
    )
    _add_machine_arguments(trace_render)

    subparsers.add_parser(
        "workloads",
        help="list kernels, synthetic profiles and the trace corpus",
    )

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing vs the functional emulator, exit 1 on failure",
    )
    fuzz_parser.add_argument(
        "--programs", type=int, default=200, metavar="N",
        help="random programs to generate and check (default 200)",
    )
    fuzz_parser.add_argument("--seed", type=int, default=0)
    fuzz_parser.add_argument(
        "--gen-seed", type=int, default=None, metavar="N",
        help="check exactly one program, from this raw generator seed "
        "(the seed printed with a failure)",
    )
    fuzz_parser.add_argument(
        "--budget", type=int, default=50_000, metavar="STEPS",
        help="functional-emulator step budget per program (default 50000)",
    )
    fuzz_parser.add_argument(
        "--configs", default="all", metavar="NAMES",
        help="comma-separated matrix filter, e.g. 'tag-elim' or "
        "'base+nonsel,seq-wakeup+sel' (default: all 8 configurations)",
    )
    fuzz_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write shrunken repro files for failures into DIR",
    )
    fuzz_parser.add_argument(
        "--replay", default=None, metavar="PATH",
        help="replay a repro file, or every *.hpa case in a directory, "
        "instead of generating programs",
    )
    fuzz_parser.add_argument(
        "--cross-backend", action="store_true",
        help="run every program on all compared cycle-loop backends and diff "
        "the serialized stats byte-for-byte (the vector/native parity gate)",
    )
    fuzz_parser.add_argument(
        "--backends", default=None, metavar="NAMES",
        help="comma-separated backend set for --cross-backend, e.g. "
        "'python,vector,native'; every named backend must be installed "
        "(default: every installed backend)",
    )
    fuzz_parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip test-case minimization of failures",
    )
    fuzz_parser.add_argument(
        "--max-failures", type=int, default=5, metavar="N",
        help="stop fuzzing after N failures (default 5)",
    )
    fuzz_parser.add_argument("--quiet", action="store_true")

    report_parser = subparsers.add_parser(
        "report",
        help="regression scorecard: diff two stats-JSON trees, exit 1 on drift",
    )
    report_parser.add_argument(
        "--baseline", required=True, metavar="DIR",
        help="committed baseline tree (e.g. results/ci_baseline)",
    )
    report_parser.add_argument(
        "--current", default="results/stats", metavar="DIR",
        help="freshly exported tree to judge (default: results/stats)",
    )
    report_parser.add_argument(
        "--tolerance", type=float, default=None, metavar="FRAC",
        help="default relative drift tolerance (default 0.01)",
    )
    report_parser.add_argument(
        "--ipc-tolerance", type=float, default=None, metavar="FRAC",
        help="tolerance for derived.ipc (default 0.005)",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the HTTP job server (docs/SERVING.md)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8765,
        help="listen port (0 picks a free port, printed at startup)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent job executions (default 2)",
    )
    serve_parser.add_argument(
        "--queue-size", type=int, default=256, metavar="N",
        help="queued-job bound before 429 backpressure (default 256)",
    )
    serve_parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="max queued jobs one worker drains into a single batched "
        "execution (default REPRO_POOL_BATCH, else 8)",
    )
    serve_parser.add_argument(
        "--spool", default=None, metavar="DIR",
        help="persist pending jobs here; a restart resumes them",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache (always simulate)",
    )
    serve_parser.add_argument(
        "--router", action="store_true",
        help="run as the cluster router: shard jobs onto --worker-url workers "
        "by cache fingerprint (docs/SERVING.md, Cluster mode)",
    )
    serve_parser.add_argument(
        "--worker", action="store_true",
        help="run as a cluster worker (a job server meant to sit behind a "
        "router; give it --name and a shared --store)",
    )
    serve_parser.add_argument(
        "--worker-url", action="append", default=[], metavar="URL",
        help="router mode: a worker base URL (repeatable)",
    )
    serve_parser.add_argument(
        "--name", default=None, metavar="NAME",
        help="worker identity reported on /healthz",
    )
    serve_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="shared result-store directory (all cluster workers must agree)",
    )
    serve_parser.add_argument(
        "--steal-watermark", type=int, default=8, metavar="N",
        help="router mode: queue depth above which a hot worker's jobs are "
        "stolen by the least-loaded worker (default 8)",
    )

    submit_parser = subparsers.add_parser(
        "submit", help="submit runs to a serve endpoint"
    )
    submit_parser.add_argument(
        "benchmarks", nargs="+",
        help="benchmark names (see 'repro list'), or 'all'; with --trace, "
        "corpus trace names or tracefile paths ('all' = committed corpus)",
    )
    submit_parser.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL"
    )
    submit_parser.add_argument(
        "--trace", action="store_true",
        help="submit tracefile jobs instead of benchmark runs (docs/TRACES.md)",
    )
    submit_parser.add_argument(
        "--sampled", action="store_true",
        help="with --trace: SimPoint-sampled simulation instead of a full run",
    )
    submit_parser.add_argument(
        "--insts", type=int, default=None,
        help="instruction budget (default: 15000; --trace: the whole trace)",
    )
    submit_parser.add_argument(
        "--warmup", type=int, default=None,
        help="warmup instructions (default: 20000; --trace: 0)",
    )
    submit_parser.add_argument("--seed", type=int, default=42)
    submit_parser.add_argument("--shadow", action="store_true")
    submit_parser.add_argument(
        "--backend", default=None, choices=BACKENDS,
        help="cycle-loop backend the jobs should run on (default: server's choice)",
    )
    submit_parser.add_argument(
        "--priority", type=int, default=0,
        help="higher runs earlier (default 0)",
    )
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="block until every job finishes; exit 1 if any failed",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="per-request / per-job wait timeout (default 600)",
    )
    submit_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="with --wait: write each result as stats JSON under DIR",
    )
    _add_machine_arguments(submit_parser)

    jobs_parser = subparsers.add_parser(
        "jobs", help="list or inspect jobs on a serve endpoint"
    )
    jobs_parser.add_argument("id", nargs="?", default=None, help="job id to inspect")
    jobs_parser.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL"
    )
    jobs_parser.add_argument(
        "--status", default=None,
        help="filter the listing (queued/running/done/failed/cancelled)",
    )
    jobs_parser.add_argument("--timeout", type=float, default=30.0, metavar="S")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "kernel": _cmd_kernel,
        "experiment": _cmd_experiment,
        "prefetch": _cmd_prefetch,
        "export-stats": _cmd_export_stats,
        "trace": _cmd_trace,
        "workloads": _cmd_workloads,
        "report": _cmd_report,
        "fuzz": _cmd_fuzz,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
