"""Struct-of-arrays cycle-loop engine (the ``vector`` backend).

This is a cycle-exact transliteration of
:class:`repro.pipeline.processor.Processor` with the per-entry objects
(IQEntry / Operand / TagRecord / EventRing items) replaced by flat,
preallocated parallel arrays indexed by instruction tag, plus an
event-driven fast-forward over cycles that provably do nothing.

Representation
--------------
Every dynamic instruction gets a dense tag at ingest (== ``op.seq``, which
is also what the python backend uses as its tag).  Per-tag state lives in
parallel flat lists; the two register operands of tag ``t`` live at flat
indices ``2*t`` and ``2*t+1`` (operand index == the paper's LEFT/RIGHT
side).  The scoreboard's consumer lists encode
``(consumer_tag << 2) | (op_index + 1)`` in one int (op_index -1 is the
LSQ memory dependence).  The four event calendars are inlined power-of-two
rings identical in shape to :class:`repro.core.event_ring.EventRing`, but
gated by a single min-heap of ``(cycle << 2) | ring`` keys: one integer
comparison per cycle replaces four bucket walks, heap order reproduces the
reference kill → slow-wakeup → broadcast → completion phase order, and the
heap top doubles as an O(1) next-event bound for the fast-forward.

Only control instructions get completion *events* (their resolution has to
fire on its exact cycle to unblock fetch); everything else completes
lazily — the completion cycle is stored per tag and compared at the few
points that care (commit head, replay-squash eligibility, the fast-forward
bound), which removes the majority of the event traffic.

Feeds that expose a materialized ``ops`` list (see
:class:`repro.workloads.feed.ReplayFeed`) are decoded before the loop
starts: static per-instruction facts (pc, class, sources, dest, memory
address) become flat columns shared by all phases and cached on the feed,
and the config-dependent per-tag tables (select rank, latency, FU pool)
are stamped out with vectorized numpy gathers over the opclass column.
Generator feeds build the same columns op-by-op at fetch time.

The IL1/DL1/L2 lookups on the per-instruction path are inlined down to the
per-set ``OrderedDict`` operations of :class:`repro.memory.cache.Cache`
(same structures, same true-LRU updates, same hit/miss/eviction counts —
the counters accumulate in locals and flush into the real ``CacheStats``
objects at run exit), replacing three method calls plus an AccessResult
allocation per access with a few dict operations.

Parity contract
---------------
Simulated timing and every statistic are bit-identical to the python
backend: the engine reuses the *same* BranchUnit, last-arrival predictors
and SimStats/shadow-bank objects (and the Cache set structures) and drives
them in the same order, and ``repro fuzz --cross-backend`` diffs
byte-deterministic stats exports of both backends over generated programs
to keep it that way.  Anything observable that this engine cannot
reproduce exactly (lockstep checking, schedule traces, profiling, the
dependence matrix) is refused up front by
:func:`repro.fastsim.make_processor`.

Fast-forward
------------
A cycle is dead when the ready set is empty, the ROB head is not
committable, no frontend instruction arrives, and fetch cannot run.
Everything that can change that is either already scheduled in the event
heap or has a known resume cycle (the head's lazy completion, frontend
head arrival, fetch stall expiry, the commit watchdog), so the engine
jumps straight to the earliest of those cycles and credits the skipped
cycles to ``stats.cycles`` — on the reference workloads roughly two thirds
of all cycles are dead, mostly under L2/memory misses.

Why flat Python lists and not numpy arrays for the machine state?  Scalar
indexing — which is what a cycle-accurate scheduler with cross-cycle
dependences actually does — costs several times more on a numpy array than
on a list (every access boxes a fresh Python int); numpy earns its keep on
bulk work only: the decode-column gathers and growth-chunk stamping above.
docs/PERFORMANCE.md has the measurements.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from time import perf_counter

import numpy as np

from repro.core.iq import PRIORITY_CLASSES
from repro.core.last_arrival import (
    DesignComparisonBank,
    LastArrivalPredictor,
    OperandSide,
    ShadowPredictorBank,
    StaticLastArrival,
)
from repro.errors import ConfigurationError, SimulationError
from repro.frontend.branch_unit import BranchUnit
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import (
    BypassModel,
    MachineConfig,
    RecoveryModel,
    RegFileModel,
    RenameModel,
    SchedulerModel,
)
from repro.pipeline.fu import is_non_pipelined, pool_index
from repro.pipeline.processor import _WATCHDOG_CYCLES, SimulationResult
from repro.pipeline.stats import SimStats
from repro.workloads.feed import decode_columns

#: OpClass.idx -> select rank / FU pool / non-pipelined flag (dense tables;
#: -1 pool for classes that never issue, e.g. NOP).
_RANK_BY_IDX = tuple(0 if c in PRIORITY_CLASSES else 1 for c in OpClass)
_POOL_BY_IDX = tuple(
    -1 if pool_index(c) is None else pool_index(c) for c in OpClass
)
_NONPIPE_BY_IDX = tuple(is_non_pipelined(c) for c in OpClass)
#: numpy mirrors for the bulk per-tag table gathers on decoded feeds
_RANK_NP = np.array(_RANK_BY_IDX, dtype=np.int64)
_POOL_NP = np.array(_POOL_BY_IDX, dtype=np.int64)
_NONPIPE_NP = np.array([int(x) for x in _NONPIPE_BY_IDX], dtype=np.int64)

#: Operand-index -> OperandSide member.  The predictors and order stats use
#: ``is`` identity on OperandSide, so raw ints must never be passed there.
_SIDES = (OperandSide.LEFT, OperandSide.RIGHT)

#: Select keys order by (priority rank, tag); tags stay far below 2^32.
_KEY_SHIFT = 32
_TAG_MASK = (1 << _KEY_SHIFT) - 1

#: "Never" sentinel for fetch-resume / rename-token bookkeeping.
_NEVER = 1 << 60

#: Array growth quantum for generator (non-decoded) feeds.  Template
#: chunks are stamped once at import and extended into the live lists —
#: bulk work is the one thing numpy is faster at than CPython lists.
_CHUNK = 2048
_C_ZERO = np.zeros(_CHUNK, dtype=np.int64).tolist()
_C_ONE = np.ones(_CHUNK, dtype=np.int64).tolist()
_C_NEG1 = np.full(_CHUNK, -1, dtype=np.int64).tolist()
_C_ZERO2 = np.zeros(2 * _CHUNK, dtype=np.int64).tolist()
_C_NEG1_2 = np.full(2 * _CHUNK, -1, dtype=np.int64).tolist()
_C_NONE = [None] * _CHUNK


class VectorProcessor:
    """Struct-of-arrays twin of :class:`Processor` (one run per instance)."""

    backend_name = "vector"

    def __init__(
        self,
        feed,
        config: MachineConfig,
        shadow_sizes: tuple[int, ...] | None = None,
    ):
        if config.use_dependence_matrix:
            raise ConfigurationError(
                "backend 'vector' does not support the dependence-matrix "
                "cross-check; use the python backend for this run"
            )
        self.config = config
        self.feed = feed
        self.stats = SimStats()
        if shadow_sizes:
            self.stats.shadow_bank = ShadowPredictorBank(shadow_sizes)
            self.stats.design_bank = DesignComparisonBank()
        # Shared, stateful components reused verbatim from the python
        # backend: identical call order keeps their state bit-identical.
        if config.predictor_entries is None:
            self.predictor: LastArrivalPredictor | StaticLastArrival = (
                StaticLastArrival()
            )
        else:
            self.predictor = LastArrivalPredictor(config.predictor_entries)
        self.branch_unit = BranchUnit()
        self.memory = MemoryHierarchy(config.mem)
        self.now = 0
        self.wall_seconds = 0.0
        self.matrix_mismatches = 0
        self.trace = None
        self.profiler = None
        self.checker = None
        self._total_committed = 0
        # Lifetime tallies mirroring Selector / RegisterFilePolicy.
        self._sel_slots_taken = 0
        self._sel_bubbles = 0
        self._rf_rejections = 0
        self._rf_seq_decisions = 0
        self._ran = False
        # Per-class latency table for this config's Latencies (0 for
        # classes that never issue).
        lat = []
        for op_class in OpClass:
            try:
                lat.append(config.lat.for_class(op_class))
            except ConfigurationError:
                lat.append(0)
        self._lat_by_idx = tuple(lat)

    # ==================================================================
    def run(self, max_insts: int, warmup: int = 0) -> SimulationResult:
        """Simulate until *max_insts* instructions commit after warmup."""
        if self._ran:
            raise SimulationError("VectorProcessor instances are single-run")
        self._ran = True
        t_start = perf_counter()

        config = self.config
        stats = self.stats
        memory = self.memory
        predictor = self.predictor
        predictor_update = predictor.update
        record_wakeup_pair = stats.record_wakeup_pair
        branch_predict = self.branch_unit.predict
        branch_resolve = self.branch_unit.resolve
        pc_address = getattr(self.feed, "pc_address", None)
        design_bank = stats.design_bank
        sides = _SIDES
        lat_by_idx = self._lat_by_idx
        rank_by_idx = _RANK_BY_IDX
        pool_by_idx = _POOL_BY_IDX
        nonpipe_by_idx = _NONPIPE_BY_IDX
        # The hot predict path inlines the bimodal table lookup; the static
        # policy is expressed as a one-entry table that always reads RIGHT.
        if type(predictor) is LastArrivalPredictor:
            p_tab = predictor._table
            p_mask = predictor._mask
            p_mid = predictor._mid
        else:
            p_tab, p_mask, p_mid = [1], 0, 0

        # ---- config scalars ------------------------------------------
        width = config.width
        ruu_size = config.ruu_size
        lsq_size = config.lsq_size
        front_depth = config.front_depth
        exec_offset = config.exec_offset
        agen_lat = config.lat.agen
        assumed = config.assumed_load_latency
        spec_window = config.load_spec_window
        detect = config.tag_elim_detect_delay
        seq_mode = config.scheduler is SchedulerModel.SEQ_WAKEUP
        tag_elim_mode = config.scheduler is SchedulerModel.TAG_ELIM
        sequential_rf = config.regfile is RegFileModel.SEQUENTIAL
        crossbar_rf = config.regfile is RegFileModel.CROSSBAR
        fast_now_only = seq_mode and sequential_rf
        non_selective = config.recovery is RecoveryModel.NON_SELECTIVE
        half_rename = config.rename is RenameModel.HALF_PORTS
        half_bypass = config.bypass is BypassModel.HALF
        fu_counts = [
            config.fu.int_alu,
            config.fu.fp_alu,
            config.fu.int_mult,
            config.fu.fp_mult,
            config.fu.mem_ports,
        ]

        # ---- inlined cache state (same structures Cache.access uses) -
        mem_cfg = config.mem
        il1 = memory.il1
        dl1 = memory.dl1
        l2 = memory.l2
        il1_sets = il1._sets
        il1_shift = il1._line_shift
        il1_mask = il1._set_mask
        il1_assoc = il1.config.associativity
        dl1_sets = dl1._sets
        dl1_shift = dl1._line_shift
        dl1_mask = dl1._set_mask
        dl1_assoc = dl1.config.associativity
        l2_sets = l2._sets
        l2_shift = l2._line_shift
        l2_mask = l2._set_mask
        l2_assoc = l2.config.associativity
        il1_lat = mem_cfg.il1_latency
        dl1_lat = mem_cfg.dl1_latency
        l2_lat = mem_cfg.l2_latency
        mem_lat = mem_cfg.memory_latency
        c_il1a = c_il1h = c_il1m = c_il1e = 0
        c_dl1a = c_dl1h = c_dl1m = c_dl1e = 0
        c_l2a = c_l2h = c_l2m = c_l2e = 0

        def flush_mem() -> None:
            nonlocal c_il1a, c_il1h, c_il1m, c_il1e
            nonlocal c_dl1a, c_dl1h, c_dl1m, c_dl1e
            nonlocal c_l2a, c_l2h, c_l2m, c_l2e
            cs = il1.stats
            cs.accesses += c_il1a
            cs.hits += c_il1h
            cs.misses += c_il1m
            cs.evictions += c_il1e
            cs = dl1.stats
            cs.accesses += c_dl1a
            cs.hits += c_dl1h
            cs.misses += c_dl1m
            cs.evictions += c_dl1e
            cs = l2.stats
            cs.accesses += c_l2a
            cs.hits += c_l2h
            cs.misses += c_l2m
            cs.evictions += c_l2e
            c_il1a = c_il1h = c_il1m = c_il1e = 0
            c_dl1a = c_dl1h = c_dl1m = c_dl1e = 0
            c_l2a = c_l2h = c_l2m = c_l2e = 0

        # ---- per-instruction decode columns --------------------------
        # Decoded feeds (a materialized ops list) get bulk columns and
        # config tables up front; generator feeds build the same columns
        # op-by-op at fetch time.
        feed_ops = getattr(self.feed, "ops", None)
        get_columns = getattr(self.feed, "columns", None)
        if type(feed_ops) is list:
            ops_l = feed_ops
            n_pre = len(ops_l)
            cols = get_columns() if callable(get_columns) else None
            if cols is None:
                cols = decode_columns(ops_l)
            pc_col = cols["pc"]
            ctrl_col = cols["ctrl"]
            load_col = cols["load"]
            store_col = cols["store"]
            nop_col = cols["nop"]
            dest_col = cols["dest"]
            deps_col = cols["deps"]
            addr_col = cols["addr"]
            ocls_np = cols.get("ocls_np")
            if ocls_np is None:
                ocls_np = np.array(cols["ocls"], dtype=np.int64)
                cols["ocls_np"] = ocls_np  # memoize with the decode cache
            rkey = (
                (np.take(_RANK_NP, ocls_np) << _KEY_SHIFT)
                | np.arange(n_pre, dtype=np.int64)
            ).tolist()
            latv = np.take(
                np.array(lat_by_idx, dtype=np.int64), ocls_np
            ).tolist()
            poolv = np.take(_POOL_NP, ocls_np).tolist()
            npipe = np.take(_NONPIPE_NP, ocls_np).tolist()
            cap = n_pre
        else:
            ops_l = []
            n_pre = 0
            pc_col = []
            ctrl_col = []
            load_col = []
            store_col = []
            nop_col = []
            dest_col = []
            deps_col = []
            addr_col = []
            rkey = []
            latv = []
            poolv = []
            npipe = []
            cap = 0

        # ---- per-tag mutable struct-of-arrays ------------------------
        st = [0] * cap            # 0 WAITING / 1 ISSUED / 2 COMPLETED
        epoch = [0] * cap
        elig = [0] * cap          # eligible_cycle
        inrd = [0] * cap          # in the ready set?
        issue_c = [-1] * cap      # issue_cycle
        replays_a = [0] * cap
        nops_a = [0] * cap        # number of register operands (0..2)
        rai_a = [0] * cap         # stat_ready_at_insert
        rec_a = [0] * cap         # stat_wakeup_recorded
        fastside_a = [1] * cap    # fast/predicted-last side (default RIGHT)
        rfcat = [0] * cap         # 0 none / 1 two_ready / 2 b2b / 3 non-b2b
        mdt = [-1] * cap          # mem_dep_tag
        mdr = [1] * cap           # mem_dep_ready
        fwd_a = [0] * cap         # LSQ-forwarded load
        fill_c = [-1] * cap       # mem_fill_cycle (-1 = not accessed yet)
        cmp_c = [-1] * cap        # lazy completion cycle
        cmp_ep = [0] * cap        # epoch the lazy completion belongs to
        # operand arrays, flat index i = 2*tag + op_index
        o_tag = [-1] * (2 * cap)  # producer tag (-1 = architectural)
        o_rdy = [0] * (2 * cap)
        o_rai = [0] * (2 * cap)   # ready_at_insert
        o_rc = [-1] * (2 * cap)   # ready_cycle
        o_arr = [-1] * (2 * cap)  # arrival_cycle (-1 = None)
        # scoreboard arrays
        sb_alive = [0] * cap
        sb_valid = [0] * cap
        sb_bc = [-1] * cap        # broadcast_cycle (-1 = None)
        cons: list = [None] * cap  # tag -> None | list of encoded consumers

        n_tags = 0

        def grow() -> None:
            nonlocal cap
            for lst in (st, epoch, elig, inrd, replays_a, nops_a, rai_a,
                        rec_a, rfcat, fwd_a, cmp_ep, sb_alive, sb_valid):
                lst.extend(_C_ZERO)
            for lst in (issue_c, mdt, fill_c, cmp_c, sb_bc):
                lst.extend(_C_NEG1)
            mdr.extend(_C_ONE)
            fastside_a.extend(_C_ONE)
            for lst in (o_rdy, o_rai):
                lst.extend(_C_ZERO2)
            for lst in (o_tag, o_rc, o_arr):
                lst.extend(_C_NEG1_2)
            cons.extend(_C_NONE)
            cap += _CHUNK

        # ---- event rings (same sizing as EventRing) ------------------
        horizon = (
            agen_lat
            + mem_cfg.dl1_latency
            + mem_cfg.l2_latency
            + mem_cfg.memory_latency
            + config.lat.worst_case
            + exec_offset
            + spec_window
            + detect
            + 8
        )
        ring_size = 1 << max(3, (max(1, horizon) - 1).bit_length())
        ring_mask = ring_size - 1
        k_buckets: list[list] = [[] for _ in range(ring_size)]
        sw_buckets: list[list] = [[] for _ in range(ring_size)]
        b_buckets: list[list] = [[] for _ in range(ring_size)]
        c_buckets: list[list] = [[] for _ in range(ring_size)]
        #: min-heap of (cycle << 2) | ring; one key per non-empty bucket
        ev_heap: list[int] = []

        # ---- machine state -------------------------------------------
        now = 0
        rename_tbl: dict[int, int | None] = {}
        ready: list[int] = []     # select keys of ready-set members
        fr_arr: deque = deque()   # frontend arrival cycles (program order)
        fr_tag: deque = deque()   # frontend tags, parallel to fr_arr
        predictions: dict[int, object] = {}
        rob_dq: deque = deque()
        lsq_dq: deque = deque()
        #: 8-byte-aligned line -> tag of the newest in-LSQ store to it;
        #: replaces the reference's LSQ scan (which finds exactly this)
        store_line: dict[int, int] = {}
        feed_iter = iter(self.feed) if n_pre == 0 else None
        feed_done = False
        pending_tag = -1          # fetched-but-stalled op (== _next_op)
        #: first cycle fetch may run again; _NEVER while the feed is
        #: drained or fetch waits on a mispredicted branch
        fetch_resume = 0
        fetch_blocked = -1        # tag of the mispredicted branch (-1 none)
        last_fetch_line = -1
        line_cache: dict[int, tuple[int, int]] = {}  # pc -> (line, address)
        line_cache_get = line_cache.get
        total_committed = 0
        last_commit = 0
        # select / FU / RF state, kept against absolute cycle numbers so
        # idle cycles touch none of it
        fu_cycle = -1             # cycle fu_issued/fu_busy were last reset
        fu_issued = [0, 0, 0, 0, 0]
        fu_busy: list[list[int]] = [[], [], [], [], []]
        bubble_cycle = -1         # cycle the pending select bubbles apply to
        bubble_n = 0
        sel_slots_taken = 0
        sel_bubbles = 0
        rf_rejections = 0
        rf_seq_decisions = 0

        # ---- stat accumulators (flushed into SimStats at window
        # boundaries and run exits; sub-objects like the wakeup-order
        # tracker and the shadow banks are updated live) ----------------
        s_cycles = s_fetched = s_dispatched = s_two_src = 0
        s_rai0 = s_rai1 = s_rai2 = 0
        s_committed = s_issued = s_branches = s_mispred = 0
        s_replayed = s_lmr = s_rename_stalls = 0
        s_seq_rf = s_dbl = s_seq_slow = s_te = 0
        s_rf_two = s_rf_b2b = s_rf_nb = 0
        s_simul = s_lap = s_lamp = 0

        def flush_stats() -> None:
            nonlocal s_cycles, s_fetched, s_dispatched, s_two_src
            nonlocal s_rai0, s_rai1, s_rai2
            nonlocal s_committed, s_issued, s_branches, s_mispred
            nonlocal s_replayed, s_lmr, s_rename_stalls
            nonlocal s_seq_rf, s_dbl, s_seq_slow, s_te
            nonlocal s_rf_two, s_rf_b2b, s_rf_nb
            nonlocal s_simul, s_lap, s_lamp
            stats.cycles += s_cycles
            stats.fetched += s_fetched
            stats.dispatched += s_dispatched
            stats.two_source_dispatched += s_two_src
            if s_rai0:
                stats.ready_at_insert[0] += s_rai0
            if s_rai1:
                stats.ready_at_insert[1] += s_rai1
            if s_rai2:
                stats.ready_at_insert[2] += s_rai2
            stats.committed += s_committed
            stats.issued += s_issued
            stats.branches += s_branches
            stats.branch_mispredicts += s_mispred
            stats.replayed += s_replayed
            stats.load_miss_replays += s_lmr
            stats.rename_port_stalls += s_rename_stalls
            stats.sequential_rf_accesses += s_seq_rf
            stats.double_bypass_delays += s_dbl
            stats.seq_wakeup_slow_initiations += s_seq_slow
            stats.tag_elim_misschedules += s_te
            stats.rf_two_ready += s_rf_two
            stats.rf_back_to_back += s_rf_b2b
            stats.rf_non_back_to_back += s_rf_nb
            stats.simultaneous_wakeups += s_simul
            stats.last_arrival_predictions += s_lap
            stats.last_arrival_mispredictions += s_lamp
            s_cycles = s_fetched = s_dispatched = s_two_src = 0
            s_rai0 = s_rai1 = s_rai2 = 0
            s_committed = s_issued = s_branches = s_mispred = 0
            s_replayed = s_lmr = s_rename_stalls = 0
            s_seq_rf = s_dbl = s_seq_slow = s_te = 0
            s_rf_two = s_rf_b2b = s_rf_nb = 0
            s_simul = s_lap = s_lamp = 0

        # ==============================================================
        # Closures for the recursive replay cascade and cold paths.
        # ==============================================================
        if tag_elim_mode:
            def entry_ready(t: int) -> bool:
                if not mdr[t]:
                    return False
                n = nops_a[t]
                if n != 2 or replays_a[t] > 0:
                    # post-misschedule: the scoreboard serves full readiness
                    if n == 0:
                        return True
                    b = t << 1
                    if not o_rdy[b]:
                        return False
                    return n == 1 or o_rdy[b + 1] == 1
                # speculative: only the connected comparator decides
                return o_rdy[(t << 1) + fastside_a[t]] == 1
        else:
            def entry_ready(t: int) -> bool:
                if not mdr[t]:
                    return False
                n = nops_a[t]
                if n == 0:
                    return True
                b = t << 1
                if not o_rdy[b]:
                    return False
                return n == 1 or o_rdy[b + 1] == 1

        def maybe_ready(t: int) -> None:
            if st[t] == 0 and not inrd[t] and mdr[t] and entry_ready(t):
                inrd[t] = 1
                ready.append(rkey[t])

        def invalidate_tag(tag: int) -> None:
            # Scoreboard.invalidate + the processor's consumer cascade.
            # "st == 1 and not lazily complete" is the reference's ISSUED
            # state: a lazily-completed consumer must never be squashed.
            if not sb_alive[tag]:
                return
            sb_valid[tag] = 0
            sb_bc[tag] = -1
            lst = cons[tag]
            if not lst:
                return
            for enc in lst:
                ct = enc >> 2
                j = (enc & 3) - 1
                if j < 0:
                    if mdt[ct] == tag and mdr[ct]:
                        mdr[ct] = 0
                        if st[ct] == 1 and (
                            cmp_ep[ct] != epoch[ct] or cmp_c[ct] > now
                        ):
                            squash(ct)
                    continue
                i = (ct << 1) + j
                if o_rdy[i] and o_tag[i] == tag:
                    o_rdy[i] = 0
                    o_rc[i] = -1
                    if st[ct] == 1 and (
                        cmp_ep[ct] != epoch[ct] or cmp_c[ct] > now
                    ):
                        squash(ct)
                    elif inrd[ct]:
                        ready.remove(rkey[ct])
                        inrd[ct] = 0

        def squash(t: int) -> None:
            nonlocal s_replayed
            s_replayed += 1
            # reset_for_replay: drop ready bits whose broadcast died
            st[t] = 0
            issue_c[t] = -1
            replays_a[t] += 1
            b = t << 1
            for j in range(nops_a[t]):
                i = b + j
                pt = o_tag[i]
                if o_rdy[i] and pt != -1 and sb_alive[pt] and not sb_valid[pt]:
                    o_rdy[i] = 0
                    o_rc[i] = -1
            epoch[t] += 1
            elig[t] = now + 1
            invalidate_tag(t)
            maybe_ready(t)

        def record_pair(t: int) -> None:
            # _maybe_record_wakeup_pair (callers pre-check rec_a/nops)
            nonlocal s_simul, s_lap, s_lamp
            pc = pc_col[t]
            b = t << 1
            n_rai = rai_a[t]
            if n_rai == 1:
                j = 1 if o_rai[b] else 0  # the operand pending at insert
                if o_arr[b + j] == -1:
                    return
                rec_a[t] = 1
                last_side = sides[j]
                s_lap += 1
                if fastside_a[t] != j:
                    s_lamp += 1
                if design_bank is not None:
                    design_bank.observe(pc, last_side)
                predictor_update(pc, last_side)
                return
            if n_rai != 0:
                return
            a0 = o_arr[b]
            a1 = o_arr[b + 1]
            if a0 == -1 or a1 == -1:
                return
            rec_a[t] = 1
            slack = a0 - a1
            if slack < 0:
                slack = -slack
            if slack == 0:
                last_side = None
                s_simul += 1
            else:
                j = 0 if a0 > a1 else 1
                last_side = sides[j]
            record_wakeup_pair(pc, slack, last_side)
            if design_bank is not None:
                design_bank.observe(pc, last_side)
            if last_side is not None:
                s_lap += 1
                if fastside_a[t] != j:
                    s_lamp += 1
                predictor_update(pc, last_side)

        def resolve_branch(t: int) -> None:
            nonlocal fetch_blocked, fetch_resume, last_fetch_line
            nonlocal s_branches, s_mispred
            prediction = predictions.pop(t, None)
            if prediction is None:
                return
            op = ops_l[t]
            s_branches += 1
            if branch_resolve(
                op.pc, op.opcode, prediction, op.taken, op.next_pc, op.pc + 1
            ):
                s_mispred += 1
            if fetch_blocked == t:
                # fetch stalls were <= now when the block was set, so the
                # reference's max(stalled, now + 1) is exactly now + 1
                fetch_blocked = -1
                fetch_resume = now + 1
                last_fetch_line = -1

        def process_kill(rt, kep, win_s, win_e, squash_root) -> None:
            nonlocal s_lmr
            if epoch[rt] != kep:
                return  # the root was itself squashed; this shadow is void
            if not squash_root:
                s_lmr += 1
            invalidate_tag(rt)
            if squash_root and st[rt] == 1 and (
                cmp_ep[rt] != epoch[rt] or cmp_c[rt] > now
            ):
                squash(rt)
            if win_s != -1:
                for ct in rob_dq:
                    if (
                        st[ct] == 1
                        and ct != rt
                        and win_s <= issue_c[ct] <= win_e
                        and (cmp_ep[ct] != epoch[ct] or cmp_c[ct] > now)
                    ):
                        squash(ct)

        # ==============================================================
        # Main loop.
        # ==============================================================
        measured_started = warmup == 0
        budget = max_insts + warmup
        while True:
            now += 1

            # ---- phase 1: event delivery -----------------------------
            # Heap keys are (cycle << 2) | ring with rings numbered in the
            # reference processing order (kills 0, slow wakeups 1,
            # broadcasts 2, completions 3), so draining the heap in order
            # reproduces _process_events exactly.
            ev_hi = (now << 2) | 3
            if ev_heap and ev_heap[0] <= ev_hi:
                idx = now & ring_mask
                while ev_heap and ev_heap[0] <= ev_hi:
                    ring = heappop(ev_heap) & 3
                    if ring == 2:
                        bucket = b_buckets[idx]
                        b_buckets[idx] = []
                        for pt, pep, _data_valid in bucket:
                            # _broadcast (inlined); dead or re-epoched
                            # producers fall out here
                            if epoch[pt] != pep or not sb_alive[pt]:
                                continue
                            sb_bc[pt] = now
                            sb_valid[pt] = 1
                            clist = cons[pt]
                            if not clist:
                                continue
                            for enc in clist:
                                ct = enc >> 2
                                j = (enc & 3) - 1
                                if j < 0:
                                    if mdt[ct] == pt and not mdr[ct]:
                                        mdr[ct] = 1
                                        if (
                                            st[ct] == 0
                                            and not inrd[ct]
                                            and entry_ready(ct)
                                        ):
                                            inrd[ct] = 1
                                            ready.append(rkey[ct])
                                    continue
                                i = (ct << 1) + j
                                if o_tag[i] != pt:
                                    continue
                                if o_arr[i] == -1:
                                    o_arr[i] = now
                                    if not rec_a[ct] and nops_a[ct] == 2:
                                        record_pair(ct)
                                if o_rdy[i]:
                                    continue
                                if (
                                    seq_mode
                                    and nops_a[ct] == 2
                                    and j != fastside_a[ct]
                                ):
                                    # slow-bus delivery, one cycle later
                                    c = now + 1
                                    swb = sw_buckets[c & ring_mask]
                                    if not swb:
                                        heappush(ev_heap, (c << 2) | 1)
                                    swb.append((ct, j, pt))
                                else:
                                    o_rdy[i] = 1
                                    o_rc[i] = now
                                    if (
                                        st[ct] == 0
                                        and not inrd[ct]
                                        and entry_ready(ct)
                                    ):
                                        inrd[ct] = 1
                                        ready.append(rkey[ct])
                    elif ring == 3:
                        # only control instructions get completion events;
                        # everything else completes lazily via cmp_c/cmp_ep
                        bucket = c_buckets[idx]
                        c_buckets[idx] = []
                        for t, ep in bucket:
                            if epoch[t] == ep and st[t] == 1:
                                st[t] = 2  # _complete
                                resolve_branch(t)
                    elif ring == 0:
                        bucket = k_buckets[idx]
                        k_buckets[idx] = []
                        for rt, kep, win_s, win_e, sq_root in bucket:
                            process_kill(rt, kep, win_s, win_e, sq_root)
                    else:
                        bucket = sw_buckets[idx]
                        sw_buckets[idx] = []
                        for ct, j, pt in bucket:
                            # _deliver_slow
                            i = (ct << 1) + j
                            if o_rdy[i] or o_tag[i] != pt:
                                continue
                            if sb_alive[pt] and not sb_valid[pt]:
                                continue  # invalidated in the meantime
                            o_rdy[i] = 1
                            o_rc[i] = now
                            if (
                                st[ct] == 0
                                and not inrd[ct]
                                and entry_ready(ct)
                            ):
                                inrd[ct] = 1
                                ready.append(rkey[ct])

            # ---- phase 2: wakeup/select (atomic) — issue -------------
            if ready:
                if fu_cycle != now:
                    # begin_cycle, deferred: pruning against "> now" at the
                    # first select of the cycle is equivalent to pruning
                    # every cycle
                    fu_cycle = now
                    fu_issued[0] = 0
                    fu_issued[1] = 0
                    fu_issued[2] = 0
                    fu_issued[3] = 0
                    fu_issued[4] = 0
                    for pi in range(5):
                        busy = fu_busy[pi]
                        if busy:
                            fu_busy[pi] = [c for c in busy if c > now]
                avail = width - (bubble_n if bubble_cycle == now else 0)
                rf_ports_used = 0
                for key in sorted(ready):
                    if avail <= 0:
                        break
                    t = key & _TAG_MASK
                    if st[t] != 0 or elig[t] > now:
                        continue
                    # entry_ready, inlined
                    n = nops_a[t]
                    b = t << 1
                    if not mdr[t]:
                        is_rdy = False
                    elif tag_elim_mode and n == 2 and replays_a[t] == 0:
                        is_rdy = o_rdy[b + fastside_a[t]] == 1
                    elif n == 0:
                        is_rdy = True
                    elif not o_rdy[b]:
                        is_rdy = False
                    else:
                        is_rdy = n == 1 or o_rdy[b + 1] == 1
                    if not is_rdy:
                        # stale ready-set entry (un-woken by a replay)
                        ready.remove(key)
                        inrd[t] = 0
                        continue
                    pool = poolv[t]
                    if fu_issued[pool] + len(fu_busy[pool]) >= fu_counts[pool]:
                        continue
                    if crossbar_rf:
                        needed = 0
                        for j in range(n):
                            i = b + j
                            if not (
                                o_rdy[i] and o_rc[i] == now and not o_rai[i]
                            ):
                                needed += 1
                        if rf_ports_used + needed > width:
                            rf_rejections += 1
                            continue
                        rf_ports_used += needed
                    seq_access = False
                    if sequential_rf and n >= 2:
                        has_now = False
                        for j in range(n):
                            if fast_now_only and j != fastside_a[t]:
                                continue  # nowR removed (combined machine)
                            i = b + j
                            if o_rdy[i] and o_rc[i] == now and not o_rai[i]:
                                has_now = True
                                break
                        if not has_now:
                            rf_seq_decisions += 1
                            seq_access = True
                    # take_slot + fu.issue
                    avail -= 1
                    sel_slots_taken += 1
                    if seq_access:
                        nb = now + 1
                        if bubble_cycle == nb:
                            bubble_n += 1
                        else:
                            bubble_cycle = nb
                            bubble_n = 1
                        sel_bubbles += 1
                    fu_issued[pool] += 1
                    if npipe[t]:
                        fu_busy[pool].append(now + latv[t])
                    # ---- _issue (inlined) ----
                    ready.remove(key)
                    inrd[t] = 0
                    st[t] = 1
                    issue_c[t] = now
                    ep = epoch[t] + 1
                    epoch[t] = ep
                    s_issued += 1
                    if n == 2:
                        # _record_issue_stats
                        r0 = o_rai[b]
                        r1 = o_rai[b + 1]
                        if r0 and r1:
                            rfcat[t] = 1
                        elif (
                            o_rdy[b] and o_rc[b] == now and not r0
                        ) or (
                            o_rdy[b + 1] and o_rc[b + 1] == now and not r1
                        ):
                            rfcat[t] = 2
                        else:
                            rfcat[t] = 3
                        if seq_mode:
                            i = b + 1 - fastside_a[t]  # the slow-bus side
                            if o_rc[i] == now and not o_rai[i]:
                                s_seq_slow += 1
                        if tag_elim_mode:
                            # verify_at_issue: the eliminated operand must
                            # really be ready per the scoreboard
                            i = b + 1 - fastside_a[t]
                            if not o_rai[i]:
                                pt = o_tag[i]
                                if not (
                                    o_rdy[i]
                                    and (
                                        pt == -1
                                        or not sb_alive[pt]
                                        or sb_valid[pt]
                                    )
                                ):
                                    s_te += 1
                                    kc = now + detect
                                    kb = k_buckets[kc & ring_mask]
                                    if not kb:
                                        heappush(ev_heap, kc << 2)
                                    kb.append((t, ep, now, kc - 1, True))
                    if load_col[t]:
                        # _issue_load
                        if fill_c[t] == -1:
                            if fwd_a[t]:
                                actual_mem = dl1_lat  # store queue data
                            else:
                                # inlined MemoryHierarchy.load
                                addr = addr_col[t]
                                line = addr >> dl1_shift
                                cset = dl1_sets[line & dl1_mask]
                                c_dl1a += 1
                                if line in cset:
                                    c_dl1h += 1
                                    cset.move_to_end(line)
                                    actual_mem = dl1_lat
                                else:
                                    c_dl1m += 1
                                    if len(cset) >= dl1_assoc:
                                        cset.popitem(last=False)
                                        c_dl1e += 1
                                    cset[line] = False
                                    l2line = addr >> l2_shift
                                    cset = l2_sets[l2line & l2_mask]
                                    c_l2a += 1
                                    if l2line in cset:
                                        c_l2h += 1
                                        cset.move_to_end(l2line)
                                        actual_mem = dl1_lat + l2_lat
                                    else:
                                        c_l2m += 1
                                        if len(cset) >= l2_assoc:
                                            cset.popitem(last=False)
                                            c_l2e += 1
                                        cset[l2line] = False
                                        actual_mem = (
                                            dl1_lat + l2_lat + mem_lat
                                        )
                            fill_c[t] = now + agen_lat + actual_mem
                        assumed_cycle = now + assumed
                        fill = fill_c[t]
                        if fill <= assumed_cycle:
                            # data arrives within the assumed-hit schedule
                            bb = b_buckets[assumed_cycle & ring_mask]
                            if not bb:
                                heappush(ev_heap, (assumed_cycle << 2) | 2)
                            bb.append((t, ep, 1))
                            cmp_c[t] = assumed_cycle + exec_offset - agen_lat
                            cmp_ep[t] = ep
                            continue
                        # latency mispredict: speculative broadcast, kill
                        # after the resolution shadow, rebroadcast at fill
                        bb = b_buckets[assumed_cycle & ring_mask]
                        if not bb:
                            heappush(ev_heap, (assumed_cycle << 2) | 2)
                        bb.append((t, ep, 0))
                        kc = assumed_cycle + spec_window
                        kb = k_buckets[kc & ring_mask]
                        if not kb:
                            heappush(ev_heap, kc << 2)
                        if non_selective:
                            kb.append((t, ep, assumed_cycle, kc - 1, False))
                        else:
                            kb.append((t, ep, -1, 0, False))
                        rebroadcast = fill if fill > kc + 1 else kc + 1
                        if rebroadcast - now > ring_size:
                            raise SimulationError(
                                "event past the ring horizon"
                            )  # pragma: no cover - horizon covers all delays
                        bb = b_buckets[rebroadcast & ring_mask]
                        if not bb:
                            heappush(ev_heap, (rebroadcast << 2) | 2)
                        bb.append((t, ep, 1))
                        cc = fill + exec_offset - agen_lat
                        if cc < rebroadcast:
                            cc = rebroadcast
                        cmp_c[t] = cc
                        cmp_ep[t] = ep
                        continue
                    latency = latv[t]
                    if seq_access:
                        latency += 1
                        s_seq_rf += 1
                    if half_bypass and n == 2:
                        if (
                            o_rdy[b] and o_rc[b] == now and not o_rai[b]
                        ) and (
                            o_rdy[b + 1]
                            and o_rc[b + 1] == now
                            and not o_rai[b + 1]
                        ):
                            latency += 1
                            s_dbl += 1
                    bc = now + latency
                    if latency > ring_size:
                        raise SimulationError(
                            "event past the ring horizon"
                        )  # pragma: no cover - horizon covers all latencies
                    bb = b_buckets[bc & ring_mask]
                    if not bb:
                        heappush(ev_heap, (bc << 2) | 2)
                    bb.append((t, ep, 1))
                    if ctrl_col[t]:
                        cmp_ep[t] = -1  # completes via an exact-cycle event
                        cc = bc + exec_offset
                        cb = c_buckets[cc & ring_mask]
                        if not cb:
                            heappush(ev_heap, (cc << 2) | 3)
                        cb.append((t, ep))
                    else:
                        cmp_c[t] = bc + exec_offset
                        cmp_ep[t] = ep

            # ---- phase 3: dispatch -----------------------------------
            if fr_arr and fr_arr[0] <= now:
                dispatched = 0
                rename_tokens = width if half_rename else _NEVER
                while (
                    fr_arr and fr_arr[0] <= now and dispatched < width
                ):
                    t = fr_tag[0]
                    if len(rob_dq) >= ruu_size:
                        break
                    is_load = load_col[t]
                    is_mem = is_load or store_col[t]
                    if is_mem and len(lsq_dq) >= lsq_size:
                        break
                    nop = nop_col[t]
                    if half_rename and not nop:
                        needed = len(deps_col[t])
                        if needed < 1:
                            needed = 1
                        if needed > rename_tokens:
                            s_rename_stalls += 1
                            break
                        rename_tokens -= needed
                    fr_arr.popleft()
                    fr_tag.popleft()
                    # ---- _insert (inlined) ----
                    if nop:
                        st[t] = 2
                        rob_dq.append(t)
                        s_dispatched += 1
                    else:
                        b = t << 1
                        nsrc = 0
                        n_rai = 0
                        for arch in deps_col[t]:
                            # _rename_sources
                            i = b + nsrc
                            nsrc += 1
                            pt = rename_tbl.get(arch)
                            if pt is None or not sb_alive[pt]:
                                # architectural value: producer committed
                                o_rdy[i] = 1
                                o_rai[i] = 1
                                n_rai += 1
                            elif sb_valid[pt] and sb_bc[pt] != -1 and (
                                sb_bc[pt] <= now
                            ):
                                # ready at insert; the tag reference is
                                # kept for the invalidation cascade
                                o_tag[i] = pt
                                o_rdy[i] = 1
                                o_rai[i] = 1
                                n_rai += 1
                            else:
                                o_tag[i] = pt
                        nops_a[t] = nsrc
                        rai_a[t] = n_rai
                        sb_alive[t] = 1  # Scoreboard.allocate
                        for j in range(nsrc):
                            pt = o_tag[b + j]
                            if pt != -1 and sb_alive[pt]:
                                enc = (t << 2) | (j + 1)
                                clist = cons[pt]
                                if clist is None:
                                    cons[pt] = [enc]
                                else:
                                    clist.append(enc)
                        dest = dest_col[t]
                        if dest is not None:
                            rename_tbl[dest] = t
                        if nsrc == 2 and p_tab[pc_col[t] & p_mask] <= p_mid:
                            # assign_sides: predicted-last == fast side
                            # (arrays default to RIGHT, the static policy)
                            fastside_a[t] = 0
                        elig[t] = now + 1
                        rob_dq.append(t)
                        if is_mem:
                            if is_load:
                                # _setup_load_forwarding
                                best = store_line.get(addr_col[t] & -8, -1)
                                if best != -1:
                                    fwd_a[t] = 1
                                    if st[best] == 0:
                                        mdt[t] = best
                                        mdr[t] = 0
                                        enc = t << 2  # op_index -1
                                        clist = cons[best]
                                        if clist is None:
                                            cons[best] = [enc]
                                        else:
                                            clist.append(enc)
                            else:
                                store_line[addr_col[t] & -8] = t
                            lsq_dq.append(t)
                        # record_dispatch
                        s_dispatched += 1
                        if nsrc == 2:
                            s_two_src += 1
                            if n_rai == 0:
                                s_rai0 += 1
                            elif n_rai == 1:
                                s_rai1 += 1
                            else:
                                s_rai2 += 1
                        # _maybe_ready (fresh entry: WAITING, replays 0)
                        if mdr[t]:
                            if tag_elim_mode and nsrc == 2:
                                is_rdy = o_rdy[b + fastside_a[t]] == 1
                            elif nsrc == 0:
                                is_rdy = True
                            elif not o_rdy[b]:
                                is_rdy = False
                            else:
                                is_rdy = nsrc == 1 or o_rdy[b + 1] == 1
                            if is_rdy:
                                inrd[t] = 1
                                ready.append(rkey[t])
                    dispatched += 1

            # ---- phase 4: fetch --------------------------------------
            if now >= fetch_resume:
                arrive = now + front_depth
                fetched = 0
                while fetched < width:
                    t = pending_tag
                    if t == -1:
                        t = n_tags
                        if t < n_pre:
                            # decoded feed: ingest is free
                            n_tags = t + 1
                            pending_tag = t
                        elif n_pre:
                            feed_done = True
                            fetch_resume = _NEVER
                            break
                        else:
                            op = next(feed_iter, None)
                            if op is None:
                                feed_done = True
                                fetch_resume = _NEVER
                                break
                            n_tags = t + 1
                            if op.seq != t:
                                raise SimulationError(
                                    "vector backend needs dense program-"
                                    f"order seq numbers (got {op.seq}, "
                                    f"expected {t})"
                                )
                            if t >= cap:
                                grow()
                            ops_l.append(op)
                            oc = op.op_class.idx
                            pc_col.append(op.pc)
                            ctrl_col.append(1 if op.is_control else 0)
                            load_col.append(1 if op.is_load else 0)
                            store_col.append(1 if op.is_store else 0)
                            nop_col.append(1 if op.is_eliminated_nop else 0)
                            dest_col.append(op.dest)
                            deps_col.append(op.sched_deps)
                            addr_col.append(op.mem_addr)
                            rkey.append((rank_by_idx[oc] << _KEY_SHIFT) | t)
                            latv.append(lat_by_idx[oc])
                            poolv.append(pool_by_idx[oc])
                            npipe.append(1 if nonpipe_by_idx[oc] else 0)
                            pending_tag = t
                    pc = pc_col[t]
                    cached = line_cache_get(pc)
                    if cached is None:
                        address = (
                            pc_address(pc) if pc_address is not None
                            else pc * 4
                        )
                        line = address >> il1_shift
                        line_cache[pc] = (line, address)
                    else:
                        line, address = cached
                    if line != last_fetch_line:
                        # inlined MemoryHierarchy.fetch
                        last_fetch_line = line
                        cset = il1_sets[line & il1_mask]
                        c_il1a += 1
                        if line in cset:
                            c_il1h += 1
                            cset.move_to_end(line)
                        else:
                            c_il1m += 1
                            if len(cset) >= il1_assoc:
                                cset.popitem(last=False)
                                c_il1e += 1
                            cset[line] = False
                            l2line = address >> l2_shift
                            cset = l2_sets[l2line & l2_mask]
                            c_l2a += 1
                            if l2line in cset:
                                c_l2h += 1
                                cset.move_to_end(l2line)
                                miss_lat = il1_lat + l2_lat
                            else:
                                c_l2m += 1
                                if len(cset) >= l2_assoc:
                                    cset.popitem(last=False)
                                    c_l2e += 1
                                cset[l2line] = False
                                miss_lat = il1_lat + l2_lat + mem_lat
                            fetch_resume = now + miss_lat
                            break
                    pending_tag = -1
                    s_fetched += 1
                    fetched += 1
                    fr_arr.append(arrive)
                    fr_tag.append(t)
                    if ctrl_col[t]:
                        # _fetch_control
                        op = ops_l[t]
                        prediction = branch_predict(
                            pc, op.opcode, op.static_target
                        )
                        predictions[t] = prediction
                        if prediction.next_pc(pc + 1) != op.next_pc:
                            # mispredict: stall until the branch resolves
                            fetch_blocked = t
                            fetch_resume = _NEVER
                            break
                        if prediction.predicted_taken:
                            break  # stop at the first taken branch

            # ---- phase 5: commit -------------------------------------
            if rob_dq:
                committed_n = 0
                while committed_n < width and rob_dq:
                    t = rob_dq[0]
                    hs = st[t]
                    if hs != 2 and not (
                        hs == 1
                        and cmp_ep[t] == epoch[t]
                        and cmp_c[t] <= now
                    ):
                        break
                    rob_dq.popleft()
                    if store_col[t]:
                        # inlined MemoryHierarchy.store (write-allocate);
                        # LSQ entries leave in program order, so the head
                        # is always the committing op
                        lsq_dq.popleft()
                        addr = addr_col[t]
                        line8 = addr & -8
                        if store_line.get(line8) == t:
                            del store_line[line8]
                        line = addr >> dl1_shift
                        cset = dl1_sets[line & dl1_mask]
                        c_dl1a += 1
                        if line in cset:
                            c_dl1h += 1
                            cset.move_to_end(line)
                            cset[line] = True
                        else:
                            c_dl1m += 1
                            if len(cset) >= dl1_assoc:
                                cset.popitem(last=False)
                                c_dl1e += 1
                            cset[line] = True
                            l2line = addr >> l2_shift
                            cset = l2_sets[l2line & l2_mask]
                            c_l2a += 1
                            if l2line in cset:
                                c_l2h += 1
                                cset.move_to_end(l2line)
                                cset[l2line] = True
                            else:
                                c_l2m += 1
                                if len(cset) >= l2_assoc:
                                    cset.popitem(last=False)
                                    c_l2e += 1
                                cset[l2line] = True
                    elif load_col[t]:
                        lsq_dq.popleft()
                    dest = dest_col[t]
                    if dest is not None and rename_tbl.get(dest) == t:
                        rename_tbl[dest] = None
                    sb_alive[t] = 0  # Scoreboard.free
                    cons[t] = None
                    rc = rfcat[t]
                    if rc:
                        if rc == 1:
                            s_rf_two += 1
                        elif rc == 2:
                            s_rf_b2b += 1
                        else:
                            s_rf_nb += 1
                    s_committed += 1
                    total_committed += 1
                    last_commit = now
                    committed_n += 1

            # ---- bookkeeping and loop exits --------------------------
            s_cycles += 1
            if not measured_started and total_committed >= warmup:
                flush_stats()
                stats.reset_window()
                measured_started = True
            if total_committed >= budget:
                break
            if feed_done and not fr_arr and not rob_dq:
                break
            if now - last_commit > _WATCHDOG_CYCLES:
                flush_stats()
                flush_mem()
                self.now = now
                self._total_committed = total_committed
                if rob_dq:
                    head = rob_dq[0]
                    head_repr = f"tag {head} {ops_l[head].opcode}"
                else:
                    head_repr = "None"
                error = SimulationError(
                    f"no commit for {_WATCHDOG_CYCLES} cycles at cycle "
                    f"{now} (head={head_repr})"
                )
                error.cycle = now
                raise error

            # ---- fast-forward over provably dead cycles --------------
            # Dead: nothing ready, ROB head not committable, no frontend
            # arrival, fetch unable to run.  Every way out of that state
            # is in the event heap or has a known cycle below.
            if (
                not ready
                and (not rob_dq or st[rob_dq[0]] != 2)
                and (not fr_arr or fr_arr[0] > now + 1)
                and fetch_resume > now + 1
            ):
                target = last_commit + _WATCHDOG_CYCLES + 1
                if rob_dq:
                    h = rob_dq[0]
                    # a lazily-completing head bounds the jump (its
                    # completion is not in the event heap); a cmp_c that
                    # is already due keeps target <= now+1, i.e. no skip
                    if st[h] == 1 and cmp_ep[h] == epoch[h]:
                        c = cmp_c[h]
                        if c < target:
                            target = c
                if fr_arr:
                    c = fr_arr[0]
                    if c < target:
                        target = c
                if fetch_resume < target:
                    target = fetch_resume
                if ev_heap:
                    c = ev_heap[0] >> 2
                    if c < target:
                        target = c
                if target > now + 1:
                    s_cycles += target - now - 1
                    now = target - 1
                    # select bubbles and FU begin-cycle bookkeeping are
                    # keyed on absolute cycles, so skipping needs no reset

        # ==============================================================
        flush_stats()
        flush_mem()
        self.now = now
        self._total_committed = total_committed
        self._sel_slots_taken = sel_slots_taken
        self._sel_bubbles = sel_bubbles
        self._rf_rejections = rf_rejections
        self._rf_seq_decisions = rf_seq_decisions
        self.wall_seconds = perf_counter() - t_start
        return SimulationResult(
            config_name=config.name,
            workload_name=getattr(self.feed, "name", "workload"),
            stats=stats,
            total_committed=total_committed,
            total_cycles=now,
        )

    # ==================================================================
    def publish_metrics(self, registry) -> None:
        """Publish finished counters, mirroring Processor.publish_metrics."""
        self.stats.publish_metrics(registry)
        registry.counter("select.slots_taken").set(self._sel_slots_taken)
        registry.counter("select.bubbles_scheduled").set(self._sel_bubbles)
        registry.counter("regfile.crossbar_rejections").set(
            self._rf_rejections
        )
        registry.counter("regfile.sequential_decisions").set(
            self._rf_seq_decisions
        )
        for level in ("il1", "dl1", "l2"):
            cache_stats = getattr(self.memory, level).stats
            registry.counter(f"mem.{level}.accesses").set(cache_stats.accesses)
            registry.counter(f"mem.{level}.hits").set(cache_stats.hits)
            registry.counter(f"mem.{level}.misses").set(cache_stats.misses)
            registry.counter(f"mem.{level}.evictions").set(
                cache_stats.evictions
            )
        registry.counter("sim.matrix_mismatches").set(self.matrix_mismatches)
        registry.counter("sim.now_cycles").set(self.now)
