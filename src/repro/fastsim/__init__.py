"""Backend selection for the cycle loop: python, vector or native.

Three interchangeable cycle-loop backends exist:

* ``"python"`` — :class:`repro.pipeline.processor.Processor`, the reference
  implementation.  Supports every feature (lockstep checking, schedule
  traces, profiling, the Figure 5 dependence matrix).
* ``"vector"`` — :class:`repro.fastsim.engine.VectorProcessor`, a
  struct-of-arrays rewrite of the same timing model that stores scheduler
  state in flat preallocated arrays and fast-forwards over provably dead
  cycles.  Bit-identical statistics (the ``repro fuzz --cross-backend``
  parity gate pins this), roughly 3.5× faster, but it supports only plain
  simulation runs — no checker, trace, profiler or dependence matrix.
  Requires numpy (``pip install -e .[fast]``).
* ``"native"`` — :class:`repro.fastsim.native.NativeProcessor`, the same
  struct-of-arrays cycle loop compiled as a C extension
  (``repro.fastsim._native``), with the stateful cold-path components
  (branch unit, last-arrival predictor, shadow banks) shared with the
  python backend through callbacks so the same parity gate pins it
  byte-for-byte.  Same feature restrictions as ``vector``; needs the
  compiled artifact (``pip install -e .[native]``, requires a C
  compiler) but *not* numpy.

Selection precedence: an explicit ``--backend`` flag beats the
``REPRO_BACKEND`` environment variable, which beats the config's
``backend`` field, which defaults to ``"python"``.

Call :func:`apply_backend` once at the boundary (CLI, runner, serve) to
materialize the resolved backend into the :class:`MachineConfig`; from then
on the config is the single source of truth, the cache fingerprint includes
it, and :func:`make_processor` should be called with
``backend=config.backend`` so a later environment change cannot diverge
from what was fingerprinted.
"""

from __future__ import annotations

import dataclasses
import os

from repro.errors import ConfigurationError
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import Processor

#: Known cycle-loop backends, in documentation order.
BACKENDS = ("python", "vector", "native")

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def numpy_available() -> bool:
    """Is numpy importable (the vector backend's only dependency)?"""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def native_available() -> bool:
    """Is the compiled ``_native`` extension importable and ABI-compatible?"""
    from repro.fastsim.native import native_available as probe

    return probe()


def available_backends() -> tuple[str, ...]:
    """The subset of :data:`BACKENDS` that can actually run here."""
    out = ["python"]
    if numpy_available():
        out.append("vector")
    if native_available():
        out.append("native")
    return tuple(out)


def resolve_backend(
    explicit: str | None = None, config: MachineConfig | None = None
) -> str:
    """Resolve the backend name: flag > ``REPRO_BACKEND`` > config > python."""
    backend = explicit
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or None
    if backend is None and config is not None:
        backend = config.backend
    if backend is None:
        backend = "python"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
        )
    return backend


def apply_backend(config: MachineConfig, backend: str | None = None) -> MachineConfig:
    """Materialize the resolved backend into *config*.

    Returns a config whose ``backend`` field is the fully resolved choice,
    so everything keyed on the config — the result-cache fingerprint, serve
    job coalescing, stats exports — distinguishes backends and results are
    never served across them.
    """
    resolved = resolve_backend(backend, config)
    if config.backend == resolved:
        return config
    return dataclasses.replace(config, backend=resolved)


def make_processor(
    feed,
    config: MachineConfig,
    *,
    backend: str | None = None,
    shadow_sizes: tuple[int, ...] | None = None,
    record_schedule: bool = False,
    profile: bool = False,
    check: bool = False,
):
    """Build the processor the resolved backend asks for.

    The vector and native backends reject (with a clean
    :class:`ConfigurationError`) every feature that needs per-entry object
    state: lockstep checking, schedule traces, the stage profiler and the
    dependence-matrix cross-check all remain python-backend only.
    """
    resolved = resolve_backend(backend, config)
    if resolved == "python":
        return Processor(
            feed,
            config,
            shadow_sizes=shadow_sizes,
            record_schedule=record_schedule,
            profile=profile,
            check=check,
        )
    unsupported = None
    if check:
        unsupported = "lockstep checking (check=True)"
    elif record_schedule:
        unsupported = "schedule traces (record_schedule=True)"
    elif profile:
        unsupported = "stage profiling (profile=True)"
    elif config.use_dependence_matrix:
        unsupported = "the dependence-matrix cross-check"
    if unsupported is not None:
        raise ConfigurationError(
            f"backend {resolved!r} does not support {unsupported}; "
            "use the python backend for this run"
        )
    if resolved == "native":
        if not native_available():
            raise ConfigurationError(
                "backend 'native' needs the compiled extension; build it "
                "with pip install -e .[native] (requires a C compiler)"
            )
        from repro.fastsim.native import NativeProcessor

        return NativeProcessor(feed, config, shadow_sizes=shadow_sizes)
    if not numpy_available():
        raise ConfigurationError(
            "backend 'vector' needs numpy; install it with pip install -e .[fast]"
        )
    from repro.fastsim.engine import VectorProcessor

    return VectorProcessor(feed, config, shadow_sizes=shadow_sizes)
