"""Compiled cycle-loop backend: a thin driver over ``repro.fastsim._native``.

The C extension owns the whole struct-of-arrays machine state (per-tag
arrays, event rings, ROB/LSQ/frontend rings, rename table, the three
true-LRU caches) and runs the same five-phase cycle loop as
``fastsim/engine.py``.  This wrapper keeps bit-parity with the python and
vector backends by reusing the *same stateful Python components* — the
branch unit, the last-arrival predictor, the shadow/design banks and the
SimStats wakeup-order tracker — through five cold-path callbacks:

``predict(t)``
    Run the branch unit's predict for op *t*; returns 0 (not taken),
    1 (predicted taken) or 2 (mispredicted — fetch must stall).
``resolve(t)``
    Resolve the branch for op *t*; returns 0 (no prediction pending),
    1 (correct) or 2 (mispredicted).
``pair(case, t, j, slack)``
    Apply the predictor/design-bank/wakeup-tracker side effects of a
    recorded wakeup pair (case 1: one-pending-operand, case 2: full
    pair; ``j`` is the last side, -1 for simultaneous).
``warmup(stats24)``
    Flush the C stat accumulators into SimStats at the warmup boundary
    and reset the measurement window.
``ingest()``
    Pull the next chunk of a generator feed; returns ``None`` when
    drained, else a 12-tuple of int64 columns.

The bimodal predictor *table* is read in place by the C loop (via the
list object), so ``pair`` updates are visible to later dispatches exactly
as in the reference.  Everything on the hot path stays in C; the
callbacks fire only for control instructions, recorded wakeup pairs, the
single warmup boundary and per-2048-op ingest chunks.

No numpy anywhere in this module: ``native`` must work (and fall back
cleanly) on installs without the ``[fast]`` extra.
"""

from __future__ import annotations

from array import array
from itertools import islice
from time import perf_counter

from repro.core.iq import PRIORITY_CLASSES
from repro.core.last_arrival import (
    DesignComparisonBank,
    LastArrivalPredictor,
    OperandSide,
    ShadowPredictorBank,
    StaticLastArrival,
)
from repro.errors import ConfigurationError, SimulationError
from repro.frontend.branch_unit import BranchUnit
from repro.isa.opcodes import OpClass
from repro.isa.registers import NUM_ARCH_REGS
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import (
    BypassModel,
    MachineConfig,
    RecoveryModel,
    RegFileModel,
    RenameModel,
    SchedulerModel,
)
from repro.pipeline.fu import is_non_pipelined, pool_index
from repro.pipeline.processor import _WATCHDOG_CYCLES, SimulationResult
from repro.pipeline.stats import SimStats
from repro.workloads.feed import decode_columns

try:  # pragma: no cover - exercised via native_available()
    from repro.fastsim import _native
except ImportError:  # pragma: no cover - no compiled artifact present
    _native = None

#: The wire protocol this wrapper speaks; a prebuilt _native.so from a
#: different revision is refused rather than driven wrong.
_ABI_VERSION = 1

_RANK_BY_IDX = tuple(0 if c in PRIORITY_CLASSES else 1 for c in OpClass)
_POOL_BY_IDX = tuple(
    -1 if pool_index(c) is None else pool_index(c) for c in OpClass
)
_NONPIPE_BY_IDX = tuple(
    1 if is_non_pipelined(c) else 0 for c in OpClass
)

_SIDES = (OperandSide.LEFT, OperandSide.RIGHT)

_CHUNK = 2048


def native_available() -> bool:
    """True when the compiled extension is importable and ABI-compatible."""
    return (
        _native is not None
        and getattr(_native, "ABI_VERSION", 0) == _ABI_VERSION
    )


def _encode_columns(pcs, ctrls, loads, stores, nops, ocls, dests, deps,
                    addrs, pc_address):
    """Pack decoded python columns into the 12 int64 buffers C reads."""
    dest = array("q", [-1 if d is None else d for d in dests])
    ndeps = array("q", [len(d) for d in deps])
    dep0 = array("q", [d[0] if d else -1 for d in deps])
    dep1 = array("q", [d[1] if len(d) > 1 else -1 for d in deps])
    addr = array("q", [0 if a is None else a for a in addrs])
    if pc_address is not None:
        faddr = array("q", [pc_address(pc) for pc in pcs])
    else:
        faddr = array("q", [pc * 4 for pc in pcs])
    return (
        array("q", ocls), array("q", pcs), array("q", ctrls),
        array("q", loads), array("q", stores), array("q", nops),
        dest, ndeps, dep0, dep1, addr, faddr,
    )


class NativeProcessor:
    """Compiled-cycle-loop twin of :class:`Processor` (one run per instance)."""

    backend_name = "native"

    def __init__(
        self,
        feed,
        config: MachineConfig,
        shadow_sizes: tuple[int, ...] | None = None,
    ):
        if not native_available():
            raise ConfigurationError(
                "backend 'native' needs the compiled extension; build it "
                "with pip install -e .[native] (requires a C compiler)"
            )
        if config.use_dependence_matrix:
            raise ConfigurationError(
                "backend 'native' does not support the dependence-matrix "
                "cross-check; use the python backend for this run"
            )
        self.config = config
        self.feed = feed
        self.stats = SimStats()
        if shadow_sizes:
            self.stats.shadow_bank = ShadowPredictorBank(shadow_sizes)
            self.stats.design_bank = DesignComparisonBank()
        # Shared, stateful components reused verbatim from the python
        # backend: identical call order keeps their state bit-identical.
        if config.predictor_entries is None:
            self.predictor: LastArrivalPredictor | StaticLastArrival = (
                StaticLastArrival()
            )
        else:
            self.predictor = LastArrivalPredictor(config.predictor_entries)
        self.branch_unit = BranchUnit()
        self.memory = MemoryHierarchy(config.mem)
        self.now = 0
        self.wall_seconds = 0.0
        self.matrix_mismatches = 0
        self.trace = None
        self.profiler = None
        self.checker = None
        self._total_committed = 0
        self._sel_slots_taken = 0
        self._sel_bubbles = 0
        self._rf_rejections = 0
        self._rf_seq_decisions = 0
        self._ran = False
        lat = []
        for op_class in OpClass:
            try:
                lat.append(config.lat.for_class(op_class))
            except ConfigurationError:
                lat.append(0)
        self._lat_by_idx = tuple(lat)

    # ==================================================================
    def run(self, max_insts: int, warmup: int = 0) -> SimulationResult:
        """Simulate until *max_insts* instructions commit after warmup."""
        if self._ran:
            raise SimulationError("NativeProcessor instances are single-run")
        self._ran = True
        t_start = perf_counter()

        config = self.config
        stats = self.stats
        memory = self.memory
        predictor = self.predictor
        predictor_update = predictor.update
        record_wakeup_pair = stats.record_wakeup_pair
        branch_predict = self.branch_unit.predict
        branch_resolve = self.branch_unit.resolve
        pc_address = getattr(self.feed, "pc_address", None)
        design_bank = stats.design_bank
        sides = _SIDES
        if type(predictor) is LastArrivalPredictor:
            p_tab = predictor._table
            p_mask = predictor._mask
            p_mid = predictor._mid
        else:
            p_tab, p_mask, p_mid = [1], 0, 0

        # ---- config scalars ------------------------------------------
        seq_mode = config.scheduler is SchedulerModel.SEQ_WAKEUP
        tag_elim_mode = config.scheduler is SchedulerModel.TAG_ELIM
        sequential_rf = config.regfile is RegFileModel.SEQUENTIAL
        crossbar_rf = config.regfile is RegFileModel.CROSSBAR
        mem_cfg = config.mem
        horizon = (
            config.lat.agen
            + mem_cfg.dl1_latency
            + mem_cfg.l2_latency
            + mem_cfg.memory_latency
            + config.lat.worst_case
            + config.exec_offset
            + config.load_spec_window
            + config.tag_elim_detect_delay
            + 8
        )
        ring_size = 1 << max(3, (max(1, horizon) - 1).bit_length())
        scalars = (
            config.width,
            config.ruu_size,
            config.lsq_size,
            config.front_depth,
            config.exec_offset,
            config.lat.agen,
            config.assumed_load_latency,
            config.load_spec_window,
            config.tag_elim_detect_delay,
            1 if seq_mode else 0,
            1 if tag_elim_mode else 0,
            1 if sequential_rf else 0,
            1 if crossbar_rf else 0,
            1 if (seq_mode and sequential_rf) else 0,
            1 if config.recovery is RecoveryModel.NON_SELECTIVE else 0,
            1 if config.rename is RenameModel.HALF_PORTS else 0,
            1 if config.bypass is BypassModel.HALF else 0,
            _WATCHDOG_CYCLES,
            ring_size,
            NUM_ARCH_REGS,
            p_mask,
            p_mid,
        )
        fu_counts = (
            config.fu.int_alu,
            config.fu.fp_alu,
            config.fu.int_mult,
            config.fu.fp_mult,
            config.fu.mem_ports,
        )
        il1 = memory.il1
        dl1 = memory.dl1
        l2 = memory.l2
        geom = (
            il1._line_shift, il1._set_mask, il1.config.associativity,
            dl1._line_shift, dl1._set_mask, dl1.config.associativity,
            l2._line_shift, l2._set_mask, l2.config.associativity,
            mem_cfg.il1_latency, mem_cfg.dl1_latency,
            mem_cfg.l2_latency, mem_cfg.memory_latency,
        )
        tables = (
            _RANK_BY_IDX, _POOL_BY_IDX, _NONPIPE_BY_IDX, self._lat_by_idx,
        )

        # ---- decode columns ------------------------------------------
        feed_ops = getattr(self.feed, "ops", None)
        get_columns = getattr(self.feed, "columns", None)
        if type(feed_ops) is list:
            ops_l = feed_ops
            cols = get_columns() if callable(get_columns) else None
            if cols is None:
                cols = decode_columns(ops_l)
            native_cols = cols.get("native_cols")
            if native_cols is None:
                native_cols = _encode_columns(
                    cols["pc"], cols["ctrl"], cols["load"], cols["store"],
                    cols["nop"], cols["ocls"], cols["dest"], cols["deps"],
                    cols["addr"], pc_address,
                )
                cols["native_cols"] = native_cols  # memoize w/ decode cache
            feed_iter = None
        else:
            ops_l = []
            native_cols = None
            feed_iter = iter(self.feed)

        # ---- cold-path callbacks -------------------------------------
        predictions: dict[int, object] = {}

        def predict_cb(t: int) -> int:
            op = ops_l[t]
            pc = op.pc
            prediction = branch_predict(pc, op.opcode, op.static_target)
            predictions[t] = prediction
            if prediction.next_pc(pc + 1) != op.next_pc:
                return 2  # mispredict: stall until the branch resolves
            if prediction.predicted_taken:
                return 1
            return 0

        def resolve_cb(t: int) -> int:
            prediction = predictions.pop(t, None)
            if prediction is None:
                return 0
            op = ops_l[t]
            if branch_resolve(
                op.pc, op.opcode, prediction, op.taken, op.next_pc, op.pc + 1
            ):
                return 2
            return 1

        def pair_cb(case: int, t: int, j: int, slack: int) -> None:
            pc = ops_l[t].pc
            if case == 1:
                last_side = sides[j]
                if design_bank is not None:
                    design_bank.observe(pc, last_side)
                predictor_update(pc, last_side)
                return
            last_side = None if j < 0 else sides[j]
            record_wakeup_pair(pc, slack, last_side)
            if design_bank is not None:
                design_bank.observe(pc, last_side)
            if last_side is not None:
                predictor_update(pc, last_side)

        def warmup_cb(*s24) -> None:
            self._apply_stats(s24)
            stats.reset_window()

        def ingest_cb():
            base = len(ops_l)
            chunk = list(islice(feed_iter, _CHUNK))
            if not chunk:
                return None
            for i, op in enumerate(chunk):
                if op.seq != base + i:
                    raise SimulationError(
                        "native backend needs dense program-order seq "
                        f"numbers (got {op.seq}, expected {base + i})"
                    )
            ops_l.extend(chunk)
            return _encode_columns(
                [op.pc for op in chunk],
                [1 if op.is_control else 0 for op in chunk],
                [1 if op.is_load else 0 for op in chunk],
                [1 if op.is_store else 0 for op in chunk],
                [1 if op.is_eliminated_nop else 0 for op in chunk],
                [op.op_class.idx for op in chunk],
                [op.dest for op in chunk],
                [op.sched_deps for op in chunk],
                [op.mem_addr for op in chunk],
                pc_address,
            )

        # ---- run the compiled loop -----------------------------------
        status, now_c, total_committed, head_tag, s24, m12, sel4 = (
            _native.run(
                scalars, fu_counts, geom, tables, p_tab, native_cols,
                (predict_cb, resolve_cb, pair_cb, warmup_cb, ingest_cb),
                max_insts, warmup,
            )
        )

        self.now = now_c
        self._total_committed = total_committed
        (
            self._sel_slots_taken,
            self._sel_bubbles,
            self._rf_rejections,
            self._rf_seq_decisions,
        ) = sel4
        self._apply_stats(s24)
        for cache, base in ((il1, 0), (dl1, 4), (l2, 8)):
            cs = cache.stats
            cs.accesses += m12[base]
            cs.hits += m12[base + 1]
            cs.misses += m12[base + 2]
            cs.evictions += m12[base + 3]
        self.wall_seconds = perf_counter() - t_start
        if status == 1:
            if head_tag >= 0:
                head_repr = f"tag {head_tag} {ops_l[head_tag].opcode}"
            else:
                head_repr = "None"
            error = SimulationError(
                f"no commit for {_WATCHDOG_CYCLES} cycles at cycle "
                f"{now_c} (head={head_repr})"
            )
            error.cycle = now_c
            raise error
        if status == 2:  # pragma: no cover - horizon covers all latencies
            raise SimulationError("event past the ring horizon")
        return SimulationResult(
            config_name=config.name,
            workload_name=getattr(self.feed, "name", "workload"),
            stats=stats,
            total_committed=total_committed,
            total_cycles=now_c,
        )

    # ==================================================================
    def _apply_stats(self, s) -> None:
        """Add a 24-tuple of C stat accumulators into SimStats.

        Field order is the _native wire protocol; the zero-guards on
        ready_at_insert keep the Counter free of zero entries exactly as
        the other backends' flush paths do.
        """
        stats = self.stats
        stats.cycles += s[0]
        stats.fetched += s[1]
        stats.dispatched += s[2]
        stats.two_source_dispatched += s[3]
        if s[4]:
            stats.ready_at_insert[0] += s[4]
        if s[5]:
            stats.ready_at_insert[1] += s[5]
        if s[6]:
            stats.ready_at_insert[2] += s[6]
        stats.committed += s[7]
        stats.issued += s[8]
        stats.branches += s[9]
        stats.branch_mispredicts += s[10]
        stats.replayed += s[11]
        stats.load_miss_replays += s[12]
        stats.rename_port_stalls += s[13]
        stats.sequential_rf_accesses += s[14]
        stats.double_bypass_delays += s[15]
        stats.seq_wakeup_slow_initiations += s[16]
        stats.tag_elim_misschedules += s[17]
        stats.rf_two_ready += s[18]
        stats.rf_back_to_back += s[19]
        stats.rf_non_back_to_back += s[20]
        stats.simultaneous_wakeups += s[21]
        stats.last_arrival_predictions += s[22]
        stats.last_arrival_mispredictions += s[23]

    # ==================================================================
    def publish_metrics(self, registry) -> None:
        """Publish finished counters, mirroring Processor.publish_metrics."""
        self.stats.publish_metrics(registry)
        registry.counter("select.slots_taken").set(self._sel_slots_taken)
        registry.counter("select.bubbles_scheduled").set(self._sel_bubbles)
        registry.counter("regfile.crossbar_rejections").set(
            self._rf_rejections
        )
        registry.counter("regfile.sequential_decisions").set(
            self._rf_seq_decisions
        )
        for level in ("il1", "dl1", "l2"):
            cache_stats = getattr(self.memory, level).stats
            registry.counter(f"mem.{level}.accesses").set(cache_stats.accesses)
            registry.counter(f"mem.{level}.hits").set(cache_stats.hits)
            registry.counter(f"mem.{level}.misses").set(cache_stats.misses)
            registry.counter(f"mem.{level}.evictions").set(
                cache_stats.evictions
            )
        registry.counter("sim.matrix_mismatches").set(self.matrix_mismatches)
        registry.counter("sim.now_cycles").set(self.now)
