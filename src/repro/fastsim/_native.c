/* Compiled cycle-loop engine (the ``native`` backend).
 *
 * A C transliteration of the struct-of-arrays cycle loop in
 * ``repro/fastsim/engine.py`` (the ``vector`` backend), which is itself a
 * cycle-exact transliteration of ``repro.pipeline.processor.Processor``.
 * The phase structure, array layout and every comparison mirror engine.py
 * line for line — when editing, diff against that file, not against the
 * reference processor.
 *
 * Parity strategy
 * ---------------
 * All per-tag machine state (status/epoch/operand arrays, scoreboard,
 * event rings + min-heap, ROB/LSQ/frontend rings, rename table, the
 * three true-LRU cache levels) lives in flat C arrays.  The stateful
 * Python components whose internal order matters for bit-parity — the
 * branch unit, the last-arrival predictor + shadow banks, and
 * SimStats.record_wakeup_pair — stay in Python and are driven through
 * five cold-path callbacks at exactly the call sites engine.py uses:
 *
 *   predict_cb(t)  -> 0 fallthrough-predicted / 1 taken-predicted /
 *                     2 mispredicted (fetch must stall)
 *   resolve_cb(t)  -> 0 no prediction pending / 1 resolved ok /
 *                     2 resolved as mispredict
 *   pair_cb(case, t, j, slack)
 *                  case 1: single-pending-operand arrival (design-bank
 *                  observe + predictor update); case 2: two-arrival
 *                  wakeup pair (record_wakeup_pair + observe + update);
 *                  j is the last-arriving side (-1 = simultaneous)
 *   warmup_cb(stats24)
 *                  flush the 24 window accumulators + reset_window()
 *   ingest_cb()    -> None when the feed is drained, else a tuple of 12
 *                  equal-length columns for the next chunk of ops
 *
 * The bimodal predictor table is read in place (PyList_GET_ITEM on the
 * live ``_table`` list) so predictor updates made inside pair_cb are
 * visible to later dispatches, same as the Python engines.
 *
 * The ``store_line`` dict of engine.py (8-byte line -> newest in-LSQ
 * store) is replaced by a backward scan of the LSQ ring, which computes
 * the same answer: the dict only ever maps to stores still resident in
 * the LSQ.
 *
 * Counters accumulate in C and are returned to the wrapper
 * (repro/fastsim/native.py), which flushes them into the real
 * SimStats / CacheStats objects exactly where engine.py's
 * flush_stats/flush_mem do.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define KEY_SHIFT 32
#define TAG_MASK ((((int64_t)1) << KEY_SHIFT) - 1)
#define NEVER (((int64_t)1) << 60)
#define CHUNK 2048

/* ---------------- growable int64 vector ---------------- */

typedef struct {
    int64_t *d;
    Py_ssize_t len, cap;
} Vec;

static int
vec_push(Vec *v, int64_t x)
{
    if (v->len == v->cap) {
        Py_ssize_t nc = v->cap ? v->cap * 2 : 16;
        int64_t *nd = (int64_t *)realloc(v->d, (size_t)nc * sizeof(int64_t));
        if (nd == NULL) {
            return -1;
        }
        v->d = nd;
        v->cap = nc;
    }
    v->d[v->len++] = x;
    return 0;
}

static void
vec_free(Vec *v)
{
    free(v->d);
    v->d = NULL;
    v->len = v->cap = 0;
}

/* list.remove(x): drop the first occurrence, preserving order. */
static void
vec_remove(Vec *v, int64_t x)
{
    Py_ssize_t i;
    for (i = 0; i < v->len; i++) {
        if (v->d[i] == x) {
            memmove(v->d + i, v->d + i + 1,
                    (size_t)(v->len - i - 1) * sizeof(int64_t));
            v->len--;
            return;
        }
    }
}

/* ---------------- int64 min-heap (over a Vec) ---------------- */

static int
heap_push(Vec *h, int64_t key)
{
    if (vec_push(h, key)) {
        return -1;
    }
    Py_ssize_t i = h->len - 1;
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (h->d[p] <= h->d[i]) {
            break;
        }
        int64_t tmp = h->d[p];
        h->d[p] = h->d[i];
        h->d[i] = tmp;
        i = p;
    }
    return 0;
}

static int64_t
heap_pop(Vec *h)
{
    int64_t top = h->d[0];
    int64_t last = h->d[--h->len];
    if (h->len) {
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t l = 2 * i + 1, r = l + 1, s = i;
            if (l < h->len && h->d[l] < last) {
                s = l;
            }
            if (r < h->len && h->d[r] < (s == i ? last : h->d[l])) {
                s = r;
            }
            if (s == i) {
                break;
            }
            h->d[i] = h->d[s];
            i = s;
        }
        h->d[i] = last;
    }
    return top;
}

/* ---------------- ring-buffer deque ---------------- */

typedef struct {
    int64_t *d;
    Py_ssize_t cap;   /* power of two */
    Py_ssize_t head;  /* index of front, modulo cap */
    Py_ssize_t count;
} Ring;

static int
ring_init(Ring *r, Py_ssize_t min_cap)
{
    Py_ssize_t cap = 16;
    while (cap < min_cap) {
        cap <<= 1;
    }
    r->d = (int64_t *)malloc((size_t)cap * sizeof(int64_t));
    if (r->d == NULL) {
        return -1;
    }
    r->cap = cap;
    r->head = 0;
    r->count = 0;
    return 0;
}

static int
ring_push(Ring *r, int64_t x)
{
    if (r->count == r->cap) {
        Py_ssize_t nc = r->cap * 2;
        int64_t *nd = (int64_t *)malloc((size_t)nc * sizeof(int64_t));
        if (nd == NULL) {
            return -1;
        }
        Py_ssize_t i;
        for (i = 0; i < r->count; i++) {
            nd[i] = r->d[(r->head + i) & (r->cap - 1)];
        }
        free(r->d);
        r->d = nd;
        r->cap = nc;
        r->head = 0;
    }
    r->d[(r->head + r->count) & (r->cap - 1)] = x;
    r->count++;
    return 0;
}

static int64_t
ring_pop(Ring *r)
{
    int64_t x = r->d[r->head & (r->cap - 1)];
    r->head = (r->head + 1) & (r->cap - 1);
    r->count--;
    return x;
}

#define RING_AT(r, i) ((r)->d[((r)->head + (i)) & ((r)->cap - 1)])
#define RING_FRONT(r) ((r)->d[(r)->head & ((r)->cap - 1)])

/* ---------------- true-LRU set-associative cache ----------------
 * Mirror of the per-set OrderedDict in repro.memory.cache.Cache:
 * index 0 of a set is LRU, index len-1 is MRU; a hit moves the line to
 * MRU (move_to_end), a miss inserts at MRU evicting index 0 when the
 * set is full (popitem(last=False)). */

typedef struct {
    int64_t *lines;  /* nsets * assoc */
    uint8_t *len;    /* per-set occupancy */
    int64_t mask;    /* set index mask (nsets - 1) */
    int64_t shift;   /* line shift (log2 line bytes) */
    int assoc;
} CacheC;

static int
cache_init(CacheC *c, int64_t shift, int64_t mask, int64_t assoc)
{
    Py_ssize_t nsets = (Py_ssize_t)mask + 1;
    c->lines = (int64_t *)malloc((size_t)(nsets * assoc) * sizeof(int64_t));
    c->len = (uint8_t *)calloc((size_t)nsets, 1);
    if (c->lines == NULL || c->len == NULL) {
        return -1;
    }
    c->mask = mask;
    c->shift = shift;
    c->assoc = (int)assoc;
    return 0;
}

static void
cache_free(CacheC *c)
{
    free(c->lines);
    free(c->len);
    c->lines = NULL;
    c->len = NULL;
}

/* Returns 1 on hit; on miss inserts the line (bumping *evictions if an
 * LRU victim was dropped) and returns 0. */
static int
cache_access(CacheC *c, int64_t line, int64_t *evictions)
{
    int64_t set = line & c->mask;
    int64_t *base = c->lines + set * c->assoc;
    int n = c->len[set];
    int i;
    for (i = 0; i < n; i++) {
        if (base[i] == line) {
            for (; i < n - 1; i++) {
                base[i] = base[i + 1];
            }
            base[n - 1] = line;
            return 1;
        }
    }
    if (n >= c->assoc) {
        for (i = 0; i < n - 1; i++) {
            base[i] = base[i + 1];
        }
        base[n - 1] = line;
        (*evictions)++;
    }
    else {
        base[n] = line;
        c->len[set] = (uint8_t)(n + 1);
    }
    return 0;
}

/* ---------------- engine context ---------------- */

typedef struct {
    /* per-tag mutable struct-of-arrays (cap entries; operand arrays
     * hold 2*cap, flat index = 2*tag + op_index) */
    int64_t *st, *epoch, *elig, *inrd, *issue_c, *replays, *nops, *rai,
        *rec, *fastside, *rfcat, *mdt, *mdr, *fwd, *fill_c, *cmp_c,
        *cmp_ep;
    int64_t *o_tag, *o_rdy, *o_rai, *o_rc, *o_arr;
    int64_t *sb_alive, *sb_valid, *sb_bc;
    Vec *cons;          /* per-tag encoded consumer lists */
    Py_ssize_t cap;

    /* per-tag decode columns + stamped config tables */
    const int64_t *ocls, *pc, *ctrl, *load, *store, *nop, *dest, *ndeps,
        *dep0, *dep1, *addr, *faddr;
    int64_t *rkey, *latv, *poolv, *npipe;
    Py_ssize_t n_cols;  /* ops with columns available */
    int cols_owned;     /* generator mode: columns are C-grown arrays */

    /* config scalars */
    int64_t width, ruu_size, lsq_size, front_depth, exec_offset,
        agen_lat, assumed, spec_window, detect, watchdog, ring_size,
        ring_mask;
    int seq_mode, tag_elim_mode, sequential_rf, crossbar_rf,
        fast_now_only, non_selective, half_rename, half_bypass;
    int64_t fu_counts[5];

    /* per-opclass tables (for generator-mode stamping) */
    const int64_t *tab_rank, *tab_pool, *tab_npipe, *tab_lat;
    Py_ssize_t n_opclass;

    /* predictor fast path (read in place; pair_cb mutates the list) */
    PyObject *p_tab;
    int64_t p_mask, p_mid;

    /* caches + latencies + counters */
    CacheC il1, dl1, l2;
    int64_t il1_lat, dl1_lat, l2_lat, mem_lat;
    int64_t c_il1a, c_il1h, c_il1m, c_il1e;
    int64_t c_dl1a, c_dl1h, c_dl1m, c_dl1e;
    int64_t c_l2a, c_l2h, c_l2m, c_l2e;

    /* event rings + gating min-heap */
    Vec *k_buckets, *sw_buckets, *b_buckets, *c_buckets;
    Vec ev_heap;

    /* machine state */
    int64_t now;
    int64_t *rename_tbl;        /* arch reg -> tag, -1 = architectural */
    Vec ready;
    Vec ready_snap;             /* select-phase sorted snapshot */
    Ring fr_arr, fr_tag, rob, lsq;
    Py_ssize_t n_tags;
    int feed_done;
    int64_t pending_tag, fetch_resume, fetch_blocked, last_fetch_line;
    int64_t total_committed, last_commit;
    int64_t fu_cycle, fu_issued[5];
    Vec fu_busy[5];
    int64_t bubble_cycle, bubble_n;
    int64_t sel_slots_taken, sel_bubbles, rf_rejections,
        rf_seq_decisions;

    /* stat accumulators (flushed through warmup_cb / the result) */
    int64_t s_cycles, s_fetched, s_dispatched, s_two_src;
    int64_t s_rai0, s_rai1, s_rai2;
    int64_t s_committed, s_issued, s_branches, s_mispred;
    int64_t s_replayed, s_lmr, s_rename_stalls;
    int64_t s_seq_rf, s_dbl, s_seq_slow, s_te;
    int64_t s_rf_two, s_rf_b2b, s_rf_nb;
    int64_t s_simul, s_lap, s_lamp;

    /* callbacks (borrowed refs; the argument tuple outlives the run) */
    PyObject *predict_cb, *resolve_cb, *pair_cb, *warmup_cb, *ingest_cb;

    int nomem;  /* set by infallible-signature helpers on OOM */
} Ctx;

/* ---------------- event scheduling ---------------- */

static void
ev_sched(Ctx *c, Vec *buckets, int ringno, int64_t cyc,
         const int64_t *fields, int nf)
{
    Vec *b = &buckets[cyc & c->ring_mask];
    int i;
    if (b->len == 0) {
        if (heap_push(&c->ev_heap, (cyc << 2) | ringno)) {
            c->nomem = 1;
            return;
        }
    }
    for (i = 0; i < nf; i++) {
        if (vec_push(b, fields[i])) {
            c->nomem = 1;
            return;
        }
    }
}

/* ---------------- readiness / replay cascade ---------------- */

static int
entry_ready(Ctx *c, int64_t t)
{
    if (!c->mdr[t]) {
        return 0;
    }
    int64_t n = c->nops[t];
    if (c->tag_elim_mode && n == 2 && c->replays[t] == 0) {
        /* speculative: only the connected comparator decides */
        return c->o_rdy[(t << 1) + c->fastside[t]] == 1;
    }
    if (n == 0) {
        return 1;
    }
    int64_t b = t << 1;
    if (!c->o_rdy[b]) {
        return 0;
    }
    return n == 1 || c->o_rdy[b + 1] == 1;
}

static void squash(Ctx *c, int64_t t);

static void
maybe_ready(Ctx *c, int64_t t)
{
    if (c->st[t] == 0 && !c->inrd[t] && c->mdr[t] && entry_ready(c, t)) {
        c->inrd[t] = 1;
        if (vec_push(&c->ready, c->rkey[t])) {
            c->nomem = 1;
        }
    }
}

static void
invalidate_tag(Ctx *c, int64_t tag)
{
    /* Scoreboard.invalidate + the processor's consumer cascade. */
    if (!c->sb_alive[tag]) {
        return;
    }
    c->sb_valid[tag] = 0;
    c->sb_bc[tag] = -1;
    Vec *lst = &c->cons[tag];
    Py_ssize_t i;
    for (i = 0; i < lst->len; i++) {
        int64_t enc = lst->d[i];
        int64_t ct = enc >> 2;
        int64_t j = (enc & 3) - 1;
        if (j < 0) {
            if (c->mdt[ct] == tag && c->mdr[ct]) {
                c->mdr[ct] = 0;
                if (c->st[ct] == 1 &&
                    (c->cmp_ep[ct] != c->epoch[ct] ||
                     c->cmp_c[ct] > c->now)) {
                    squash(c, ct);
                }
            }
            continue;
        }
        int64_t oi = (ct << 1) + j;
        if (c->o_rdy[oi] && c->o_tag[oi] == tag) {
            c->o_rdy[oi] = 0;
            c->o_rc[oi] = -1;
            if (c->st[ct] == 1 &&
                (c->cmp_ep[ct] != c->epoch[ct] ||
                 c->cmp_c[ct] > c->now)) {
                squash(c, ct);
            }
            else if (c->inrd[ct]) {
                vec_remove(&c->ready, c->rkey[ct]);
                c->inrd[ct] = 0;
            }
        }
    }
}

static void
squash(Ctx *c, int64_t t)
{
    c->s_replayed++;
    /* reset_for_replay: drop ready bits whose broadcast died */
    c->st[t] = 0;
    c->issue_c[t] = -1;
    c->replays[t]++;
    int64_t b = t << 1;
    int64_t j;
    for (j = 0; j < c->nops[t]; j++) {
        int64_t i = b + j;
        int64_t pt = c->o_tag[i];
        if (c->o_rdy[i] && pt != -1 && c->sb_alive[pt] &&
            !c->sb_valid[pt]) {
            c->o_rdy[i] = 0;
            c->o_rc[i] = -1;
        }
    }
    c->epoch[t]++;
    c->elig[t] = c->now + 1;
    invalidate_tag(c, t);
    maybe_ready(c, t);
}

/* ---------------- cold-path callbacks ---------------- */

/* _maybe_record_wakeup_pair (callers pre-check rec/nops).  Returns -1 if
 * the Python callback raised. */
static int
record_pair(Ctx *c, int64_t t)
{
    int64_t b = t << 1;
    int64_t n_rai = c->rai[t];
    int64_t j, slack, pair_case;
    if (n_rai == 1) {
        j = c->o_rai[b] ? 1 : 0;  /* the operand pending at insert */
        if (c->o_arr[b + j] == -1) {
            return 0;
        }
        c->rec[t] = 1;
        c->s_lap++;
        if (c->fastside[t] != j) {
            c->s_lamp++;
        }
        slack = 0;
        pair_case = 1;
    }
    else if (n_rai != 0) {
        return 0;
    }
    else {
        int64_t a0 = c->o_arr[b];
        int64_t a1 = c->o_arr[b + 1];
        if (a0 == -1 || a1 == -1) {
            return 0;
        }
        c->rec[t] = 1;
        slack = a0 - a1;
        if (slack < 0) {
            slack = -slack;
        }
        if (slack == 0) {
            j = -1;  /* simultaneous: no last side */
            c->s_simul++;
        }
        else {
            j = a0 > a1 ? 0 : 1;
            c->s_lap++;
            if (c->fastside[t] != j) {
                c->s_lamp++;
            }
        }
        pair_case = 2;
    }
    PyObject *r = PyObject_CallFunction(
        c->pair_cb, "LLLL", (long long)pair_case, (long long)t,
        (long long)j, (long long)slack);
    if (r == NULL) {
        return -1;
    }
    Py_DECREF(r);
    return 0;
}

static int
resolve_branch(Ctx *c, int64_t t)
{
    PyObject *r = PyObject_CallFunction(c->resolve_cb, "L", (long long)t);
    if (r == NULL) {
        return -1;
    }
    long code = PyLong_AsLong(r);
    Py_DECREF(r);
    if (code == -1 && PyErr_Occurred()) {
        return -1;
    }
    if (code == 0) {
        return 0;  /* no prediction pending (re-resolved after squash) */
    }
    c->s_branches++;
    if (code == 2) {
        c->s_mispred++;
    }
    if (c->fetch_blocked == t) {
        /* fetch stalls were <= now when the block was set, so the
         * reference's max(stalled, now + 1) is exactly now + 1 */
        c->fetch_blocked = -1;
        c->fetch_resume = c->now + 1;
        c->last_fetch_line = -1;
    }
    return 0;
}

static void
process_kill(Ctx *c, int64_t rt, int64_t kep, int64_t win_s, int64_t win_e,
             int64_t sq_root)
{
    if (c->epoch[rt] != kep) {
        return;  /* the root was itself squashed; this shadow is void */
    }
    if (!sq_root) {
        c->s_lmr++;
    }
    invalidate_tag(c, rt);
    if (sq_root && c->st[rt] == 1 &&
        (c->cmp_ep[rt] != c->epoch[rt] || c->cmp_c[rt] > c->now)) {
        squash(c, rt);
    }
    if (win_s != -1) {
        Py_ssize_t i;
        for (i = 0; i < c->rob.count; i++) {
            int64_t ct = RING_AT(&c->rob, i);
            if (c->st[ct] == 1 && ct != rt && win_s <= c->issue_c[ct] &&
                c->issue_c[ct] <= win_e &&
                (c->cmp_ep[ct] != c->epoch[ct] || c->cmp_c[ct] > c->now)) {
                squash(c, ct);
            }
        }
    }
}

/* ---------------- per-tag array growth (generator feeds) ---------------- */

static int64_t *
grow_i64(int64_t *p, Py_ssize_t old_n, Py_ssize_t new_n, int64_t fill)
{
    int64_t *np = (int64_t *)realloc(p, (size_t)new_n * sizeof(int64_t));
    Py_ssize_t i;
    if (np == NULL) {
        return NULL;
    }
    for (i = old_n; i < new_n; i++) {
        np[i] = fill;
    }
    return np;
}

/* Grow every per-tag state array (and, in generator mode, the column
 * arrays) so that tags < need are addressable.  Mirrors engine.py's
 * grow() including the default values per array. */
static int
ensure_cap(Ctx *c, Py_ssize_t need)
{
    if (need <= c->cap) {
        return 0;
    }
    Py_ssize_t nc = c->cap;
    if (nc < CHUNK) {
        nc = 0;
    }
    while (nc < need) {
        nc += CHUNK;
    }
#define GROW1(field, fill)                                          \
    do {                                                            \
        int64_t *np_ = grow_i64(c->field, c->cap, nc, (fill));      \
        if (np_ == NULL) {                                          \
            return -1;                                              \
        }                                                           \
        c->field = np_;                                             \
    } while (0)
#define GROW2(field, fill)                                          \
    do {                                                            \
        int64_t *np_ = grow_i64(c->field, 2 * c->cap, 2 * nc,       \
                                (fill));                            \
        if (np_ == NULL) {                                          \
            return -1;                                              \
        }                                                           \
        c->field = np_;                                             \
    } while (0)
    GROW1(st, 0);
    GROW1(epoch, 0);
    GROW1(elig, 0);
    GROW1(inrd, 0);
    GROW1(issue_c, -1);
    GROW1(replays, 0);
    GROW1(nops, 0);
    GROW1(rai, 0);
    GROW1(rec, 0);
    GROW1(fastside, 1);
    GROW1(rfcat, 0);
    GROW1(mdt, -1);
    GROW1(mdr, 1);
    GROW1(fwd, 0);
    GROW1(fill_c, -1);
    GROW1(cmp_c, -1);
    GROW1(cmp_ep, 0);
    GROW1(sb_alive, 0);
    GROW1(sb_valid, 0);
    GROW1(sb_bc, -1);
    GROW2(o_tag, -1);
    GROW2(o_rdy, 0);
    GROW2(o_rai, 0);
    GROW2(o_rc, -1);
    GROW2(o_arr, -1);
    {
        Vec *ncons = (Vec *)realloc(c->cons, (size_t)nc * sizeof(Vec));
        if (ncons == NULL) {
            return -1;
        }
        memset(ncons + c->cap, 0,
               (size_t)(nc - c->cap) * sizeof(Vec));
        c->cons = ncons;
    }
    if (c->cols_owned) {
#define GROWC(field)                                                \
    do {                                                            \
        int64_t *np_ = grow_i64((int64_t *)c->field, c->cap, nc,    \
                                0);                                 \
        if (np_ == NULL) {                                          \
            return -1;                                              \
        }                                                           \
        c->field = np_;                                             \
    } while (0)
        GROWC(ocls);
        GROWC(pc);
        GROWC(ctrl);
        GROWC(load);
        GROWC(store);
        GROWC(nop);
        GROWC(dest);
        GROWC(ndeps);
        GROWC(dep0);
        GROWC(dep1);
        GROWC(addr);
        GROWC(faddr);
#undef GROWC
    }
    GROW1(rkey, 0);
    GROW1(latv, 0);
    GROW1(poolv, 0);
    GROW1(npipe, 0);
#undef GROW1
#undef GROW2
    c->cap = nc;
    return 0;
}

/* Pull the next chunk of decode columns from the wrapper's ingest
 * callback (generator feeds).  Returns the number of ops appended, 0 on
 * feed exhaustion, -1 on error. */
static Py_ssize_t
ingest_chunk(Ctx *c)
{
    PyObject *r = PyObject_CallNoArgs(c->ingest_cb);
    if (r == NULL) {
        return -1;
    }
    if (r == Py_None) {
        Py_DECREF(r);
        return 0;
    }
    if (!PyTuple_Check(r) || PyTuple_GET_SIZE(r) != 12) {
        Py_DECREF(r);
        PyErr_SetString(PyExc_TypeError,
                        "ingest callback must return None or a 12-tuple");
        return -1;
    }
    PyObject *seqs[12] = {NULL};
    Py_ssize_t n = -1;
    int k;
    for (k = 0; k < 12; k++) {
        seqs[k] = PySequence_Fast(PyTuple_GET_ITEM(r, k),
                                  "ingest column must be a sequence");
        if (seqs[k] == NULL) {
            while (--k >= 0) {
                Py_DECREF(seqs[k]);
            }
            Py_DECREF(r);
            return -1;
        }
        Py_ssize_t ln = PySequence_Fast_GET_SIZE(seqs[k]);
        if (n == -1) {
            n = ln;
        }
        else if (ln != n) {
            PyErr_SetString(PyExc_ValueError,
                            "ingest columns disagree on length");
            goto fail;
        }
    }
    if (n == 0) {
        for (k = 0; k < 12; k++) {
            Py_DECREF(seqs[k]);
        }
        Py_DECREF(r);
        return 0;
    }
    if (ensure_cap(c, c->n_cols + n)) {
        PyErr_NoMemory();
        goto fail;
    }
    {
        int64_t *cols[12] = {
            (int64_t *)c->ocls, (int64_t *)c->pc, (int64_t *)c->ctrl,
            (int64_t *)c->load, (int64_t *)c->store, (int64_t *)c->nop,
            (int64_t *)c->dest, (int64_t *)c->ndeps, (int64_t *)c->dep0,
            (int64_t *)c->dep1, (int64_t *)c->addr, (int64_t *)c->faddr,
        };
        Py_ssize_t i;
        for (k = 0; k < 12; k++) {
            PyObject **items = PySequence_Fast_ITEMS(seqs[k]);
            int64_t *dst = cols[k] + c->n_cols;
            for (i = 0; i < n; i++) {
                int64_t v = (int64_t)PyLong_AsLongLong(items[i]);
                if (v == -1 && PyErr_Occurred()) {
                    goto fail;
                }
                dst[i] = v;
            }
        }
        for (i = 0; i < n; i++) {
            int64_t t = c->n_cols + i;
            int64_t oc = c->ocls[t];
            if (oc < 0 || oc >= (int64_t)c->n_opclass) {
                PyErr_SetString(PyExc_ValueError,
                                "op class index out of range");
                goto fail;
            }
            c->rkey[t] = (c->tab_rank[oc] << KEY_SHIFT) | t;
            c->latv[t] = c->tab_lat[oc];
            c->poolv[t] = c->tab_pool[oc];
            c->npipe[t] = c->tab_npipe[oc];
        }
    }
    c->n_cols += n;
    for (k = 0; k < 12; k++) {
        Py_DECREF(seqs[k]);
    }
    Py_DECREF(r);
    return n;
fail:
    for (k = 0; k < 12; k++) {
        Py_XDECREF(seqs[k]);
    }
    Py_DECREF(r);
    return -1;
}

/* ---------------- argument unpacking helpers ---------------- */

static int
seq_i64(PyObject *seq, Py_ssize_t i, int64_t *out)
{
    PyObject *it = PySequence_GetItem(seq, i);
    if (it == NULL) {
        return -1;
    }
    long long v = PyLong_AsLongLong(it);
    Py_DECREF(it);
    if (v == -1 && PyErr_Occurred()) {
        return -1;
    }
    *out = (int64_t)v;
    return 0;
}

static int64_t *
seq_to_i64(PyObject *seq, Py_ssize_t *n_out)
{
    Py_ssize_t n = PySequence_Size(seq);
    if (n < 0) {
        return NULL;
    }
    int64_t *arr = (int64_t *)malloc((size_t)(n ? n : 1) * sizeof(int64_t));
    if (arr == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    Py_ssize_t i;
    for (i = 0; i < n; i++) {
        if (seq_i64(seq, i, arr + i)) {
            free(arr);
            return NULL;
        }
    }
    *n_out = n;
    return arr;
}

static int
cmp_i64(const void *a, const void *b)
{
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* ---------------- the run loop ---------------- */

static PyObject *
native_run(PyObject *self, PyObject *args)
{
    PyObject *scalars, *fu_obj, *geom, *tables, *p_tab, *cols, *cbs;
    long long max_insts_ll, warmup_ll;
    if (!PyArg_ParseTuple(args, "OOOOOOOLL", &scalars, &fu_obj, &geom,
                          &tables, &p_tab, &cols, &cbs, &max_insts_ll,
                          &warmup_ll)) {
        return NULL;
    }

    Ctx cx;
    memset(&cx, 0, sizeof cx);
    Ctx *c = &cx;
    Py_buffer bufs[12];
    int nbufs = 0;
    int64_t *tab_alloc[4] = {NULL, NULL, NULL, NULL};
    PyObject *result = NULL;
    int status = 0;       /* 0 ok / 1 watchdog / 2 ring-horizon */
    int64_t head_tag = -1;
    int64_t num_arch = 0;
    Py_ssize_t n_pre = 0;
    int k;

    /* -- scalars ------------------------------------------------- */
    {
        int64_t s[22];
        int i;
        if (!PyTuple_Check(scalars) || PyTuple_GET_SIZE(scalars) != 22) {
            PyErr_SetString(PyExc_TypeError, "scalars must be a 22-tuple");
            return NULL;
        }
        for (i = 0; i < 22; i++) {
            if (seq_i64(scalars, i, s + i)) {
                return NULL;
            }
        }
        c->width = s[0];
        c->ruu_size = s[1];
        c->lsq_size = s[2];
        c->front_depth = s[3];
        c->exec_offset = s[4];
        c->agen_lat = s[5];
        c->assumed = s[6];
        c->spec_window = s[7];
        c->detect = s[8];
        c->seq_mode = (int)s[9];
        c->tag_elim_mode = (int)s[10];
        c->sequential_rf = (int)s[11];
        c->crossbar_rf = (int)s[12];
        c->fast_now_only = (int)s[13];
        c->non_selective = (int)s[14];
        c->half_rename = (int)s[15];
        c->half_bypass = (int)s[16];
        c->watchdog = s[17];
        c->ring_size = s[18];
        num_arch = s[19];
        c->p_mask = s[20];
        c->p_mid = s[21];
        c->ring_mask = c->ring_size - 1;
    }
    {
        int i;
        for (i = 0; i < 5; i++) {
            if (seq_i64(fu_obj, i, c->fu_counts + i)) {
                return NULL;
            }
        }
    }
    c->p_tab = p_tab;
    if (!PyList_Check(p_tab)) {
        PyErr_SetString(PyExc_TypeError, "predictor table must be a list");
        return NULL;
    }

    /* -- callbacks (borrowed from the cbs tuple) ------------------ */
    if (!PyTuple_Check(cbs) || PyTuple_GET_SIZE(cbs) != 5) {
        PyErr_SetString(PyExc_TypeError, "callbacks must be a 5-tuple");
        return NULL;
    }
    c->predict_cb = PyTuple_GET_ITEM(cbs, 0);
    c->resolve_cb = PyTuple_GET_ITEM(cbs, 1);
    c->pair_cb = PyTuple_GET_ITEM(cbs, 2);
    c->warmup_cb = PyTuple_GET_ITEM(cbs, 3);
    c->ingest_cb = PyTuple_GET_ITEM(cbs, 4);

    /* -- caches --------------------------------------------------- */
    {
        int64_t g[13];
        int i;
        for (i = 0; i < 13; i++) {
            if (seq_i64(geom, i, g + i)) {
                return NULL;
            }
        }
        if (cache_init(&c->il1, g[0], g[1], g[2]) ||
            cache_init(&c->dl1, g[3], g[4], g[5]) ||
            cache_init(&c->l2, g[6], g[7], g[8])) {
            PyErr_NoMemory();
            goto cleanup;
        }
        c->il1_lat = g[9];
        c->dl1_lat = g[10];
        c->l2_lat = g[11];
        c->mem_lat = g[12];
    }

    /* -- per-opclass tables --------------------------------------- */
    {
        Py_ssize_t n0 = 0, nn = 0;
        for (k = 0; k < 4; k++) {
            tab_alloc[k] = seq_to_i64(PyTuple_GET_ITEM(tables, k), &nn);
            if (tab_alloc[k] == NULL) {
                goto cleanup;
            }
            if (k == 0) {
                n0 = nn;
            }
            else if (nn != n0) {
                PyErr_SetString(PyExc_ValueError,
                                "opclass tables disagree on length");
                goto cleanup;
            }
        }
        c->tab_rank = tab_alloc[0];
        c->tab_pool = tab_alloc[1];
        c->tab_npipe = tab_alloc[2];
        c->tab_lat = tab_alloc[3];
        c->n_opclass = n0;
    }

    /* -- decode columns ------------------------------------------- */
    if (cols != Py_None) {
        if (!PyTuple_Check(cols) || PyTuple_GET_SIZE(cols) != 12) {
            PyErr_SetString(PyExc_TypeError,
                            "columns must be None or a 12-tuple");
            goto cleanup;
        }
        for (k = 0; k < 12; k++) {
            if (PyObject_GetBuffer(PyTuple_GET_ITEM(cols, k), &bufs[k],
                                   PyBUF_SIMPLE)) {
                goto cleanup;
            }
            nbufs++;
            if (bufs[k].len % 8) {
                PyErr_SetString(PyExc_ValueError,
                                "column buffer must hold int64 items");
                goto cleanup;
            }
            Py_ssize_t ln = bufs[k].len / 8;
            if (k == 0) {
                n_pre = ln;
            }
            else if (ln != n_pre) {
                PyErr_SetString(PyExc_ValueError,
                                "column buffers disagree on length");
                goto cleanup;
            }
        }
        c->ocls = (const int64_t *)bufs[0].buf;
        c->pc = (const int64_t *)bufs[1].buf;
        c->ctrl = (const int64_t *)bufs[2].buf;
        c->load = (const int64_t *)bufs[3].buf;
        c->store = (const int64_t *)bufs[4].buf;
        c->nop = (const int64_t *)bufs[5].buf;
        c->dest = (const int64_t *)bufs[6].buf;
        c->ndeps = (const int64_t *)bufs[7].buf;
        c->dep0 = (const int64_t *)bufs[8].buf;
        c->dep1 = (const int64_t *)bufs[9].buf;
        c->addr = (const int64_t *)bufs[10].buf;
        c->faddr = (const int64_t *)bufs[11].buf;
        c->n_cols = n_pre;
        c->cols_owned = 0;
    }
    else {
        c->cols_owned = 1;
        c->n_cols = 0;
    }

    /* -- per-tag state + stamped tables --------------------------- */
    if (ensure_cap(c, n_pre > 0 ? n_pre : CHUNK)) {
        PyErr_NoMemory();
        goto cleanup;
    }
    {
        Py_ssize_t t;
        for (t = 0; t < n_pre; t++) {
            int64_t oc = c->ocls[t];
            if (oc < 0 || oc >= (int64_t)c->n_opclass) {
                PyErr_SetString(PyExc_ValueError,
                                "op class index out of range");
                goto cleanup;
            }
            c->rkey[t] = (c->tab_rank[oc] << KEY_SHIFT) | t;
            c->latv[t] = c->tab_lat[oc];
            c->poolv[t] = c->tab_pool[oc];
            c->npipe[t] = c->tab_npipe[oc];
        }
    }

    /* -- event rings, machine state ------------------------------- */
    c->k_buckets = (Vec *)calloc((size_t)c->ring_size, sizeof(Vec));
    c->sw_buckets = (Vec *)calloc((size_t)c->ring_size, sizeof(Vec));
    c->b_buckets = (Vec *)calloc((size_t)c->ring_size, sizeof(Vec));
    c->c_buckets = (Vec *)calloc((size_t)c->ring_size, sizeof(Vec));
    c->rename_tbl = (int64_t *)malloc((size_t)num_arch * sizeof(int64_t));
    if (c->k_buckets == NULL || c->sw_buckets == NULL ||
        c->b_buckets == NULL || c->c_buckets == NULL ||
        c->rename_tbl == NULL) {
        PyErr_NoMemory();
        goto cleanup;
    }
    {
        Py_ssize_t i;
        for (i = 0; i < num_arch; i++) {
            c->rename_tbl[i] = -1;
        }
    }
    if (ring_init(&c->fr_arr, 64) || ring_init(&c->fr_tag, 64) ||
        ring_init(&c->rob, c->ruu_size + 1) ||
        ring_init(&c->lsq, c->lsq_size + 1)) {
        PyErr_NoMemory();
        goto cleanup;
    }
    c->pending_tag = -1;
    c->fetch_resume = 0;
    c->fetch_blocked = -1;
    c->last_fetch_line = -1;
    c->fu_cycle = -1;
    c->bubble_cycle = -1;

    /* ============================================================ */
    {
        const int64_t width = c->width;
        const int64_t max_insts = (int64_t)max_insts_ll;
        const int64_t warmup = (int64_t)warmup_ll;
        const int64_t budget = max_insts + warmup;
        int measured_started = warmup == 0;
        int decoded = n_pre > 0;
        int64_t now = 0;

        for (;;) {
            now++;
            c->now = now;

            /* ---- phase 1: event delivery ------------------------ */
            int64_t ev_hi = (now << 2) | 3;
            if (c->ev_heap.len && c->ev_heap.d[0] <= ev_hi) {
                int64_t idx = now & c->ring_mask;
                while (c->ev_heap.len && c->ev_heap.d[0] <= ev_hi) {
                    int ring = (int)(heap_pop(&c->ev_heap) & 3);
                    if (ring == 2) {
                        Vec *bkt = &c->b_buckets[idx];
                        Py_ssize_t n0 = bkt->len, i;
                        for (i = 0; i + 2 < n0 + 2; i += 3) {
                            int64_t pt = bkt->d[i];
                            int64_t pep = bkt->d[i + 1];
                            /* bkt->d[i + 2] (data_valid) is unused,
                             * exactly as in engine.py */
                            if (c->epoch[pt] != pep || !c->sb_alive[pt]) {
                                continue;
                            }
                            c->sb_bc[pt] = now;
                            c->sb_valid[pt] = 1;
                            Vec *clist = &c->cons[pt];
                            Py_ssize_t ci;
                            for (ci = 0; ci < clist->len; ci++) {
                                int64_t enc = clist->d[ci];
                                int64_t ct = enc >> 2;
                                int64_t j = (enc & 3) - 1;
                                if (j < 0) {
                                    if (c->mdt[ct] == pt && !c->mdr[ct]) {
                                        c->mdr[ct] = 1;
                                        if (c->st[ct] == 0 &&
                                            !c->inrd[ct] &&
                                            entry_ready(c, ct)) {
                                            c->inrd[ct] = 1;
                                            if (vec_push(&c->ready,
                                                         c->rkey[ct])) {
                                                c->nomem = 1;
                                            }
                                        }
                                    }
                                    continue;
                                }
                                int64_t oi = (ct << 1) + j;
                                if (c->o_tag[oi] != pt) {
                                    continue;
                                }
                                if (c->o_arr[oi] == -1) {
                                    c->o_arr[oi] = now;
                                    if (!c->rec[ct] && c->nops[ct] == 2) {
                                        if (record_pair(c, ct)) {
                                            goto cleanup;
                                        }
                                    }
                                }
                                if (c->o_rdy[oi]) {
                                    continue;
                                }
                                if (c->seq_mode && c->nops[ct] == 2 &&
                                    j != c->fastside[ct]) {
                                    /* slow-bus delivery, one cycle later */
                                    int64_t f[3] = {ct, j, pt};
                                    ev_sched(c, c->sw_buckets, 1, now + 1,
                                             f, 3);
                                }
                                else {
                                    c->o_rdy[oi] = 1;
                                    c->o_rc[oi] = now;
                                    if (c->st[ct] == 0 && !c->inrd[ct] &&
                                        entry_ready(c, ct)) {
                                        c->inrd[ct] = 1;
                                        if (vec_push(&c->ready,
                                                     c->rkey[ct])) {
                                            c->nomem = 1;
                                        }
                                    }
                                }
                            }
                        }
                        if (bkt->len > n0) {
                            memmove(bkt->d, bkt->d + n0,
                                    (size_t)(bkt->len - n0) *
                                        sizeof(int64_t));
                            bkt->len -= n0;
                        }
                        else {
                            bkt->len = 0;
                        }
                    }
                    else if (ring == 3) {
                        /* only control instructions get completion
                         * events; everything else completes lazily */
                        Vec *bkt = &c->c_buckets[idx];
                        Py_ssize_t n0 = bkt->len, i;
                        for (i = 0; i + 1 < n0 + 1; i += 2) {
                            int64_t t = bkt->d[i];
                            int64_t ep = bkt->d[i + 1];
                            if (c->epoch[t] == ep && c->st[t] == 1) {
                                c->st[t] = 2;  /* _complete */
                                if (resolve_branch(c, t)) {
                                    goto cleanup;
                                }
                            }
                        }
                        if (bkt->len > n0) {
                            memmove(bkt->d, bkt->d + n0,
                                    (size_t)(bkt->len - n0) *
                                        sizeof(int64_t));
                            bkt->len -= n0;
                        }
                        else {
                            bkt->len = 0;
                        }
                    }
                    else if (ring == 0) {
                        Vec *bkt = &c->k_buckets[idx];
                        Py_ssize_t n0 = bkt->len, i;
                        for (i = 0; i + 4 < n0 + 4; i += 5) {
                            process_kill(c, bkt->d[i], bkt->d[i + 1],
                                         bkt->d[i + 2], bkt->d[i + 3],
                                         bkt->d[i + 4]);
                        }
                        if (bkt->len > n0) {
                            memmove(bkt->d, bkt->d + n0,
                                    (size_t)(bkt->len - n0) *
                                        sizeof(int64_t));
                            bkt->len -= n0;
                        }
                        else {
                            bkt->len = 0;
                        }
                    }
                    else {
                        Vec *bkt = &c->sw_buckets[idx];
                        Py_ssize_t n0 = bkt->len, i;
                        for (i = 0; i + 2 < n0 + 2; i += 3) {
                            /* _deliver_slow */
                            int64_t ct = bkt->d[i];
                            int64_t j = bkt->d[i + 1];
                            int64_t pt = bkt->d[i + 2];
                            int64_t oi = (ct << 1) + j;
                            if (c->o_rdy[oi] || c->o_tag[oi] != pt) {
                                continue;
                            }
                            if (c->sb_alive[pt] && !c->sb_valid[pt]) {
                                continue;  /* invalidated meanwhile */
                            }
                            c->o_rdy[oi] = 1;
                            c->o_rc[oi] = now;
                            if (c->st[ct] == 0 && !c->inrd[ct] &&
                                entry_ready(c, ct)) {
                                c->inrd[ct] = 1;
                                if (vec_push(&c->ready, c->rkey[ct])) {
                                    c->nomem = 1;
                                }
                            }
                        }
                        if (bkt->len > n0) {
                            memmove(bkt->d, bkt->d + n0,
                                    (size_t)(bkt->len - n0) *
                                        sizeof(int64_t));
                            bkt->len -= n0;
                        }
                        else {
                            bkt->len = 0;
                        }
                    }
                }
            }

            /* ---- phase 2: wakeup/select (atomic) — issue -------- */
            if (c->ready.len) {
                if (c->fu_cycle != now) {
                    /* begin_cycle, deferred */
                    int pi;
                    c->fu_cycle = now;
                    for (pi = 0; pi < 5; pi++) {
                        c->fu_issued[pi] = 0;
                        Vec *busy = &c->fu_busy[pi];
                        if (busy->len) {
                            Py_ssize_t w = 0, r;
                            for (r = 0; r < busy->len; r++) {
                                if (busy->d[r] > now) {
                                    busy->d[w++] = busy->d[r];
                                }
                            }
                            busy->len = w;
                        }
                    }
                }
                int64_t avail = width -
                    (c->bubble_cycle == now ? c->bubble_n : 0);
                int64_t rf_ports_used = 0;
                /* sorted(ready) snapshot */
                c->ready_snap.len = 0;
                {
                    Py_ssize_t i;
                    for (i = 0; i < c->ready.len; i++) {
                        if (vec_push(&c->ready_snap, c->ready.d[i])) {
                            c->nomem = 1;
                        }
                    }
                }
                qsort(c->ready_snap.d, (size_t)c->ready_snap.len,
                      sizeof(int64_t), cmp_i64);
                Py_ssize_t si;
                for (si = 0; si < c->ready_snap.len; si++) {
                    if (avail <= 0) {
                        break;
                    }
                    int64_t key = c->ready_snap.d[si];
                    int64_t t = key & TAG_MASK;
                    if (c->st[t] != 0 || c->elig[t] > now) {
                        continue;
                    }
                    /* entry_ready, inlined */
                    int64_t n = c->nops[t];
                    int64_t b = t << 1;
                    int is_rdy;
                    if (!c->mdr[t]) {
                        is_rdy = 0;
                    }
                    else if (c->tag_elim_mode && n == 2 &&
                             c->replays[t] == 0) {
                        is_rdy = c->o_rdy[b + c->fastside[t]] == 1;
                    }
                    else if (n == 0) {
                        is_rdy = 1;
                    }
                    else if (!c->o_rdy[b]) {
                        is_rdy = 0;
                    }
                    else {
                        is_rdy = n == 1 || c->o_rdy[b + 1] == 1;
                    }
                    if (!is_rdy) {
                        /* stale ready-set entry (un-woken by a replay) */
                        vec_remove(&c->ready, key);
                        c->inrd[t] = 0;
                        continue;
                    }
                    int64_t pool = c->poolv[t];
                    if (c->fu_issued[pool] + c->fu_busy[pool].len >=
                        c->fu_counts[pool]) {
                        continue;
                    }
                    if (c->crossbar_rf) {
                        int64_t needed = 0;
                        int64_t j;
                        for (j = 0; j < n; j++) {
                            int64_t oi = b + j;
                            if (!(c->o_rdy[oi] && c->o_rc[oi] == now &&
                                  !c->o_rai[oi])) {
                                needed++;
                            }
                        }
                        if (rf_ports_used + needed > width) {
                            c->rf_rejections++;
                            continue;
                        }
                        rf_ports_used += needed;
                    }
                    int seq_access = 0;
                    if (c->sequential_rf && n >= 2) {
                        int has_now = 0;
                        int64_t j;
                        for (j = 0; j < n; j++) {
                            if (c->fast_now_only && j != c->fastside[t]) {
                                continue;  /* nowR removed (combined) */
                            }
                            int64_t oi = b + j;
                            if (c->o_rdy[oi] && c->o_rc[oi] == now &&
                                !c->o_rai[oi]) {
                                has_now = 1;
                                break;
                            }
                        }
                        if (!has_now) {
                            c->rf_seq_decisions++;
                            seq_access = 1;
                        }
                    }
                    /* take_slot + fu.issue */
                    avail--;
                    c->sel_slots_taken++;
                    if (seq_access) {
                        int64_t nb = now + 1;
                        if (c->bubble_cycle == nb) {
                            c->bubble_n++;
                        }
                        else {
                            c->bubble_cycle = nb;
                            c->bubble_n = 1;
                        }
                        c->sel_bubbles++;
                    }
                    c->fu_issued[pool]++;
                    if (c->npipe[t]) {
                        if (vec_push(&c->fu_busy[pool],
                                     now + c->latv[t])) {
                            c->nomem = 1;
                        }
                    }
                    /* ---- _issue (inlined) ---- */
                    vec_remove(&c->ready, key);
                    c->inrd[t] = 0;
                    c->st[t] = 1;
                    c->issue_c[t] = now;
                    int64_t ep = c->epoch[t] + 1;
                    c->epoch[t] = ep;
                    c->s_issued++;
                    if (n == 2) {
                        /* _record_issue_stats */
                        int64_t r0 = c->o_rai[b];
                        int64_t r1 = c->o_rai[b + 1];
                        if (r0 && r1) {
                            c->rfcat[t] = 1;
                        }
                        else if ((c->o_rdy[b] && c->o_rc[b] == now &&
                                  !r0) ||
                                 (c->o_rdy[b + 1] &&
                                  c->o_rc[b + 1] == now && !r1)) {
                            c->rfcat[t] = 2;
                        }
                        else {
                            c->rfcat[t] = 3;
                        }
                        if (c->seq_mode) {
                            int64_t oi = b + 1 - c->fastside[t];
                            if (c->o_rc[oi] == now && !c->o_rai[oi]) {
                                c->s_seq_slow++;
                            }
                        }
                        if (c->tag_elim_mode) {
                            /* verify_at_issue */
                            int64_t oi = b + 1 - c->fastside[t];
                            if (!c->o_rai[oi]) {
                                int64_t pt = c->o_tag[oi];
                                if (!(c->o_rdy[oi] &&
                                      (pt == -1 || !c->sb_alive[pt] ||
                                       c->sb_valid[pt]))) {
                                    c->s_te++;
                                    int64_t kc = now + c->detect;
                                    int64_t f[5] = {t, ep, now, kc - 1, 1};
                                    ev_sched(c, c->k_buckets, 0, kc, f, 5);
                                }
                            }
                        }
                    }
                    if (c->load[t]) {
                        /* _issue_load */
                        if (c->fill_c[t] == -1) {
                            int64_t actual_mem;
                            if (c->fwd[t]) {
                                actual_mem = c->dl1_lat;  /* SQ data */
                            }
                            else {
                                /* inlined MemoryHierarchy.load */
                                int64_t addr = c->addr[t];
                                int64_t line = addr >> c->dl1.shift;
                                c->c_dl1a++;
                                if (cache_access(&c->dl1, line,
                                                 &c->c_dl1e)) {
                                    c->c_dl1h++;
                                    actual_mem = c->dl1_lat;
                                }
                                else {
                                    c->c_dl1m++;
                                    int64_t l2line = addr >> c->l2.shift;
                                    c->c_l2a++;
                                    if (cache_access(&c->l2, l2line,
                                                     &c->c_l2e)) {
                                        c->c_l2h++;
                                        actual_mem =
                                            c->dl1_lat + c->l2_lat;
                                    }
                                    else {
                                        c->c_l2m++;
                                        actual_mem = c->dl1_lat +
                                            c->l2_lat + c->mem_lat;
                                    }
                                }
                            }
                            c->fill_c[t] = now + c->agen_lat + actual_mem;
                        }
                        int64_t assumed_cycle = now + c->assumed;
                        int64_t fill = c->fill_c[t];
                        if (fill <= assumed_cycle) {
                            /* data arrives within the assumed-hit
                             * schedule */
                            int64_t f[3] = {t, ep, 1};
                            ev_sched(c, c->b_buckets, 2, assumed_cycle,
                                     f, 3);
                            c->cmp_c[t] = assumed_cycle +
                                c->exec_offset - c->agen_lat;
                            c->cmp_ep[t] = ep;
                            continue;
                        }
                        /* latency mispredict: speculative broadcast,
                         * kill after the resolution shadow,
                         * rebroadcast at fill */
                        {
                            int64_t f[3] = {t, ep, 0};
                            ev_sched(c, c->b_buckets, 2, assumed_cycle,
                                     f, 3);
                        }
                        int64_t kc = assumed_cycle + c->spec_window;
                        if (c->non_selective) {
                            int64_t f[5] = {t, ep, assumed_cycle, kc - 1,
                                            0};
                            ev_sched(c, c->k_buckets, 0, kc, f, 5);
                        }
                        else {
                            int64_t f[5] = {t, ep, -1, 0, 0};
                            ev_sched(c, c->k_buckets, 0, kc, f, 5);
                        }
                        int64_t rebroadcast =
                            fill > kc + 1 ? fill : kc + 1;
                        if (rebroadcast - now > c->ring_size) {
                            status = 2;
                            goto done;
                        }
                        {
                            int64_t f[3] = {t, ep, 1};
                            ev_sched(c, c->b_buckets, 2, rebroadcast,
                                     f, 3);
                        }
                        int64_t cc = fill + c->exec_offset - c->agen_lat;
                        if (cc < rebroadcast) {
                            cc = rebroadcast;
                        }
                        c->cmp_c[t] = cc;
                        c->cmp_ep[t] = ep;
                        continue;
                    }
                    int64_t latency = c->latv[t];
                    if (seq_access) {
                        latency += 1;
                        c->s_seq_rf++;
                    }
                    if (c->half_bypass && n == 2) {
                        if ((c->o_rdy[b] && c->o_rc[b] == now &&
                             !c->o_rai[b]) &&
                            (c->o_rdy[b + 1] && c->o_rc[b + 1] == now &&
                             !c->o_rai[b + 1])) {
                            latency += 1;
                            c->s_dbl++;
                        }
                    }
                    int64_t bc = now + latency;
                    if (latency > c->ring_size) {
                        status = 2;
                        goto done;
                    }
                    {
                        int64_t f[3] = {t, ep, 1};
                        ev_sched(c, c->b_buckets, 2, bc, f, 3);
                    }
                    if (c->ctrl[t]) {
                        /* completes via an exact-cycle event */
                        c->cmp_ep[t] = -1;
                        int64_t cc = bc + c->exec_offset;
                        int64_t f[2] = {t, ep};
                        ev_sched(c, c->c_buckets, 3, cc, f, 2);
                    }
                    else {
                        c->cmp_c[t] = bc + c->exec_offset;
                        c->cmp_ep[t] = ep;
                    }
                }
            }

            /* ---- phase 3: dispatch ------------------------------ */
            if (c->fr_arr.count && RING_FRONT(&c->fr_arr) <= now) {
                int64_t dispatched = 0;
                int64_t rename_tokens = c->half_rename ? width : NEVER;
                while (c->fr_arr.count && RING_FRONT(&c->fr_arr) <= now &&
                       dispatched < width) {
                    int64_t t = RING_FRONT(&c->fr_tag);
                    if (c->rob.count >= c->ruu_size) {
                        break;
                    }
                    int64_t is_load = c->load[t];
                    int64_t is_mem = is_load || c->store[t];
                    if (is_mem && c->lsq.count >= c->lsq_size) {
                        break;
                    }
                    int64_t nop = c->nop[t];
                    if (c->half_rename && !nop) {
                        int64_t needed = c->ndeps[t];
                        if (needed < 1) {
                            needed = 1;
                        }
                        if (needed > rename_tokens) {
                            c->s_rename_stalls++;
                            break;
                        }
                        rename_tokens -= needed;
                    }
                    ring_pop(&c->fr_arr);
                    ring_pop(&c->fr_tag);
                    /* ---- _insert (inlined) ---- */
                    if (nop) {
                        c->st[t] = 2;
                        if (ring_push(&c->rob, t)) {
                            c->nomem = 1;
                        }
                        c->s_dispatched++;
                    }
                    else {
                        int64_t b = t << 1;
                        int64_t nsrc = 0;
                        int64_t n_rai = 0;
                        int64_t kk;
                        for (kk = 0; kk < c->ndeps[t]; kk++) {
                            /* _rename_sources */
                            int64_t arch =
                                kk == 0 ? c->dep0[t] : c->dep1[t];
                            int64_t oi = b + nsrc;
                            nsrc++;
                            int64_t pt = c->rename_tbl[arch];
                            if (pt == -1 || !c->sb_alive[pt]) {
                                /* architectural value */
                                c->o_rdy[oi] = 1;
                                c->o_rai[oi] = 1;
                                n_rai++;
                            }
                            else if (c->sb_valid[pt] &&
                                     c->sb_bc[pt] != -1 &&
                                     c->sb_bc[pt] <= now) {
                                /* ready at insert */
                                c->o_tag[oi] = pt;
                                c->o_rdy[oi] = 1;
                                c->o_rai[oi] = 1;
                                n_rai++;
                            }
                            else {
                                c->o_tag[oi] = pt;
                            }
                        }
                        c->nops[t] = nsrc;
                        c->rai[t] = n_rai;
                        c->sb_alive[t] = 1;  /* Scoreboard.allocate */
                        int64_t j;
                        for (j = 0; j < nsrc; j++) {
                            int64_t pt = c->o_tag[b + j];
                            if (pt != -1 && c->sb_alive[pt]) {
                                if (vec_push(&c->cons[pt],
                                             (t << 2) | (j + 1))) {
                                    c->nomem = 1;
                                }
                            }
                        }
                        int64_t dest = c->dest[t];
                        if (dest >= 0) {
                            c->rename_tbl[dest] = t;
                        }
                        if (nsrc == 2) {
                            /* assign_sides: predicted-last == fast side
                             * (fastside defaults to RIGHT) */
                            PyObject *pv = PyList_GET_ITEM(
                                c->p_tab,
                                (Py_ssize_t)(c->pc[t] & c->p_mask));
                            long v = PyLong_AsLong(pv);
                            if (v == -1 && PyErr_Occurred()) {
                                goto cleanup;
                            }
                            if (v <= c->p_mid) {
                                c->fastside[t] = 0;
                            }
                        }
                        c->elig[t] = now + 1;
                        if (ring_push(&c->rob, t)) {
                            c->nomem = 1;
                        }
                        if (is_mem) {
                            if (is_load) {
                                /* _setup_load_forwarding: newest
                                 * in-LSQ store to the 8-byte line
                                 * (== engine.py's store_line dict) */
                                int64_t line8 = c->addr[t] & -8;
                                int64_t best = -1;
                                Py_ssize_t li;
                                for (li = c->lsq.count - 1; li >= 0;
                                     li--) {
                                    int64_t s2 = RING_AT(&c->lsq, li);
                                    if (c->store[s2] &&
                                        (c->addr[s2] & -8) == line8) {
                                        best = s2;
                                        break;
                                    }
                                }
                                if (best != -1) {
                                    c->fwd[t] = 1;
                                    if (c->st[best] == 0) {
                                        c->mdt[t] = best;
                                        c->mdr[t] = 0;
                                        if (vec_push(&c->cons[best],
                                                     t << 2)) {
                                            c->nomem = 1;
                                        }
                                    }
                                }
                            }
                            if (ring_push(&c->lsq, t)) {
                                c->nomem = 1;
                            }
                        }
                        /* record_dispatch */
                        c->s_dispatched++;
                        if (nsrc == 2) {
                            c->s_two_src++;
                            if (n_rai == 0) {
                                c->s_rai0++;
                            }
                            else if (n_rai == 1) {
                                c->s_rai1++;
                            }
                            else {
                                c->s_rai2++;
                            }
                        }
                        /* _maybe_ready (fresh entry) */
                        if (c->mdr[t]) {
                            int is_rdy;
                            if (c->tag_elim_mode && nsrc == 2) {
                                is_rdy =
                                    c->o_rdy[b + c->fastside[t]] == 1;
                            }
                            else if (nsrc == 0) {
                                is_rdy = 1;
                            }
                            else if (!c->o_rdy[b]) {
                                is_rdy = 0;
                            }
                            else {
                                is_rdy = nsrc == 1 ||
                                    c->o_rdy[b + 1] == 1;
                            }
                            if (is_rdy) {
                                c->inrd[t] = 1;
                                if (vec_push(&c->ready, c->rkey[t])) {
                                    c->nomem = 1;
                                }
                            }
                        }
                    }
                    dispatched++;
                }
            }

            /* ---- phase 4: fetch --------------------------------- */
            if (now >= c->fetch_resume) {
                int64_t arrive = now + c->front_depth;
                int64_t fetched = 0;
                while (fetched < width) {
                    int64_t t = c->pending_tag;
                    if (t == -1) {
                        t = (int64_t)c->n_tags;
                        if (t < (int64_t)c->n_cols) {
                            /* columns already decoded: ingest is free */
                            c->n_tags = (Py_ssize_t)(t + 1);
                            c->pending_tag = t;
                        }
                        else if (decoded) {
                            c->feed_done = 1;
                            c->fetch_resume = NEVER;
                            break;
                        }
                        else {
                            Py_ssize_t got = ingest_chunk(c);
                            if (got < 0) {
                                goto cleanup;
                            }
                            if (got == 0) {
                                c->feed_done = 1;
                                c->fetch_resume = NEVER;
                                break;
                            }
                            c->n_tags = (Py_ssize_t)(t + 1);
                            c->pending_tag = t;
                        }
                    }
                    int64_t line = c->faddr[t] >> c->il1.shift;
                    if (line != c->last_fetch_line) {
                        /* inlined MemoryHierarchy.fetch */
                        c->last_fetch_line = line;
                        c->c_il1a++;
                        if (cache_access(&c->il1, line, &c->c_il1e)) {
                            c->c_il1h++;
                        }
                        else {
                            c->c_il1m++;
                            int64_t l2line = c->faddr[t] >> c->l2.shift;
                            int64_t miss_lat;
                            c->c_l2a++;
                            if (cache_access(&c->l2, l2line,
                                             &c->c_l2e)) {
                                c->c_l2h++;
                                miss_lat = c->il1_lat + c->l2_lat;
                            }
                            else {
                                c->c_l2m++;
                                miss_lat = c->il1_lat + c->l2_lat +
                                    c->mem_lat;
                            }
                            c->fetch_resume = now + miss_lat;
                            break;
                        }
                    }
                    c->pending_tag = -1;
                    c->s_fetched++;
                    fetched++;
                    if (ring_push(&c->fr_arr, arrive) ||
                        ring_push(&c->fr_tag, t)) {
                        c->nomem = 1;
                    }
                    if (c->ctrl[t]) {
                        /* _fetch_control */
                        PyObject *r = PyObject_CallFunction(
                            c->predict_cb, "L", (long long)t);
                        if (r == NULL) {
                            goto cleanup;
                        }
                        long code = PyLong_AsLong(r);
                        Py_DECREF(r);
                        if (code == -1 && PyErr_Occurred()) {
                            goto cleanup;
                        }
                        if (code == 2) {
                            /* mispredict: stall until resolution */
                            c->fetch_blocked = t;
                            c->fetch_resume = NEVER;
                            break;
                        }
                        if (code == 1) {
                            break;  /* stop at the first taken branch */
                        }
                    }
                }
            }

            /* ---- phase 5: commit -------------------------------- */
            if (c->rob.count) {
                int64_t committed_n = 0;
                while (committed_n < width && c->rob.count) {
                    int64_t t = RING_FRONT(&c->rob);
                    int64_t hs = c->st[t];
                    if (hs != 2 &&
                        !(hs == 1 && c->cmp_ep[t] == c->epoch[t] &&
                          c->cmp_c[t] <= now)) {
                        break;
                    }
                    ring_pop(&c->rob);
                    if (c->store[t]) {
                        /* inlined MemoryHierarchy.store
                         * (write-allocate); LSQ leaves in program
                         * order, so the head is the committing op */
                        ring_pop(&c->lsq);
                        int64_t addr = c->addr[t];
                        int64_t line = addr >> c->dl1.shift;
                        c->c_dl1a++;
                        if (cache_access(&c->dl1, line, &c->c_dl1e)) {
                            c->c_dl1h++;
                        }
                        else {
                            c->c_dl1m++;
                            int64_t l2line = addr >> c->l2.shift;
                            c->c_l2a++;
                            if (cache_access(&c->l2, l2line,
                                             &c->c_l2e)) {
                                c->c_l2h++;
                            }
                            else {
                                c->c_l2m++;
                            }
                        }
                    }
                    else if (c->load[t]) {
                        ring_pop(&c->lsq);
                    }
                    int64_t dest = c->dest[t];
                    if (dest >= 0 && c->rename_tbl[dest] == t) {
                        c->rename_tbl[dest] = -1;
                    }
                    c->sb_alive[t] = 0;  /* Scoreboard.free */
                    c->cons[t].len = 0;  /* cons[t] = None */
                    int64_t rc = c->rfcat[t];
                    if (rc) {
                        if (rc == 1) {
                            c->s_rf_two++;
                        }
                        else if (rc == 2) {
                            c->s_rf_b2b++;
                        }
                        else {
                            c->s_rf_nb++;
                        }
                    }
                    c->s_committed++;
                    c->total_committed++;
                    c->last_commit = now;
                    committed_n++;
                }
            }

            /* ---- bookkeeping and loop exits --------------------- */
            c->s_cycles++;
            if (c->nomem) {
                PyErr_NoMemory();
                goto cleanup;
            }
            if (!measured_started && c->total_committed >= warmup) {
                PyObject *st24 = Py_BuildValue(
                    "(LLLLLLLLLLLLLLLLLLLLLLLL)",
                    (long long)c->s_cycles, (long long)c->s_fetched,
                    (long long)c->s_dispatched, (long long)c->s_two_src,
                    (long long)c->s_rai0, (long long)c->s_rai1,
                    (long long)c->s_rai2, (long long)c->s_committed,
                    (long long)c->s_issued, (long long)c->s_branches,
                    (long long)c->s_mispred, (long long)c->s_replayed,
                    (long long)c->s_lmr, (long long)c->s_rename_stalls,
                    (long long)c->s_seq_rf, (long long)c->s_dbl,
                    (long long)c->s_seq_slow, (long long)c->s_te,
                    (long long)c->s_rf_two, (long long)c->s_rf_b2b,
                    (long long)c->s_rf_nb, (long long)c->s_simul,
                    (long long)c->s_lap, (long long)c->s_lamp);
                if (st24 == NULL) {
                    goto cleanup;
                }
                PyObject *r =
                    PyObject_CallFunction(c->warmup_cb, "O", st24);
                Py_DECREF(st24);
                if (r == NULL) {
                    goto cleanup;
                }
                Py_DECREF(r);
                c->s_cycles = c->s_fetched = c->s_dispatched =
                    c->s_two_src = 0;
                c->s_rai0 = c->s_rai1 = c->s_rai2 = 0;
                c->s_committed = c->s_issued = c->s_branches =
                    c->s_mispred = 0;
                c->s_replayed = c->s_lmr = c->s_rename_stalls = 0;
                c->s_seq_rf = c->s_dbl = c->s_seq_slow = c->s_te = 0;
                c->s_rf_two = c->s_rf_b2b = c->s_rf_nb = 0;
                c->s_simul = c->s_lap = c->s_lamp = 0;
                measured_started = 1;
            }
            if (c->total_committed >= budget) {
                break;
            }
            if (c->feed_done && !c->fr_arr.count && !c->rob.count) {
                break;
            }
            if (now - c->last_commit > c->watchdog) {
                status = 1;
                goto done;
            }

            /* ---- fast-forward over provably dead cycles --------- */
            if (c->ready.len == 0 &&
                (!c->rob.count || c->st[RING_FRONT(&c->rob)] != 2) &&
                (!c->fr_arr.count || RING_FRONT(&c->fr_arr) > now + 1) &&
                c->fetch_resume > now + 1) {
                int64_t target = c->last_commit + c->watchdog + 1;
                if (c->rob.count) {
                    int64_t h = RING_FRONT(&c->rob);
                    if (c->st[h] == 1 && c->cmp_ep[h] == c->epoch[h]) {
                        int64_t cc = c->cmp_c[h];
                        if (cc < target) {
                            target = cc;
                        }
                    }
                }
                if (c->fr_arr.count) {
                    int64_t cc = RING_FRONT(&c->fr_arr);
                    if (cc < target) {
                        target = cc;
                    }
                }
                if (c->fetch_resume < target) {
                    target = c->fetch_resume;
                }
                if (c->ev_heap.len) {
                    int64_t cc = c->ev_heap.d[0] >> 2;
                    if (cc < target) {
                        target = cc;
                    }
                }
                if (target > now + 1) {
                    c->s_cycles += target - now - 1;
                    now = target - 1;
                }
            }
        }
        c->now = now;
    }

done:
    if (status == 1) {
        head_tag = c->rob.count ? RING_FRONT(&c->rob) : -1;
    }
    result = Py_BuildValue(
        "(iLLL(LLLLLLLLLLLLLLLLLLLLLLLL)(LLLLLLLLLLLL)(LLLL))",
        status, (long long)c->now, (long long)c->total_committed,
        (long long)head_tag,
        (long long)c->s_cycles, (long long)c->s_fetched,
        (long long)c->s_dispatched, (long long)c->s_two_src,
        (long long)c->s_rai0, (long long)c->s_rai1,
        (long long)c->s_rai2, (long long)c->s_committed,
        (long long)c->s_issued, (long long)c->s_branches,
        (long long)c->s_mispred, (long long)c->s_replayed,
        (long long)c->s_lmr, (long long)c->s_rename_stalls,
        (long long)c->s_seq_rf, (long long)c->s_dbl,
        (long long)c->s_seq_slow, (long long)c->s_te,
        (long long)c->s_rf_two, (long long)c->s_rf_b2b,
        (long long)c->s_rf_nb, (long long)c->s_simul,
        (long long)c->s_lap, (long long)c->s_lamp,
        (long long)c->c_il1a, (long long)c->c_il1h,
        (long long)c->c_il1m, (long long)c->c_il1e,
        (long long)c->c_dl1a, (long long)c->c_dl1h,
        (long long)c->c_dl1m, (long long)c->c_dl1e,
        (long long)c->c_l2a, (long long)c->c_l2h,
        (long long)c->c_l2m, (long long)c->c_l2e,
        (long long)c->sel_slots_taken, (long long)c->sel_bubbles,
        (long long)c->rf_rejections, (long long)c->rf_seq_decisions);

cleanup:
    {
        Py_ssize_t i;
        free(c->st);
        free(c->epoch);
        free(c->elig);
        free(c->inrd);
        free(c->issue_c);
        free(c->replays);
        free(c->nops);
        free(c->rai);
        free(c->rec);
        free(c->fastside);
        free(c->rfcat);
        free(c->mdt);
        free(c->mdr);
        free(c->fwd);
        free(c->fill_c);
        free(c->cmp_c);
        free(c->cmp_ep);
        free(c->o_tag);
        free(c->o_rdy);
        free(c->o_rai);
        free(c->o_rc);
        free(c->o_arr);
        free(c->sb_alive);
        free(c->sb_valid);
        free(c->sb_bc);
        if (c->cons != NULL) {
            for (i = 0; i < c->cap; i++) {
                vec_free(&c->cons[i]);
            }
            free(c->cons);
        }
        if (c->cols_owned) {
            free((void *)c->ocls);
            free((void *)c->pc);
            free((void *)c->ctrl);
            free((void *)c->load);
            free((void *)c->store);
            free((void *)c->nop);
            free((void *)c->dest);
            free((void *)c->ndeps);
            free((void *)c->dep0);
            free((void *)c->dep1);
            free((void *)c->addr);
            free((void *)c->faddr);
        }
        free(c->rkey);
        free(c->latv);
        free(c->poolv);
        free(c->npipe);
        if (c->k_buckets != NULL) {
            for (i = 0; i < c->ring_size; i++) {
                vec_free(&c->k_buckets[i]);
            }
            free(c->k_buckets);
        }
        if (c->sw_buckets != NULL) {
            for (i = 0; i < c->ring_size; i++) {
                vec_free(&c->sw_buckets[i]);
            }
            free(c->sw_buckets);
        }
        if (c->b_buckets != NULL) {
            for (i = 0; i < c->ring_size; i++) {
                vec_free(&c->b_buckets[i]);
            }
            free(c->b_buckets);
        }
        if (c->c_buckets != NULL) {
            for (i = 0; i < c->ring_size; i++) {
                vec_free(&c->c_buckets[i]);
            }
            free(c->c_buckets);
        }
        vec_free(&c->ev_heap);
        vec_free(&c->ready);
        vec_free(&c->ready_snap);
        for (i = 0; i < 5; i++) {
            vec_free(&c->fu_busy[i]);
        }
        free(c->rename_tbl);
        free(c->fr_arr.d);
        free(c->fr_tag.d);
        free(c->rob.d);
        free(c->lsq.d);
        cache_free(&c->il1);
        cache_free(&c->dl1);
        cache_free(&c->l2);
        for (k = 0; k < 4; k++) {
            free(tab_alloc[k]);
        }
        for (k = 0; k < nbufs; k++) {
            PyBuffer_Release(&bufs[k]);
        }
    }
    return result;
}

/* ---------------- module ---------------- */

static PyMethodDef native_methods[] = {
    {"run", native_run, METH_VARARGS,
     "Run the compiled cycle loop; see repro/fastsim/native.py."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.fastsim._native",
    "Compiled cycle-loop engine (C transliteration of fastsim/engine.py).",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *m = PyModule_Create(&native_module);
    if (m == NULL) {
        return NULL;
    }
    /* Bumped whenever the run() wire protocol changes; the wrapper
     * refuses to drive a stale prebuilt artifact. */
    if (PyModule_AddIntConstant(m, "ABI_VERSION", 1)) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
