"""Out-of-order pipeline substrate: configuration, structures, driver.

The pipeline follows the paper's Figure 1 base machine: a 12-stage
out-of-order design with speculative scheduling and configurable recovery,
evaluated at 4-wide and 8-wide (Table 1).
"""

from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    FunctionalUnitPool,
    Latencies,
    MachineConfig,
    RecoveryModel,
    RegFileModel,
    SchedulerModel,
)
from repro.pipeline.processor import Processor, SimulationResult, simulate
from repro.pipeline.stats import SimStats

__all__ = [
    "EIGHT_WIDE",
    "FOUR_WIDE",
    "FunctionalUnitPool",
    "Latencies",
    "MachineConfig",
    "RecoveryModel",
    "RegFileModel",
    "SchedulerModel",
    "Processor",
    "SimulationResult",
    "simulate",
    "SimStats",
]
