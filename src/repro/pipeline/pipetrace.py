"""ASCII pipeline trace rendering (sim-outorder's ptrace, in spirit).

Given a :class:`~repro.pipeline.processor.Processor` created with
``record_schedule=True``, render a per-instruction timeline::

    seq opcode   |  cycle 10        20
      0 LDQ      |  D..I----C=====R
      1 ADD      |  D....i..I-C===R

Markers: ``D`` dispatch (scheduler insert), ``i`` a squashed (replayed)
issue, ``I`` the final issue, ``C`` execution complete, ``R`` retire
(commit), ``-`` in flight between issue and completion, ``=`` completed but
waiting to retire, ``.`` waiting in the scheduler.

The same recorded schedule also exports to the Chrome trace-event format
for interactive viewing (:mod:`repro.obs.chrometrace`, ``repro trace
--format=chrome``); see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.pipeline.processor import Processor


def render_pipetrace(
    processor: Processor,
    first_seq: int = 0,
    count: int = 16,
) -> str:
    """Render the timelines of dynamic instructions [first_seq, +count)."""
    if processor.trace is None:
        raise SimulationError(
            "pipetrace needs a Processor(record_schedule=True) run"
        )
    records = [
        (seq, processor.trace[seq])
        for seq in range(first_seq, max(first_seq, first_seq + count))
        if seq in processor.trace and "insert" in processor.trace[seq]
    ]
    if not records:
        return "(no committed instructions in the requested range)"
    start = min(record["insert"] for _, record in records)
    end = max(record["commit"] for _, record in records)
    span = end - start + 1
    label_width = max(len(_label(seq, record)) for seq, record in records)
    lines = [
        f"{'instruction'.ljust(label_width)} | cycles {start}..{end}"
    ]
    for seq, record in records:
        lines.append(f"{_label(seq, record).ljust(label_width)} | {_lane(record, start, span)}")
    lines.append(
        "legend: D dispatch, i squashed issue, I issue, C complete, R retire"
    )
    return "\n".join(lines)


def _label(seq: int, record: dict) -> str:
    opcode = record.get("opcode", "?")
    return f"{seq:4d} {opcode}"


def _lane(record: dict, start: int, span: int) -> str:
    lane = [" "] * span
    insert = record["insert"]
    commit = record["commit"]
    # Eliminated NOPs commit without ever executing: no completion cycle.
    complete = record["complete"] if record.get("complete") is not None else commit
    issue_list = record.get("issues", [])
    final_issue = issue_list[-1] if issue_list else complete

    def put(cycle: int, marker: str) -> None:
        index = cycle - start
        if 0 <= index < span:
            lane[index] = marker

    for cycle in range(insert, commit + 1):
        put(cycle, ".")
    for cycle in range(final_issue, complete):
        put(cycle, "-")
    for cycle in range(complete, commit):
        put(cycle, "=")
    put(insert, "D")
    for squashed in issue_list[:-1]:
        put(squashed, "i")
    put(final_issue, "I")
    put(complete, "C")
    put(commit, "R")
    return "".join(lane)
