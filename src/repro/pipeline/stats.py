"""Simulation statistics: every counter the paper's figures need.

The recorder is fed by the processor at well-defined points:

* dispatch — Figure 4 (ready operands at insert) and stream composition;
* wakeup — Figure 6 (wakeup slack), Table 3 (order stability, left/right),
  Figure 7 (shadow predictor bank);
* issue — Figure 10 (register access categories), technique penalties;
* commit — IPC and final per-instruction categories.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.last_arrival import (
    DesignComparisonBank,
    OperandSide,
    ShadowPredictorBank,
)

#: Canonical list of the plain-integer counters on :class:`SimStats`.
#: Single source of truth for the result cache's record format, the stats
#: export (:mod:`repro.obs.export`) and metrics publishing — a counter
#: added here is persisted, exported and gated automatically.
STAT_COUNTER_FIELDS = (
    "cycles",
    "committed",
    "fetched",
    "dispatched",
    "issued",
    "replayed",
    "load_miss_replays",
    "tag_elim_misschedules",
    "branch_mispredicts",
    "branches",
    "two_source_dispatched",
    "two_pending_observed",
    "rf_back_to_back",
    "rf_two_ready",
    "rf_non_back_to_back",
    "seq_wakeup_slow_initiations",
    "simultaneous_wakeups",
    "last_arrival_mispredictions",
    "last_arrival_predictions",
    "sequential_rf_accesses",
    "rename_port_stalls",
    "double_bypass_delays",
)


@dataclass
class WakeupOrderStats:
    """Table 3: wakeup-order stability and last-arriving side split."""

    same_order: int = 0
    diff_order: int = 0
    last_left: int = 0
    last_right: int = 0
    simultaneous: int = 0
    _history: dict[int, OperandSide] = field(default_factory=dict, repr=False)

    def observe(self, pc: int, last_side: OperandSide | None) -> None:
        if last_side is None:
            self.simultaneous += 1
            return
        if last_side is OperandSide.LEFT:
            self.last_left += 1
        else:
            self.last_right += 1
        previous = self._history.get(pc)
        if previous is not None:
            if previous is last_side:
                self.same_order += 1
            else:
                self.diff_order += 1
        self._history[pc] = last_side

    @property
    def frac_same(self) -> float:
        total = self.same_order + self.diff_order
        return self.same_order / total if total else 0.0

    @property
    def frac_last_left(self) -> float:
        total = self.last_left + self.last_right
        return self.last_left / total if total else 0.0

    def reset(self) -> None:
        """Zero the counters but keep the per-PC history warm."""
        self.same_order = self.diff_order = 0
        self.last_left = self.last_right = self.simultaneous = 0


@dataclass
class SimStats:
    """All counters for one simulation run."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    replayed: int = 0          # issue slots consumed then squashed
    load_miss_replays: int = 0  # kill events from load latency misses
    tag_elim_misschedules: int = 0
    branch_mispredicts: int = 0
    branches: int = 0

    # ---- Figure 4: ready operands of 2-source instructions at insert ----
    two_source_dispatched: int = 0
    ready_at_insert: Counter = field(default_factory=Counter)  # 0/1/2 -> count

    # ---- Figure 6: wakeup slack of 2-pending-source instructions --------
    wakeup_slack: Counter = field(default_factory=Counter)     # slack -> count
    two_pending_observed: int = 0

    # ---- Table 3 --------------------------------------------------------
    order: WakeupOrderStats = field(default_factory=WakeupOrderStats)

    # ---- Figure 7: shadow predictor bank (optional) ----------------------
    shadow_bank: ShadowPredictorBank | None = None
    # ---- Section 3.2 predictor design comparison (optional) --------------
    design_bank: "DesignComparisonBank | None" = None

    # ---- Figure 10: register access categories of 2-source instructions -
    rf_back_to_back: int = 0
    rf_two_ready: int = 0
    rf_non_back_to_back: int = 0

    # ---- technique penalty accounting ------------------------------------
    seq_wakeup_slow_initiations: int = 0   # issue initiated by the slow bus
    simultaneous_wakeups: int = 0
    last_arrival_mispredictions: int = 0
    last_arrival_predictions: int = 0
    sequential_rf_accesses: int = 0        # instructions paying the 2-read penalty
    # ---- Section 6 future-work extensions --------------------------------
    rename_port_stalls: int = 0            # dispatches deferred by rename ports
    double_bypass_delays: int = 0          # half-bypass +1 latency events

    # ----------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def frac_two_pending(self) -> float:
        """Fraction of 2-source instructions with 0 ready operands at insert."""
        if not self.two_source_dispatched:
            return 0.0
        return self.ready_at_insert[0] / self.two_source_dispatched

    @property
    def frac_simultaneous(self) -> float:
        """Figure 6: simultaneous wakeups / 2-pending-source instructions."""
        if not self.two_pending_observed:
            return 0.0
        return self.wakeup_slack[0] / self.two_pending_observed

    @property
    def frac_two_rf_reads(self) -> float:
        """Figure 10 bottom bars: instructions needing two RF port reads,
        as a fraction of committed instructions."""
        if not self.committed:
            return 0.0
        return (self.rf_two_ready + self.rf_non_back_to_back) / self.committed

    @property
    def predictor_accuracy(self) -> float:
        if not self.last_arrival_predictions:
            return 0.0
        return 1.0 - self.last_arrival_mispredictions / self.last_arrival_predictions

    @property
    def branch_mispredict_rate(self) -> float:
        return self.branch_mispredicts / self.branches if self.branches else 0.0

    # ----------------------------------------------------------------------
    def record_dispatch(self, is_two_source: bool, ready_count: int) -> None:
        self.dispatched += 1
        if is_two_source:
            self.two_source_dispatched += 1
            self.ready_at_insert[ready_count] += 1

    def record_wakeup_pair(
        self,
        pc: int,
        slack: int,
        last_side: OperandSide | None,
    ) -> None:
        """Both operands of a 2-pending-source instruction have arrived."""
        self.two_pending_observed += 1
        self.wakeup_slack[min(slack, 8)] += 1
        self.order.observe(pc, last_side)
        if self.shadow_bank is not None:
            self.shadow_bank.observe(pc, last_side)

    def record_rf_category(self, category: str) -> None:
        if category == "back_to_back":
            self.rf_back_to_back += 1
        elif category == "two_ready":
            self.rf_two_ready += 1
        elif category == "non_back_to_back":
            self.rf_non_back_to_back += 1
        else:
            raise ValueError(f"unknown register access category {category!r}")

    def reset_window(self) -> None:
        """Reset measurement counters at the warmup boundary.

        Structural state that should stay warm (per-PC order history, shadow
        predictors' tables) is preserved; only counters restart.
        """
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.dispatched = 0
        self.issued = 0
        self.replayed = 0
        self.load_miss_replays = 0
        self.tag_elim_misschedules = 0
        self.branch_mispredicts = 0
        self.branches = 0
        self.two_source_dispatched = 0
        self.ready_at_insert.clear()
        self.wakeup_slack.clear()
        self.two_pending_observed = 0
        self.order.reset()
        self.rf_back_to_back = 0
        self.rf_two_ready = 0
        self.rf_non_back_to_back = 0
        self.seq_wakeup_slow_initiations = 0
        self.simultaneous_wakeups = 0
        self.last_arrival_mispredictions = 0
        self.last_arrival_predictions = 0
        self.sequential_rf_accesses = 0
        self.rename_port_stalls = 0
        self.double_bypass_delays = 0

    # ----------------------------------------------------------------------
    def counter_dict(self) -> dict[str, int]:
        """All plain-integer counters as one mapping (canonical order)."""
        return {name: getattr(self, name) for name in STAT_COUNTER_FIELDS}

    def publish_metrics(self, registry, prefix: str = "sim") -> None:
        """Guarded publishing: copy the finished counters into *registry*.

        Called once after a run (never from the cycle loop), so observing
        a simulation costs nothing while it executes.
        """
        for name, value in self.counter_dict().items():
            registry.counter(f"{prefix}.{name}").set(value)
        registry.histogram(f"{prefix}.ready_at_insert").merge(self.ready_at_insert)
        registry.histogram(f"{prefix}.wakeup_slack").merge(self.wakeup_slack)
        order = self.order
        registry.counter(f"{prefix}.order.same_order").set(order.same_order)
        registry.counter(f"{prefix}.order.diff_order").set(order.diff_order)
        registry.counter(f"{prefix}.order.last_left").set(order.last_left)
        registry.counter(f"{prefix}.order.last_right").set(order.last_right)
        registry.counter(f"{prefix}.order.simultaneous").set(order.simultaneous)
