"""Cycle-level out-of-order processor (the paper's Figure 1 base machine).

The simulator is execution/trace-driven: it pulls a correct-path
:class:`~repro.workloads.trace.DynOp` stream and models timing — fetch with
branch prediction and IL1, dispatch/rename into an RUU-style window,
atomic wakeup+select scheduling with **speculative load scheduling** and
configurable replay, functional-unit and register-port constraints, and
in-order commit.

Scheduling timing convention: an instruction selected in cycle *t* with
issue-to-use latency *L* broadcasts its destination tag in cycle *t + L*;
consumers woken by that broadcast may be selected in the same cycle (atomic
wakeup+select), so dependent issue distance equals *L* exactly, as in the
paper's Figure 9/12 examples.

Implementation note: the inner loop is written for CPython speed — event
calendars are :class:`~repro.core.event_ring.EventRing` buckets instead of
dicts, selection sorts on a precomputed key, and hot methods hoist
attribute lookups into locals.  None of this changes simulated timing;
``tests/analysis/test_parallel_and_cache.py`` pins cycle-exact determinism.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from operator import attrgetter

from repro.core.dependence_matrix import DependenceMatrix
from repro.core.event_ring import EventRing
from repro.core.iq import EntryState, IQEntry, Operand
from repro.core.last_arrival import (
    DesignComparisonBank,
    OperandSide,
    ShadowPredictorBank,
)
from repro.core.scoreboard import Scoreboard
from repro.core.select import Selector, select_priority  # noqa: F401 (re-export)
from repro.core.wakeup import make_wakeup_logic
from repro.errors import SimulationError
from repro.frontend.branch_unit import BranchUnit
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import (
    BypassModel,
    MachineConfig,
    RecoveryModel,
    RenameModel,
    SchedulerModel,
)
from repro.pipeline.fu import FunctionalUnits
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.regfile import RegisterFilePolicy
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.stats import SimStats
from repro.workloads.trace import DynOp

#: Version stamp of the timing model, embedded in persisted result-cache
#: fingerprints (see :mod:`repro.analysis.cache`).  **Bump this whenever a
#: change alters simulated timing or statistics**, so stale on-disk results
#: are never served.
TIMING_MODEL_VERSION = 1

#: Abort if no instruction commits for this many cycles (deadlock guard).
_WATCHDOG_CYCLES = 50_000

_SELECT_KEY = attrgetter("select_key")


class _Kill:
    """A scheduled replay event (load miss or tag-elim misschedule)."""

    __slots__ = ("root", "epoch", "window", "squash_root")

    def __init__(self, root: IQEntry, epoch: int, window: tuple[int, int] | None, squash_root: bool):
        self.root = root
        self.epoch = epoch
        self.window = window
        self.squash_root = squash_root


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    config_name: str
    workload_name: str
    stats: SimStats
    total_committed: int
    total_cycles: int

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class Processor:
    """One simulated machine instance bound to one instruction feed."""

    __slots__ = (
        "config",
        "feed",
        "stats",
        "scoreboard",
        "wakeup",
        "selector",
        "fu",
        "rf_policy",
        "branch_unit",
        "memory",
        "rob",
        "lsq",
        "now",
        "_rename",
        "_ready",
        "_frontend",
        "_predictions",
        "_feed_iter",
        "_next_op",
        "_feed_done",
        "_fetch_stalled_until",
        "_fetch_blocked_on",
        "_last_fetch_line",
        "_pc_address",
        "_broadcasts",
        "_slow_wakeups",
        "_completions",
        "_kills",
        "_total_committed",
        "_last_commit_cycle",
        "_non_selective",
        "_half_rename",
        "_half_bypass",
        "_use_matrix",
        "_matrix_depth",
        "_active_kill_bit",
        "matrix_mismatches",
        "trace",
        "profiler",
        "checker",
        # -- hoisted hot-path bindings (see end of __init__) -------------
        "_entry_ready",
        "_verify_at_issue",
        "_lat_for_class",
        "_width",
        "_front_depth",
        "_exec_offset",
        "_agen_lat",
        "_assumed_load_latency",
        "_load_spec_window",
        "_tag_elim_detect",
        "_dl1_latency",
        "_pop_kills",
        "_pop_slow_wakeups",
        "_pop_broadcasts",
        "_pop_completions",
    )

    def __init__(
        self,
        feed,
        config: MachineConfig,
        shadow_sizes: tuple[int, ...] | None = None,
        record_schedule: bool = False,
        profile: bool = False,
        check: bool = False,
    ):
        self.config = config
        self.feed = feed
        self.stats = SimStats()
        if shadow_sizes:
            self.stats.shadow_bank = ShadowPredictorBank(shadow_sizes)
            self.stats.design_bank = DesignComparisonBank()
        self.scoreboard = Scoreboard()
        self.wakeup = make_wakeup_logic(config)
        self.selector = Selector(config.width)
        self.fu = FunctionalUnits(config.fu, config.lat)
        self.rf_policy = RegisterFilePolicy(config)
        self.branch_unit = BranchUnit()
        self.memory = MemoryHierarchy(config.mem)
        self.rob = ReorderBuffer(config.ruu_size)
        self.lsq = LoadStoreQueue(config.lsq_size)

        self.now = 0
        self._rename: dict[int, int | None] = {}
        self._ready: dict[int, IQEntry] = {}
        self._frontend: deque[tuple[int, DynOp]] = deque()  # (arrive_cycle, op)
        self._predictions: dict[int, object] = {}

        self._feed_iter = iter(feed)
        self._next_op: DynOp | None = None
        self._feed_done = False
        self._fetch_stalled_until = 0
        self._fetch_blocked_on: int | None = None
        self._last_fetch_line = -1
        self._pc_address = getattr(feed, "pc_address", lambda pc: pc * 4)

        # Event calendars: one ring bucket per future cycle.  The horizon
        # bounds the farthest schedulable event (worst memory round trip
        # plus the longest execution latency and pipeline offsets); events
        # beyond it — possible only with extreme custom latencies — spill
        # into the rings' overflow dicts.
        mem = config.mem
        horizon = (
            config.lat.agen
            + mem.dl1_latency
            + mem.l2_latency
            + mem.memory_latency
            + config.lat.worst_case
            + config.exec_offset
            + config.load_spec_window
            + config.tag_elim_detect_delay
            + 8
        )
        self._broadcasts = EventRing(horizon)
        self._slow_wakeups = EventRing(horizon)
        self._completions = EventRing(horizon)
        self._kills = EventRing(horizon)

        self._total_committed = 0
        self._last_commit_cycle = 0
        self._non_selective = config.recovery is RecoveryModel.NON_SELECTIVE
        self._half_rename = config.rename is RenameModel.HALF_PORTS
        self._half_bypass = config.bypass is BypassModel.HALF
        # Figure 5 dependence-matrix machinery (cross-checked vs cascade).
        self._use_matrix = config.use_dependence_matrix
        self._matrix_depth = config.exec_offset + config.load_spec_window + 2
        self._active_kill_bit: tuple[int, int] | None = None
        self.matrix_mismatches = 0
        #: per-seq timing trace (tests and debugging): seq -> event dict
        self.trace: dict[int, dict] | None = {} if record_schedule else None
        #: per-stage wall-time profiler; built (and the phase methods
        #: wrapped) only when asked for, so the default loop pays nothing.
        if profile:
            from repro.obs.registry import StageProfiler

            self.profiler: "StageProfiler | None" = StageProfiler()
        else:
            self.profiler = None
        #: differential/invariant checker (repro.verify); built only when
        #: asked for — the default loop pays one ``is not None`` test at
        #: issue, commit and kill, nothing per cycle.
        if check:
            from repro.verify.checker import PipelineChecker

            self.checker: "PipelineChecker | None" = PipelineChecker(self)
        else:
            self.checker = None

        # Hot-path bindings: pre-resolved bound methods and config scalars,
        # saving an attribute-chain walk per use inside the cycle loop.
        self._entry_ready = self.wakeup.entry_ready
        self._verify_at_issue = self.wakeup.verify_at_issue
        self._lat_for_class = config.lat.for_class
        self._width = config.width
        self._front_depth = config.front_depth
        self._exec_offset = config.exec_offset
        self._agen_lat = config.lat.agen
        self._assumed_load_latency = config.assumed_load_latency
        self._load_spec_window = config.load_spec_window
        self._tag_elim_detect = config.tag_elim_detect_delay
        self._dl1_latency = mem.dl1_latency
        self._pop_kills = self._kills.pop
        self._pop_slow_wakeups = self._slow_wakeups.pop
        self._pop_broadcasts = self._broadcasts.pop
        self._pop_completions = self._completions.pop

    # ==================================================================
    # Main loop.
    # ==================================================================
    def run(self, max_insts: int, warmup: int = 0) -> SimulationResult:
        """Simulate until *max_insts* instructions commit after warmup."""
        measured_started = warmup == 0
        budget = max_insts + warmup
        stats = self.stats
        process_events = self._process_events
        select_and_issue = self._select_and_issue
        dispatch = self._dispatch
        fetch = self._fetch
        commit = self._commit
        if self.profiler is not None:
            # Wall-time the five phases.  Only the profiled path pays the
            # perf_counter pair per phase call; the bindings above stay the
            # raw bound methods otherwise.
            wrap = self.profiler.wrap
            process_events = wrap("process_events", process_events)
            select_and_issue = wrap("select_and_issue", select_and_issue)
            dispatch = wrap("dispatch", dispatch)
            fetch = wrap("fetch", fetch)
            commit = wrap("commit", commit)
        rob = self.rob
        frontend = self._frontend
        while True:
            self.now += 1
            process_events()
            select_and_issue()
            dispatch()
            fetch()
            commit()
            stats.cycles += 1
            committed = self._total_committed
            if not measured_started and committed >= warmup:
                stats.reset_window()
                measured_started = True
            if committed >= budget:
                break
            if self._feed_done and not frontend and rob.empty:
                break
            if self.now - self._last_commit_cycle > _WATCHDOG_CYCLES:
                error = SimulationError(
                    f"no commit for {_WATCHDOG_CYCLES} cycles at cycle {self.now} "
                    f"(head={self.rob.head()!r})"
                )
                # Deadlock *cycle* is part of the cross-backend parity
                # surface (messages differ in head formatting, the cycle
                # must not).
                error.cycle = self.now
                raise error
        return SimulationResult(
            config_name=self.config.name,
            workload_name=getattr(self.feed, "name", "workload"),
            stats=self.stats,
            total_committed=self._total_committed,
            total_cycles=self.now,
        )

    # ==================================================================
    # Phase 1: event delivery (kills, wakeups, completions).
    # ==================================================================
    def _process_events(self) -> None:
        now = self.now
        for kill in self._pop_kills(now):
            self._process_kill(kill)
        for entry, op_index, tag in self._pop_slow_wakeups(now):
            self._deliver_slow(entry, op_index, tag)
        for entry, epoch, data_valid in self._pop_broadcasts(now):
            if entry.epoch == epoch:
                self._broadcast(entry, data_valid)
        issued = EntryState.ISSUED
        for entry, epoch in self._pop_completions(now):
            if entry.epoch == epoch and entry.state is issued:
                self._complete(entry)

    def _broadcast_matrix(self, producer: IQEntry) -> DependenceMatrix:
        """Figure 5 bus payload: ancestors of *producer*, plus itself."""
        payload = DependenceMatrix(self._matrix_depth)
        for operand in producer.operands:
            if operand.matrix is not None:
                payload.merge(operand.matrix)
        payload.add_ancestor(producer.issue_cycle, producer.slot)
        payload.prune(self.now)
        return payload

    def _operand_has_comparator(self, entry: IQEntry, operand: Operand) -> bool:
        """Does this operand observe the bus (and thus receive matrices)?

        Under tag elimination the non-predicted operand's comparator is
        removed — the exact reason the paper gives for its incompatibility
        with selective recovery (Section 3.1).
        """
        if self.config.scheduler is not SchedulerModel.TAG_ELIM:
            return True
        if not entry.is_two_source:
            return True
        return operand.side is entry.fast_side

    def _broadcast(self, producer: IQEntry, data_valid: bool) -> None:
        """Deliver a destination-tag broadcast to all registered consumers."""
        now = self.now
        tag = producer.tag
        self.scoreboard.mark_broadcast(tag, now)
        if data_valid:
            self.scoreboard.mark_data(tag, now)
        record = self.scoreboard.get(tag)
        if record is None:
            return
        if self._use_matrix:
            record.matrix_payload = self._broadcast_matrix(producer)
        use_matrix = self._use_matrix
        delivery_delay = self.wakeup.delivery_delay
        slow_wakeups = self._slow_wakeups
        maybe_ready = self._maybe_ready
        for entry, op_index in record.consumers:
            if op_index < 0:
                if entry.mem_dep_tag == tag and not entry.mem_dep_ready:
                    entry.mem_dep_ready = True
                    maybe_ready(entry)
                continue
            operand = entry.operands[op_index]
            if operand.tag != tag:
                continue
            if operand.arrival_cycle is None:
                operand.arrival_cycle = now
                self._maybe_record_wakeup_pair(entry)
            if operand.ready:
                continue
            delay = delivery_delay(entry, operand)
            if delay == 0:
                operand.wake(now)
                if use_matrix and self._operand_has_comparator(entry, operand):
                    operand.matrix = record.matrix_payload
                maybe_ready(entry)
            else:
                slow_wakeups.schedule(now, now + delay, (entry, op_index, tag))

    def _deliver_slow(self, entry: IQEntry, op_index: int, tag: int) -> None:
        """Slow-bus delivery, one cycle after the fast broadcast.

        Slow-side operands still observe the full bus payload — this is the
        paper's point that sequential wakeup stays compatible with
        selective recovery.
        """
        operand = entry.operands[op_index]
        if operand.ready or operand.tag != tag:
            return
        if not self.scoreboard.is_valid(tag):
            return  # the broadcast was invalidated in the meantime
        operand.wake(self.now)
        if self._use_matrix:
            record = self.scoreboard.get(tag)
            if record is not None:
                operand.matrix = record.matrix_payload
        self._maybe_ready(entry)

    def _maybe_record_wakeup_pair(self, entry: IQEntry) -> None:
        """Record wakeup-order data once the last operand has arrived.

        2-pending entries feed the Figure 6 / Table 3 statistics and train
        the last-arriving predictor.  Entries with one operand ready at
        insert train the predictor only: their pending operand is by
        definition last-arriving, which is exactly what the hardware's
        last-tag history observes.
        """
        if entry.stat_wakeup_recorded or not entry.is_two_source:
            return
        if entry.stat_ready_at_insert == 1:
            pending = [o for o in entry.operands if not o.ready_at_insert]
            if not pending or pending[0].arrival_cycle is None:
                return
            entry.stat_wakeup_recorded = True
            last_side = pending[0].side
            self.stats.last_arrival_predictions += 1
            if entry.predicted_last is not last_side:
                self.stats.last_arrival_mispredictions += 1
            if self.stats.design_bank is not None:
                self.stats.design_bank.observe(entry.op.pc, last_side)
            self.wakeup.train(entry, last_side)
            return
        if not entry.is_two_pending:
            return
        arrivals = [operand.arrival_cycle for operand in entry.operands]
        if any(cycle is None for cycle in arrivals):
            return
        entry.stat_wakeup_recorded = True
        slack = abs(arrivals[0] - arrivals[1])
        if slack == 0:
            last_side: OperandSide | None = None
            self.stats.simultaneous_wakeups += 1
        else:
            last_index = 0 if arrivals[0] > arrivals[1] else 1
            last_side = entry.operands[last_index].side
        self.stats.record_wakeup_pair(entry.op.pc, slack, last_side)
        if self.stats.design_bank is not None:
            self.stats.design_bank.observe(entry.op.pc, last_side)
        if last_side is not None:
            self.stats.last_arrival_predictions += 1
            if entry.predicted_last is not last_side:
                self.stats.last_arrival_mispredictions += 1
        self.wakeup.train(entry, last_side)

    def _complete(self, entry: IQEntry) -> None:
        entry.state = EntryState.COMPLETED
        entry.complete_cycle = self.now
        if entry.op.is_control:
            self._resolve_branch(entry)

    # ==================================================================
    # Phase 2: wakeup/select (atomic) — issue.
    # ==================================================================
    def _select_and_issue(self) -> None:
        now = self.now
        selector = self.selector
        fu = self.fu
        rf_policy = self.rf_policy
        selector.begin_cycle()
        fu.begin_cycle(now)
        rf_policy.begin_cycle()
        ready = self._ready
        if not ready:
            return
        entry_ready = self._entry_ready
        waiting = EntryState.WAITING
        candidates = sorted(ready.values(), key=_SELECT_KEY)
        for entry in candidates:
            if selector.available_slots <= 0:
                break
            if entry.state is not waiting or entry.eligible_cycle > now:
                continue
            if not entry_ready(entry):
                # Stale ready-set entry (e.g. un-woken by a replay).
                ready.pop(entry.tag, None)
                entry.in_ready = False
                continue
            op_class = entry.op.op_class
            if not fu.can_issue(op_class, now):
                continue
            if not rf_policy.try_reserve(entry, now):
                continue
            seq_access = rf_policy.decide_sequential_access(entry, now)
            slot = selector.take_slot(bubble_next=seq_access)
            fu.issue(op_class, now)
            self._issue(entry, seq_access, slot)

    def _issue(self, entry: IQEntry, seq_access: bool, slot: int = 0) -> None:
        now = self.now
        self._ready.pop(entry.tag, None)
        entry.in_ready = False
        entry.state = EntryState.ISSUED
        entry.issue_cycle = now
        entry.epoch += 1
        entry.seq_reg_access = seq_access
        entry.slot = slot
        self.stats.issued += 1
        self._record_issue_stats(entry, seq_access)
        if self.trace is not None:
            record = self.trace.setdefault(entry.tag, {"issues": []})
            record["issues"].append(now)
            record["seq_reg_access"] = seq_access
            record["opcode"] = entry.op.opcode
            record["pc"] = entry.op.pc

        verify_ok = self._verify_at_issue(entry, self.scoreboard, now)
        if not verify_ok:
            # Tag elimination misschedule: scoreboard flags it after the
            # detection delay; the replay window covers everything issued
            # in the shadow, the mis-issued instruction included.
            detect = self._tag_elim_detect
            self.stats.tag_elim_misschedules += 1
            self._kills.schedule(
                now,
                now + detect,
                _Kill(entry, entry.epoch, (now, now + detect - 1), squash_root=True),
            )
        if self.checker is not None:
            self.checker.on_issue(entry, now, seq_access, verify_ok)

        if entry.op.is_load:
            self._issue_load(entry)
            return
        latency = self._lat_for_class(entry.op.op_class)
        if seq_access:
            latency += 1
            self.stats.sequential_rf_accesses += 1
        if self._half_bypass and len(entry.operands) == 2:
            # Half-price bypass (Section 6 extension): only one value can
            # be caught off the bypass per cycle; a double catch latches
            # one operand and starts execution a cycle later.
            if all(operand.woke_now(now) for operand in entry.operands):
                latency += 1
                self.stats.double_bypass_delays += 1
        self._broadcasts.schedule(now, now + latency, (entry, entry.epoch, True))
        self._completions.schedule(
            now, now + self._exec_offset + latency, (entry, entry.epoch)
        )

    def _issue_load(self, entry: IQEntry) -> None:
        now = self.now
        assumed = self._assumed_load_latency
        if entry.mem_fill_cycle is None:
            # First issue: perform the cache access.  The fill stays in
            # flight even if this load is later squashed (MSHR semantics):
            # a replayed issue re-uses the fill time instead of touching
            # the cache again, so replays never act as self-prefetches.
            if entry.forwarded:
                actual_mem = self._dl1_latency  # store queue data
            else:
                actual_mem = self.memory.load(entry.op.mem_addr).latency
            entry.mem_fill_cycle = now + self._agen_lat + actual_mem
        fill = max(entry.mem_fill_cycle, now + assumed)
        completion = fill + self._exec_offset - self._agen_lat
        if fill <= now + assumed:
            # Data arrives within the assumed-hit schedule.
            self._broadcasts.schedule(now, now + assumed, (entry, entry.epoch, True))
            self._completions.schedule(now, completion, (entry, entry.epoch))
            return
        # Latency misprediction: speculative broadcast at the assumed-hit
        # time, kill after the resolution shadow, real broadcast at fill.
        self._broadcasts.schedule(now, now + assumed, (entry, entry.epoch, False))
        kill_cycle = now + assumed + self._load_spec_window
        window = (now + assumed, kill_cycle - 1)
        self._kills.schedule(
            now,
            kill_cycle,
            _Kill(entry, entry.epoch, window if self._non_selective else None,
                  squash_root=False),
        )
        # A re-issued load's in-flight fill can land inside the kill shadow;
        # the re-broadcast must follow the kill or it would be invalidated.
        rebroadcast = max(fill, kill_cycle + 1)
        self._broadcasts.schedule(now, rebroadcast, (entry, entry.epoch, True))
        self._completions.schedule(
            now, max(completion, rebroadcast), (entry, entry.epoch)
        )

    def _record_issue_stats(self, entry: IQEntry, seq_access: bool) -> None:
        now = self.now
        if entry.is_two_source:
            if all(operand.ready_at_insert for operand in entry.operands):
                entry.rf_category = "two_ready"
            elif any(operand.woke_now(now) for operand in entry.operands):
                entry.rf_category = "back_to_back"
            else:
                entry.rf_category = "non_back_to_back"
            if self.config.scheduler is SchedulerModel.SEQ_WAKEUP:
                slow = entry.operand_on(entry.fast_side.other)
                if slow is not None and slow.ready_cycle == now and not slow.ready_at_insert:
                    self.stats.seq_wakeup_slow_initiations += 1

    # ==================================================================
    # Replay machinery.
    # ==================================================================
    def _process_kill(self, kill: _Kill) -> None:
        if kill.root.epoch != kill.epoch:
            return  # the root was itself squashed; this shadow is void
        if not kill.squash_root:
            self.stats.load_miss_replays += 1
        if self._use_matrix and not kill.squash_root and kill.window is None:
            # Selective recovery kill: the kill bus names the faulty issue
            # (row = pipeline bottom, column = slot) — cross-check every
            # cascade invalidation against the Figure 5 matrices.
            self._active_kill_bit = (kill.root.issue_cycle, kill.root.slot)
        self._invalidate_tag(kill.root.tag)
        self._active_kill_bit = None
        if kill.squash_root and kill.root.state is EntryState.ISSUED:
            self._squash(kill.root)
        if kill.window is not None:
            start, end = kill.window
            issued = EntryState.ISSUED
            for entry in self.rob:
                if (
                    entry.state is issued
                    and entry is not kill.root
                    and start <= entry.issue_cycle <= end
                ):
                    self._squash(entry)
        if self.checker is not None:
            self.checker.on_kill(kill)

    def _invalidate_tag(self, tag: int) -> None:
        """Invalidate a broadcast and cascade through its consumers."""
        for entry, op_index in self.scoreboard.invalidate(tag):
            if op_index < 0:
                if entry.mem_dep_tag == tag and entry.mem_dep_ready:
                    entry.mem_dep_ready = False
                    if entry.state is EntryState.ISSUED:
                        self._squash(entry)
                continue
            operand = entry.operands[op_index]
            if operand.ready and operand.tag == tag:
                if self._active_kill_bit is not None:
                    matched = operand.matrix is not None and operand.matrix.matches(
                        *self._active_kill_bit
                    )
                    if not matched:
                        # The matrix missed an operand the cascade caught:
                        # this operand never saw the dependence broadcast
                        # (e.g. an eliminated comparator).
                        self.matrix_mismatches += 1
                operand.unwake()
                if entry.state is EntryState.ISSUED:
                    self._squash(entry)
                elif entry.in_ready:
                    self._ready.pop(entry.tag, None)
                    entry.in_ready = False

    def _squash(self, entry: IQEntry) -> None:
        """Pull an issued instruction back into the scheduler."""
        self.stats.replayed += 1
        entry.reset_for_replay(self.scoreboard.is_valid)
        entry.epoch += 1
        entry.eligible_cycle = self.now + 1
        self._invalidate_tag(entry.tag)
        self._maybe_ready(entry)

    # ==================================================================
    # Phase 3: dispatch (rename + scheduler insert).
    # ==================================================================
    def _dispatch(self) -> None:
        now = self.now
        frontend = self._frontend
        if not frontend:
            return
        width = self._width
        rob = self.rob
        lsq = self.lsq
        dispatched = 0
        # Half-price rename (Section 6 extension): one source-lookup port
        # per dispatch slot; a 2-source instruction consumes two tokens.
        rename_tokens = width if self._half_rename else None
        while frontend and frontend[0][0] <= now and dispatched < width:
            arrive, op = frontend[0]
            if rob.full:
                break
            if (op.is_load or op.is_store) and lsq.full:
                break
            if rename_tokens is not None and not op.is_eliminated_nop:
                needed = max(1, len(op.sched_deps))
                if needed > rename_tokens:
                    self.stats.rename_port_stalls += 1
                    break
                rename_tokens -= needed
            frontend.popleft()
            self._insert(op)
            dispatched += 1

    def _insert(self, op: DynOp) -> None:
        now = self.now
        tag = op.seq
        if op.is_eliminated_nop:
            entry = IQEntry(op, tag, [], insert_cycle=now)
            entry.state = EntryState.COMPLETED
            self.rob.push(entry)
            self.stats.record_dispatch(False, 0)
            return
        operands = self._rename_sources(op, tag)
        entry = IQEntry(op, tag, operands, insert_cycle=now)
        scoreboard = self.scoreboard
        scoreboard.allocate(tag, entry)
        add_consumer = scoreboard.add_consumer
        for index, operand in enumerate(operands):
            if operand.tag is not None:
                add_consumer(operand.tag, entry, index)
        if op.dest is not None:
            self._rename[op.dest] = tag
        self.wakeup.assign_sides(entry)
        self.rob.push(entry)
        if op.is_load or op.is_store:
            if op.is_load:
                self._setup_load_forwarding(entry)
            self.lsq.insert(entry)
        self.stats.record_dispatch(entry.is_two_source, entry.stat_ready_at_insert)
        self._maybe_ready(entry)

    def _rename_sources(self, op: DynOp, consumer_tag: int) -> list[Operand]:
        operands: list[Operand] = []
        rename_get = self._rename.get
        scoreboard_get = self.scoreboard.get
        now = self.now
        use_matrix = self._use_matrix
        left = OperandSide.LEFT
        right = OperandSide.RIGHT
        for position, arch in enumerate(op.sched_deps):
            side = left if position == 0 else right
            producer_tag = rename_get(arch)
            if producer_tag is None:
                # Architectural value: the producer has committed.
                operands.append(Operand(None, side))
                continue
            record = scoreboard_get(producer_tag)
            if record is None:
                operands.append(Operand(None, side))
                continue
            if record.valid and record.broadcast_cycle is not None and (
                record.broadcast_cycle <= now
            ):
                # Ready bit set at insert; the producer may still be
                # squashed later, so the tag reference is kept for the
                # invalidation cascade.
                operand = Operand(None, side)
                operand.tag = producer_tag
                if use_matrix:
                    operand.matrix = record.matrix_payload
            else:
                operand = Operand(producer_tag, side)
            operands.append(operand)
        return operands

    def _setup_load_forwarding(self, entry: IQEntry) -> None:
        store = self.lsq.forwarding_store(entry)
        if store is None:
            return
        entry.forwarded = True
        if not self.lsq.store_agen_done(store):
            entry.mem_dep_tag = store.tag
            entry.mem_dep_ready = False
            self.scoreboard.add_consumer(store.tag, entry, -1)

    def _maybe_ready(self, entry: IQEntry) -> None:
        if (
            entry.state is EntryState.WAITING
            and not entry.in_ready
            and entry.mem_dep_ready
            and self._entry_ready(entry)
        ):
            entry.in_ready = True
            self._ready[entry.tag] = entry

    # ==================================================================
    # Phase 4: fetch.
    # ==================================================================
    def _fetch(self) -> None:
        now = self.now
        if (
            self._feed_done
            or self._fetch_blocked_on is not None
            or now < self._fetch_stalled_until
        ):
            return
        memory = self.memory
        line_address = memory.il1.line_address
        pc_address = self._pc_address
        frontend_append = self._frontend.append
        stats = self.stats
        arrive = now + self._front_depth
        feed_iter = self._feed_iter
        fetched = 0
        width = self._width
        op = self._next_op
        while fetched < width:
            if op is None:
                try:
                    op = next(feed_iter)
                except StopIteration:
                    self._feed_done = True
                    self._next_op = None
                    return
                self._next_op = op
            address = pc_address(op.pc)
            line = line_address(address)
            if line != self._last_fetch_line:
                result = memory.fetch(address)
                self._last_fetch_line = line
                if result.is_miss:
                    self._fetch_stalled_until = now + result.latency
                    return
            self._next_op = None
            stats.fetched += 1
            fetched += 1
            frontend_append((arrive, op))
            if op.is_control and self._fetch_control(op):
                return
            op = None

    def _fetch_control(self, op: DynOp) -> bool:
        """Predict a control instruction; return True if fetch must stop."""
        prediction = self.branch_unit.predict(op.pc, op.opcode, op.static_target)
        self._predictions[op.seq] = prediction
        predicted_next = prediction.next_pc(op.pc + 1)
        if predicted_next != op.next_pc:
            # Misprediction: fetch stalls until the branch resolves.
            self._fetch_blocked_on = op.seq
            return True
        # Correct prediction: fetch stops at the first taken branch.
        return bool(prediction.predicted_taken)

    def _resolve_branch(self, entry: IQEntry) -> None:
        op = entry.op
        prediction = self._predictions.pop(op.seq, None)
        if prediction is None:
            return
        self.stats.branches += 1
        mispredicted = self.branch_unit.resolve(
            op.pc, op.opcode, prediction, op.taken, op.next_pc, fallthrough=op.pc + 1
        )
        if mispredicted:
            self.stats.branch_mispredicts += 1
        if self._fetch_blocked_on == op.seq:
            self._fetch_blocked_on = None
            self._fetch_stalled_until = max(self._fetch_stalled_until, self.now + 1)
            self._last_fetch_line = -1

    def _peek_feed(self) -> DynOp | None:
        if self._next_op is None and not self._feed_done:
            try:
                self._next_op = next(self._feed_iter)
            except StopIteration:
                self._feed_done = True
        return self._next_op

    def _consume_feed(self) -> None:
        self._next_op = None

    # ==================================================================
    # Phase 5: commit.
    # ==================================================================
    def _commit(self) -> None:
        rob = self.rob
        if not rob.committable():
            return
        now = self.now
        width = self._width
        stats = self.stats
        rename = self._rename
        lsq = self.lsq
        scoreboard_free = self.scoreboard.free
        trace = self.trace
        checker = self.checker
        committed = 0
        while committed < width and rob.committable():
            entry = rob.commit_head()
            if checker is not None:
                checker.on_commit(entry, now)
            op = entry.op
            if op.is_store:
                self.memory.store(op.mem_addr)
                lsq.remove(entry)
            elif op.is_load:
                lsq.remove(entry)
            dest = op.dest
            if dest is not None and rename.get(dest) == entry.tag:
                rename[dest] = None
            scoreboard_free(entry.tag)
            if entry.rf_category is not None:
                stats.record_rf_category(entry.rf_category)
            if trace is not None:
                record = trace.setdefault(entry.tag, {"issues": []})
                record["insert"] = entry.insert_cycle
                record["complete"] = entry.complete_cycle
                record["commit"] = now
                record["replays"] = entry.replays
                record["rf_category"] = entry.rf_category
                record["opcode"] = entry.op.opcode
                record["pc"] = entry.op.pc
            stats.committed += 1
            self._total_committed += 1
            self._last_commit_cycle = now
            committed += 1

    # ==================================================================
    # Observability (post-run, guarded publishing — never in the loop).
    # ==================================================================
    def publish_metrics(self, registry) -> None:
        """Publish this machine's finished counters into a MetricsRegistry.

        Fans out to every component that kept its own tallies during the
        run: the paper counters (:meth:`SimStats.publish_metrics`), the
        select logic, the register-port policy, the cache hierarchy, the
        branch unit and — when profiling was on — per-stage wall times.
        """
        self.stats.publish_metrics(registry)
        self.selector.publish_metrics(registry)
        self.rf_policy.publish_metrics(registry)
        for level in ("il1", "dl1", "l2"):
            cache_stats = getattr(self.memory, level).stats
            registry.counter(f"mem.{level}.accesses").set(cache_stats.accesses)
            registry.counter(f"mem.{level}.hits").set(cache_stats.hits)
            registry.counter(f"mem.{level}.misses").set(cache_stats.misses)
            registry.counter(f"mem.{level}.evictions").set(cache_stats.evictions)
        registry.counter("sim.matrix_mismatches").set(self.matrix_mismatches)
        registry.counter("sim.now_cycles").set(self.now)
        if self.profiler is not None:
            self.profiler.publish(registry)


def simulate(
    feed,
    config: MachineConfig,
    max_insts: int = 15_000,
    warmup: int = 15_000,
    shadow_sizes: tuple[int, ...] | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Processor` and run it."""
    processor = Processor(feed, config, shadow_sizes=shadow_sizes)
    return processor.run(max_insts=max_insts, warmup=warmup)
