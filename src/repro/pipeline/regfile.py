"""Register file read-port policies (Sections 4 and 5.2).

Four organizations are modelled, matching Figure 15's competitors:

* **BASE** — two read ports per issue slot; reads are never a constraint.
* **SEQUENTIAL** — one port per slot.  A 2-source instruction whose two
  operands both need the register file (no ``now`` bit: neither value will
  be on the bypass) performs two sequential reads: +1 cycle of latency and
  a one-cycle bubble in its own issue slot.
* **EXTRA_STAGE** — two ports per slot but one extra RF pipeline stage
  (handled by ``MachineConfig.exec_offset``); no port constraints here.
* **CROSSBAR** — half the total ports (``width``) shared by all slots
  through a crossbar with *global* arbitration: selection is throttled when
  the aggregate read demand of selected instructions exceeds the ports.
"""

from __future__ import annotations

from repro.core.iq import IQEntry
from repro.pipeline.config import MachineConfig, RegFileModel, SchedulerModel


class RegisterFilePolicy:
    """Issue-time read-port accounting for one machine configuration."""

    __slots__ = ("model", "width", "fast_side_now_only", "_ports_used",
                 "crossbar_rejections", "sequential_decisions")

    def __init__(self, config: MachineConfig):
        self.model = config.regfile
        self.width = config.width
        #: in the combined machine only the fast-side ``now`` bit exists
        #: (Section 5.3: the wakeup logic drops ``nowR``)
        self.fast_side_now_only = (
            config.scheduler is SchedulerModel.SEQ_WAKEUP
            and config.regfile is RegFileModel.SEQUENTIAL
        )
        self._ports_used = 0
        #: lifetime tallies (published post-run, see ``publish_metrics``)
        self.crossbar_rejections = 0
        self.sequential_decisions = 0

    def begin_cycle(self) -> None:
        self._ports_used = 0

    # ------------------------------------------------------------------
    def reads_needed(self, entry: IQEntry, now: int) -> int:
        """Register-file reads this instruction needs if issued at *now*.

        An operand woken in the select cycle is guaranteed to come off the
        bypass network (one-cycle bypass window); anything else — ready at
        insert, or woken earlier than the select cycle — must be read from
        the register file.
        """
        return sum(1 for operand in entry.operands if not operand.woke_now(now))

    def has_now_bit(self, entry: IQEntry, now: int) -> bool:
        """Is any (visible) ``now`` bit set for this entry at select time?"""
        for operand in entry.operands:
            if self.fast_side_now_only and operand.side is not entry.fast_side:
                continue  # nowR removed in the combined machine
            if operand.woke_now(now):
                return True
        return False

    def decide_sequential_access(self, entry: IQEntry, now: int) -> bool:
        """Figure 11a: does this instruction need two sequential reads?"""
        if self.model is not RegFileModel.SEQUENTIAL:
            return False
        if len(entry.operands) < 2:
            return False
        sequential = not self.has_now_bit(entry, now)
        if sequential:
            self.sequential_decisions += 1
        return sequential

    # ------------------------------------------------------------------
    def try_reserve(self, entry: IQEntry, now: int) -> bool:
        """Crossbar arbitration: claim global read ports for this issue."""
        if self.model is not RegFileModel.CROSSBAR:
            return True
        needed = self.reads_needed(entry, now)
        if self._ports_used + needed > self.width:
            self.crossbar_rejections += 1
            return False
        self._ports_used += needed
        return True

    # ------------------------------------------------------------------
    def publish_metrics(self, registry, prefix: str = "regfile") -> None:
        """Copy the port-policy tallies into a MetricsRegistry (post-run)."""
        registry.counter(f"{prefix}.crossbar_rejections").set(self.crossbar_rejections)
        registry.counter(f"{prefix}.sequential_decisions").set(self.sequential_decisions)
