"""Reorder buffer: in-order dispatch and commit bookkeeping.

The RUU of the paper's SimpleScalar substrate combines the reorder buffer
and scheduler window; here the :class:`ReorderBuffer` handles program-order
retirement while the scheduler tracks the same entries for wakeup/select.
"""

from __future__ import annotations

from collections import deque

from repro.core.iq import EntryState, IQEntry


class ReorderBuffer:
    """Fixed-capacity FIFO of in-flight instructions.

    No ``__slots__`` here on purpose: tests monkeypatch instance methods
    (e.g. ``committable``) to simulate pathological machines.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: deque[IQEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: IQEntry) -> None:
        if self.full:
            raise OverflowError("ROB overflow: dispatch must check capacity")
        self._entries.append(entry)

    def head(self) -> IQEntry | None:
        return self._entries[0] if self._entries else None

    def commit_head(self) -> IQEntry:
        return self._entries.popleft()

    def committable(self) -> bool:
        """True if the head instruction has completed execution."""
        head = self.head()
        return head is not None and head.state is EntryState.COMPLETED

    def __iter__(self):
        return iter(self._entries)
