"""Machine configuration (the paper's Table 1, plus technique selection).

Two reference machines are provided:

* :data:`FOUR_WIDE` — 4-wide fetch/issue/commit, 64 RUU, 32 LSQ;
* :data:`EIGHT_WIDE` — 8-wide fetch/issue/commit, 128 RUU, 64 LSQ.

The half-price techniques are selected with :class:`SchedulerModel` and
:class:`RegFileModel`; recovery from scheduling latency mispredictions with
:class:`RecoveryModel`.  Use :meth:`MachineConfig.with_techniques` to derive
variants from a base machine.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import MemoryHierarchyConfig


class SchedulerModel(enum.Enum):
    """Wakeup-logic organization (Section 3)."""

    #: Conventional: both operand comparators on one full wakeup bus.
    BASE = "base"
    #: Sequential wakeup: fast/slow buses (Section 3.3).
    SEQ_WAKEUP = "seq_wakeup"
    #: Tag elimination baseline (Ernst & Austin), speculative single tag.
    TAG_ELIM = "tag_elim"


class RegFileModel(enum.Enum):
    """Register file read-port organization (Sections 4 and 5.2)."""

    #: Two read ports per issue slot (unconstrained).
    BASE = "base"
    #: Sequential register access: one port per slot (Section 4.3).
    SEQUENTIAL = "sequential"
    #: Two ports per slot, one extra RF pipeline stage.
    EXTRA_STAGE = "extra_stage"
    #: Half the total ports behind a crossbar with global arbitration.
    CROSSBAR = "crossbar"


class RecoveryModel(enum.Enum):
    """Scheduling replay policy for latency mispredictions (Section 3.1)."""

    #: Alpha 21264 style: replay everything issued in the window.
    NON_SELECTIVE = "non_selective"
    #: Dependence-matrix style: replay only data-dependent instructions.
    SELECTIVE = "selective"


class RenameModel(enum.Enum):
    """Register rename source-lookup port organization (Section 6).

    The paper's future work extends the half-price idea to register
    renaming: this implements it.  With half ports, the rename stage has
    one source-lookup port per dispatch slot instead of two, so a 2-source
    instruction consumes two lookup tokens from the cycle's budget and
    dispatch bandwidth drops when 2-source instructions cluster.
    """

    #: Two source-lookup ports per dispatch slot (never binding).
    BASE = "base"
    #: One lookup port per slot: 2-source instructions eat two tokens.
    HALF_PORTS = "half_ports"


class BypassModel(enum.Enum):
    """Bypass network input-port organization (Section 6).

    Future-work extension: with a half-price bypass, each functional unit
    input side can catch only **one** value off the bypass network per
    cycle.  An instruction whose two operands would *both* arrive via the
    bypass in its issue cycle latches one of them and starts a cycle later.
    """

    #: Full bypass: both operands can be caught in the same cycle.
    FULL = "full"
    #: One bypass catch per instruction per cycle: double-bypass pays +1.
    HALF = "half"


@dataclass(frozen=True)
class FunctionalUnitPool:
    """Functional unit counts (Table 1)."""

    int_alu: int
    fp_alu: int
    int_mult: int   # integer MULT/DIV units
    fp_mult: int    # floating MULT/DIV units
    mem_ports: int

    def count_for(self, op_class: OpClass) -> int:
        if op_class in (OpClass.INT_ALU, OpClass.BRANCH, OpClass.JUMP):
            return self.int_alu
        if op_class is OpClass.FP_ALU:
            return self.fp_alu
        if op_class in (OpClass.INT_MULT, OpClass.INT_DIV):
            return self.int_mult
        if op_class in (OpClass.FP_MULT, OpClass.FP_DIV):
            return self.fp_mult
        if op_class.is_memory:
            return self.mem_ports
        raise ConfigurationError(f"no functional unit for {op_class}")


@dataclass(frozen=True)
class Latencies:
    """Execution latencies in cycles (Table 1)."""

    int_alu: int = 1
    fp_alu: int = 2
    int_mult: int = 3
    int_div: int = 20
    fp_mult: int = 4
    fp_div: int = 12
    branch: int = 1
    agen: int = 1

    def __post_init__(self):
        # The per-class table is rebuilt per call in the obvious spelling,
        # and for_class sits on the issue path; cache it once per instance
        # (object.__setattr__ because the dataclass is frozen).
        object.__setattr__(
            self,
            "_by_class",
            {
                OpClass.INT_ALU: self.int_alu,
                OpClass.FP_ALU: self.fp_alu,
                OpClass.INT_MULT: self.int_mult,
                OpClass.INT_DIV: self.int_div,
                OpClass.FP_MULT: self.fp_mult,
                OpClass.FP_DIV: self.fp_div,
                OpClass.BRANCH: self.branch,
                OpClass.JUMP: self.branch,
                OpClass.STORE: self.agen,
                OpClass.LOAD: self.agen,  # address generation part only
            },
        )
        # Dense-index variant of the same table (OpClass.idx -> latency):
        # list indexing skips enum hashing on the issue path.
        by_index: list[int | None] = [None] * len(OpClass)
        for op_class, latency in self._by_class.items():
            by_index[op_class.idx] = latency
        object.__setattr__(self, "_by_index", by_index)

    @property
    def worst_case(self) -> int:
        """Largest single-operation latency (event-horizon sizing)."""
        return max(self._by_class.values())

    def for_class(self, op_class: OpClass) -> int:
        latency = self._by_index[op_class.idx]
        if latency is None:
            raise ConfigurationError(f"no latency for {op_class}")
        return latency


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description.

    Pipeline depth bookkeeping (12 stages in the reference machines):
    ``front_depth`` covers Fetch..Queue (insertion into the scheduler),
    then Sched (1), then ``disp_depth`` (payload RAM) + ``rf_depth``
    (register read) between select and execute, then EXE / WB / Commit.
    """

    name: str
    width: int
    ruu_size: int
    lsq_size: int
    fu: FunctionalUnitPool
    lat: Latencies = Latencies()
    mem: MemoryHierarchyConfig = MemoryHierarchyConfig()
    front_depth: int = 6
    disp_depth: int = 1
    rf_depth: int = 1
    #: physical register file entries (used by the timing models and to
    #: bound in-flight instructions alongside the RUU)
    num_phys_regs: int = 160
    #: cycles after a load's speculative broadcast at which the hit/miss
    #: verdict reaches the scheduler (the replay shadow, 21264-like)
    load_spec_window: int = 2
    #: scoreboard detection delay for tag-elimination mis-issues
    tag_elim_detect_delay: int = 2
    scheduler: SchedulerModel = SchedulerModel.BASE
    regfile: RegFileModel = RegFileModel.BASE
    recovery: RecoveryModel = RecoveryModel.NON_SELECTIVE
    rename: RenameModel = RenameModel.BASE
    bypass: BypassModel = BypassModel.FULL
    #: last-arriving operand predictor entries; None = no predictor
    #: (the right operand is statically assumed last-arriving)
    predictor_entries: int | None = 1024
    #: run the Figure 5 dependence-matrix machinery alongside selective
    #: recovery and cross-check it against the scoreboard cascade (the
    #: mismatch counter stays zero for bus-delivered wakeup schemes and
    #: exposes tag elimination's incompatibility, Section 3.1)
    use_dependence_matrix: bool = False
    #: cycle-loop backend: "python" (reference Processor), "vector"
    #: (struct-of-arrays engine, bit-identical stats, needs numpy) or
    #: "native" (the same loop compiled as a C extension, bit-identical
    #: stats, needs the built artifact).  Not part of the timing model —
    #: it never appears in variant names — but it IS part of the
    #: result-cache fingerprint, so cached results are never served
    #: across backends.
    backend: str = "python"

    def __post_init__(self):
        if self.width <= 0 or self.ruu_size <= 0 or self.lsq_size <= 0:
            raise ConfigurationError(f"{self.name}: non-positive size")
        if self.ruu_size < self.width or self.lsq_size < 1:
            raise ConfigurationError(f"{self.name}: window smaller than width")
        if self.predictor_entries is not None and (
            self.predictor_entries <= 0
            or self.predictor_entries & (self.predictor_entries - 1)
        ):
            raise ConfigurationError(f"{self.name}: predictor entries must be 2^n")
        if self.backend not in ("python", "vector", "native"):
            raise ConfigurationError(
                f"{self.name}: unknown backend {self.backend!r} "
                "(known: python, vector, native)"
            )

    # ------------------------------------------------------------------
    @property
    def exec_offset(self) -> int:
        """Cycles from select to the start of execution (Disp + RF)."""
        extra = 1 if self.regfile is RegFileModel.EXTRA_STAGE else 0
        return self.disp_depth + self.rf_depth + extra

    @property
    def assumed_load_latency(self) -> int:
        """Issue-to-issue latency the scheduler assumes for loads (DL1 hit)."""
        return self.lat.agen + self.mem.dl1_latency + (
            1 if self.regfile is RegFileModel.EXTRA_STAGE else 0
        )

    @property
    def branch_resolution_offset(self) -> int:
        """Cycles from a branch's select to its resolution."""
        return self.exec_offset + self.lat.branch

    @property
    def mispredict_redirect_penalty(self) -> int:
        """Fetch-to-queue refill after a mispredict redirect."""
        return self.front_depth

    @property
    def total_read_ports(self) -> int:
        """Register file read ports implied by the port model."""
        if self.regfile in (RegFileModel.BASE, RegFileModel.EXTRA_STAGE):
            return 2 * self.width
        return self.width

    # ------------------------------------------------------------------
    def with_techniques(
        self,
        scheduler: SchedulerModel | None = None,
        regfile: RegFileModel | None = None,
        recovery: RecoveryModel | None = None,
        rename: RenameModel | None = None,
        bypass: BypassModel | None = None,
        predictor_entries: int | None | str = "keep",
        name: str | None = None,
    ) -> "MachineConfig":
        """Derive a variant machine with different techniques enabled."""
        changes: dict = {}
        if scheduler is not None:
            changes["scheduler"] = scheduler
        if regfile is not None:
            changes["regfile"] = regfile
        if recovery is not None:
            changes["recovery"] = recovery
        if rename is not None:
            changes["rename"] = rename
        if bypass is not None:
            changes["bypass"] = bypass
        if predictor_entries != "keep":
            changes["predictor_entries"] = predictor_entries
        derived = dataclasses.replace(self, **changes)
        label = name or self._variant_name(derived)
        return dataclasses.replace(derived, name=label)

    def _variant_name(self, derived: "MachineConfig") -> str:
        parts = [self.name.split("+")[0]]
        if derived.scheduler is not SchedulerModel.BASE:
            suffix = derived.scheduler.value
            if derived.predictor_entries is None:
                suffix += "-nopred"
            parts.append(suffix)
        if derived.regfile is not RegFileModel.BASE:
            parts.append(derived.regfile.value)
        if derived.rename is not RenameModel.BASE:
            parts.append("halfrename")
        if derived.bypass is not BypassModel.FULL:
            parts.append("halfbypass")
        if derived.recovery is not RecoveryModel.NON_SELECTIVE:
            parts.append(derived.recovery.value)
        return "+".join(parts)


#: Table 1, 4-wide machine.
FOUR_WIDE = MachineConfig(
    name="4-wide",
    width=4,
    ruu_size=64,
    lsq_size=32,
    fu=FunctionalUnitPool(int_alu=4, fp_alu=2, int_mult=2, fp_mult=2, mem_ports=2),
)

#: Table 1, 8-wide machine.
EIGHT_WIDE = MachineConfig(
    name="8-wide",
    width=8,
    ruu_size=128,
    lsq_size=64,
    fu=FunctionalUnitPool(int_alu=8, fp_alu=4, int_mult=4, fp_mult=4, mem_ports=4),
)
