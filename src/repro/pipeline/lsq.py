"""Load/store queue with oracle disambiguation and store-to-load forwarding.

Memory addresses are known from the instruction feed, so disambiguation is
oracle-precise: a load conflicts only with genuinely same-address older
stores.  A load whose address matches an older, uncommitted store forwards
from the store queue (DL1-hit latency, no cache access) once that store's
address generation has issued.
"""

from __future__ import annotations

from collections import deque

from repro.core.iq import EntryState, IQEntry

#: Memory words are 8 bytes; forwarding matches on the aligned word.
_WORD_MASK = ~7


class LoadStoreQueue:
    """Fixed-capacity queue of in-flight memory instructions."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: deque[IQEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, entry: IQEntry) -> None:
        if self.full:
            raise OverflowError("LSQ overflow: dispatch must check capacity")
        self._entries.append(entry)

    def remove(self, entry: IQEntry) -> None:
        """Drop a committed memory instruction."""
        try:
            self._entries.remove(entry)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def forwarding_store(self, load: IQEntry) -> IQEntry | None:
        """Youngest older store writing the load's word, if any."""
        addr = load.op.mem_addr & _WORD_MASK
        best: IQEntry | None = None
        for entry in self._entries:
            if entry.tag >= load.tag:
                break
            if entry.op.is_store and (entry.op.mem_addr & _WORD_MASK) == addr:
                best = entry
        return best

    @staticmethod
    def store_agen_done(store: IQEntry) -> bool:
        """Has the store's address generation issued already?"""
        return store.state in (EntryState.ISSUED, EntryState.COMPLETED)
