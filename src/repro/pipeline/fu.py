"""Functional unit pool with per-cycle issue bandwidth and divider occupancy.

ALUs, multipliers and memory ports are fully pipelined (one issue per unit
per cycle); dividers are not pipelined — a divide occupies its unit for the
whole operation, as in SimpleScalar's resource model.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass
from repro.pipeline.config import FunctionalUnitPool, Latencies

#: Non-pipelined operation classes (occupy the unit for the full latency).
_NON_PIPELINED = (OpClass.INT_DIV, OpClass.FP_DIV)

#: Map from op class to the pool it shares issue bandwidth with.
_POOL_OF = {
    OpClass.INT_ALU: "int_alu",
    OpClass.BRANCH: "int_alu",
    OpClass.JUMP: "int_alu",
    OpClass.FP_ALU: "fp_alu",
    OpClass.INT_MULT: "int_mult",
    OpClass.INT_DIV: "int_mult",
    OpClass.FP_MULT: "fp_mult",
    OpClass.FP_DIV: "fp_mult",
    OpClass.LOAD: "mem",
    OpClass.STORE: "mem",
}


class FunctionalUnits:
    """Tracks per-cycle issue counts and divider busy windows."""

    def __init__(self, pool: FunctionalUnitPool, latencies: Latencies):
        self._counts = {
            "int_alu": pool.int_alu,
            "fp_alu": pool.fp_alu,
            "int_mult": pool.int_mult,
            "fp_mult": pool.fp_mult,
            "mem": pool.mem_ports,
        }
        self._lat = latencies
        self._issued_this_cycle = {name: 0 for name in self._counts}
        #: per pool: cycles at which busy (non-pipelined) units free up
        self._busy_until: dict[str, list[int]] = {name: [] for name in self._counts}

    def begin_cycle(self, now: int) -> None:
        for name in self._issued_this_cycle:
            self._issued_this_cycle[name] = 0
            busy = self._busy_until[name]
            if busy:
                self._busy_until[name] = [c for c in busy if c > now]

    # ------------------------------------------------------------------
    def can_issue(self, op_class: OpClass, now: int) -> bool:
        pool = _POOL_OF[op_class]
        in_use = self._issued_this_cycle[pool] + len(self._busy_until[pool])
        return in_use < self._counts[pool]

    def issue(self, op_class: OpClass, now: int) -> None:
        pool = _POOL_OF[op_class]
        self._issued_this_cycle[pool] += 1
        if op_class in _NON_PIPELINED:
            self._busy_until[pool].append(now + self._lat.for_class(op_class))

    def pool_size(self, op_class: OpClass) -> int:
        return self._counts[_POOL_OF[op_class]]
