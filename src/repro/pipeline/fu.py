"""Functional unit pool with per-cycle issue bandwidth and divider occupancy.

ALUs, multipliers and memory ports are fully pipelined (one issue per unit
per cycle); dividers are not pipelined — a divide occupies its unit for the
whole operation, as in SimpleScalar's resource model.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass
from repro.pipeline.config import FunctionalUnitPool, Latencies

#: Non-pipelined operation classes (occupy the unit for the full latency).
_NON_PIPELINED = (OpClass.INT_DIV, OpClass.FP_DIV)

#: Pool indices (issue bandwidth is tracked per pool, in flat lists).
_INT_ALU, _FP_ALU, _INT_MULT, _FP_MULT, _MEM = range(5)

#: Map from op class to the pool it shares issue bandwidth with.
_POOL_OF = {
    OpClass.INT_ALU: _INT_ALU,
    OpClass.BRANCH: _INT_ALU,
    OpClass.JUMP: _INT_ALU,
    OpClass.FP_ALU: _FP_ALU,
    OpClass.INT_MULT: _INT_MULT,
    OpClass.INT_DIV: _INT_MULT,
    OpClass.FP_MULT: _FP_MULT,
    OpClass.FP_DIV: _FP_MULT,
    OpClass.LOAD: _MEM,
    OpClass.STORE: _MEM,
}

#: Same map with dense OpClass.idx keys (hot path: no enum hashing).
_POOL_BY_IDX: tuple[int | None, ...] = tuple(
    _POOL_OF.get(op_class) for op_class in OpClass
)

#: OpClass.idx -> True for non-pipelined classes.
_NON_PIPELINED_BY_IDX: tuple[bool, ...] = tuple(
    op_class in _NON_PIPELINED for op_class in OpClass
)


class FunctionalUnits:
    """Tracks per-cycle issue counts and divider busy windows."""

    __slots__ = ("_counts", "_lat", "_issued_this_cycle", "_busy_until")

    def __init__(self, pool: FunctionalUnitPool, latencies: Latencies):
        self._counts = [
            pool.int_alu,
            pool.fp_alu,
            pool.int_mult,
            pool.fp_mult,
            pool.mem_ports,
        ]
        self._lat = latencies
        self._issued_this_cycle = [0] * 5
        #: per pool: cycles at which busy (non-pipelined) units free up
        self._busy_until: list[list[int]] = [[] for _ in range(5)]

    def begin_cycle(self, now: int) -> None:
        issued = self._issued_this_cycle
        busy_until = self._busy_until
        for index in range(5):
            issued[index] = 0
            busy = busy_until[index]
            if busy:
                busy_until[index] = [c for c in busy if c > now]

    # ------------------------------------------------------------------
    def can_issue(self, op_class: OpClass, now: int) -> bool:
        pool = _POOL_BY_IDX[op_class.idx]
        in_use = self._issued_this_cycle[pool] + len(self._busy_until[pool])
        return in_use < self._counts[pool]

    def issue(self, op_class: OpClass, now: int) -> None:
        idx = op_class.idx
        pool = _POOL_BY_IDX[idx]
        self._issued_this_cycle[pool] += 1
        if _NON_PIPELINED_BY_IDX[idx]:
            self._busy_until[pool].append(now + self._lat.for_class(op_class))

    def pool_size(self, op_class: OpClass) -> int:
        return self._counts[_POOL_BY_IDX[op_class.idx]]


def pool_index(op_class: OpClass) -> int:
    """Index of the issue-bandwidth pool *op_class* shares (0..4).

    Exposed for the invariant checkers (:mod:`repro.verify.invariants`),
    which mirror the per-pool issue accounting independently.
    """
    return _POOL_BY_IDX[op_class.idx]


def is_non_pipelined(op_class: OpClass) -> bool:
    """True for classes that occupy their unit for the full latency."""
    return _NON_PIPELINED_BY_IDX[op_class.idx]
