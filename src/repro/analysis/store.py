"""Shared content-addressed result store: fingerprint -> published blob.

This is the storage layer underneath the result cache, the experiment
runner and the serving tier.  A *store* maps a SHA-256 fingerprint (the
same digest :func:`repro.analysis.cache.fingerprint` computes) to one
immutable JSON *blob* — the serialized simulation record.  The contract
every consumer leans on:

* **Atomic publication.**  ``put()`` either publishes a complete,
  checksum-stamped blob or publishes nothing; readers can never observe
  a half-written record.  Publication is first-writer-wins: racing
  writers for one fingerprint leave exactly one blob (the records are
  deterministic, so which writer lands is irrelevant).
* **Verified reads.**  ``get()`` re-validates the embedded fingerprint
  and the payload checksum on every read.  A torn, truncated or
  bit-rotted blob is **quarantined** (moved aside, never deleted — it is
  evidence) and reads as a miss, so the caller recomputes.
* **Cross-process claims.**  ``claim()`` is the cluster-wide
  singleflight primitive: among concurrent *processes* missing the same
  fingerprint, one acquires the claim and computes while the rest wait
  for the blob to be published.  A claim abandoned by a dead process
  goes stale and is taken over, so a SIGKILLed worker never wedges the
  fingerprint.

:class:`DirectoryStore` implements the interface on a plain directory —
shareable between processes and, via a network filesystem, between
nodes.  Blobs live at ``<root>/<fp[:2]>/<fp>.json`` (sharded so a
million records do not share one directory); quarantined blobs move to
``<root>/quarantine/``; claims are ``O_EXCL`` lock files next to the
blob.  The serving tier points every worker at one store directory,
which is what keeps coalescing correct cluster-wide without any
cross-worker locking (see docs/SERVING.md).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

#: Quarantined blobs land here, named <fingerprint>.<epoch-ns>.json.
QUARANTINE_DIR = "quarantine"

#: A claim older than this is presumed abandoned (holder died) and is
#: broken by the next contender.  Generous: one simulation is seconds.
#: Override with REPRO_CLAIM_STALE_S (cluster smoke tests shrink it so a
#: SIGKILLed worker's claim is taken over within seconds).
DEFAULT_CLAIM_STALE_S = 300.0


def _default_claim_stale_s() -> float:
    raw = os.environ.get("REPRO_CLAIM_STALE_S", "")
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_CLAIM_STALE_S


def blob_checksum(record: dict) -> str:
    """Digest over a record's canonical JSON payload, sans ``checksum``."""
    # Import cycle guard: cache.py imports this module for its store.
    from repro.analysis.cache import record_checksum

    return record_checksum(record)


class ResultStore:
    """Interface every result-store implementation satisfies.

    Consumers (:class:`~repro.analysis.cache.ResultCache`, the serving
    tier) program against this surface only.
    """

    def get(self, fingerprint: str) -> dict | None:
        """The verified record for *fingerprint*, or None."""
        raise NotImplementedError

    def put(self, fingerprint: str, record: dict) -> bool:
        """Publish *record* atomically; False if already published."""
        raise NotImplementedError

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def fingerprints(self) -> list[str]:
        """Every published fingerprint (diagnostics, smoke assertions)."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.fingerprints())

    # ------------------------------------------------------------------
    def claim(self, fingerprint: str) -> "StoreClaim | None":
        """Try to become the computing process for *fingerprint*.

        Returns a :class:`StoreClaim` to release when the blob is
        published (or the computation failed), or None when another
        process holds the claim.  Stores with no cross-process story may
        always grant the claim.
        """
        return StoreClaim(None)

    def wait(self, fingerprint: str, timeout: float) -> dict | None:
        """Poll for *fingerprint* to be published, up to *timeout* s."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.get(fingerprint)
            if record is not None or time.monotonic() >= deadline:
                return record
            time.sleep(0.02)


class StoreClaim:
    """A held compute claim; ``release()`` exactly once (idempotent)."""

    def __init__(self, path: Path | None):
        self._path = path

    def release(self) -> None:
        if self._path is None:
            return
        try:
            os.unlink(self._path)
        except OSError:
            pass
        self._path = None

    def __enter__(self) -> "StoreClaim":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class MemoryStore(ResultStore):
    """Dict-backed store (tests, cache-disabled fallbacks)."""

    def __init__(self):
        self._records: dict[str, dict] = {}

    def get(self, fingerprint: str) -> dict | None:
        return self._records.get(fingerprint)

    def put(self, fingerprint: str, record: dict) -> bool:
        if fingerprint in self._records:
            return False
        self._records[fingerprint] = dict(record)
        return True

    def fingerprints(self) -> list[str]:
        return sorted(self._records)


class DirectoryStore(ResultStore):
    """Content-addressed blobs on a (shareable) directory tree."""

    def __init__(
        self,
        root: Path | str,
        claim_stale_s: float | None = None,
    ):
        self.root = Path(root)
        self.claim_stale_s = (
            claim_stale_s if claim_stale_s is not None else _default_claim_stale_s()
        )
        #: observability counters (mirrored into runner/serve metrics)
        self.published = 0
        self.duplicate_publishes = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    def _blob_path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def _claim_path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.claim"

    def _quarantine(self, fingerprint: str, path: Path) -> None:
        """Move a bad blob aside so the slot reads empty (recompute)."""
        target_dir = self.root / QUARANTINE_DIR
        target = target_dir / f"{fingerprint}.{time.time_ns()}.json"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            self.quarantined += 1
        except OSError:
            # Racing quarantiners/republishers: losing the rename is fine,
            # the slot is being handled either way.
            pass

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> dict | None:
        path = self._blob_path(fingerprint)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._quarantine(fingerprint, path)
            return None
        if (
            not isinstance(record, dict)
            or record.get("fingerprint") != fingerprint
            or record.get("checksum") != blob_checksum(record)
        ):
            self._quarantine(fingerprint, path)
            return None
        return record

    def put(self, fingerprint: str, record: dict) -> bool:
        record = dict(record)
        record["fingerprint"] = fingerprint
        record.pop("checksum", None)
        record["checksum"] = blob_checksum(record)
        path = self._blob_path(fingerprint)
        if path.is_file():
            self.duplicate_publishes += 1
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.published += 1
        return True

    def fingerprints(self) -> list[str]:
        out = []
        if not self.root.is_dir():
            return out
        for shard in self.root.iterdir():
            if not shard.is_dir() or shard.name == QUARANTINE_DIR:
                continue
            for blob in shard.glob("*.json"):
                out.append(blob.stem)
        return sorted(out)

    # ------------------------------------------------------------------
    def claim(self, fingerprint: str) -> StoreClaim | None:
        """O_EXCL lock-file claim; breaks claims older than the stale cap."""
        path = self._claim_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat: retry
                if age <= self.claim_stale_s:
                    return None
                # The holder is presumed dead (SIGKILL mid-simulation).
                # Remove the stale claim and contend again.
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{os.getpid()} {time.time():.3f}\n")
            return StoreClaim(path)
