"""Parameter sweeps: sensitivity studies around the paper's design points.

The paper fixes one 4-wide and one 8-wide machine; these helpers vary a
single dimension at a time (window size, machine width, predictor size,
load speculation shadow) and report how the half-price techniques respond —
the kind of ablation a reviewer would ask for.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

from repro.analysis.report import ExperimentResult
from repro.analysis.runner import ExperimentRunner
from repro.pipeline.config import FOUR_WIDE, MachineConfig, SchedulerModel


def sweep(
    runner: ExperimentRunner,
    benchmark: str,
    configs: dict[str, MachineConfig],
    metric: Callable = None,
) -> dict[str, float]:
    """Run one benchmark over several configs; return metric per label.

    ``metric`` receives a SimulationResult and defaults to IPC.
    """
    metric = metric or (lambda result: result.ipc)
    runner.prefetch(
        [(benchmark, config, runner.seed, False) for config in configs.values()]
    )
    return {
        label: metric(runner.result(benchmark, config))
        for label, config in configs.items()
    }


def window_size_sweep(
    runner: ExperimentRunner,
    benchmark: str,
    sizes: Iterable[int] = (16, 32, 64, 128),
) -> ExperimentResult:
    """Base vs. sequential-wakeup IPC as the scheduler window grows.

    Bigger windows lengthen the wakeup bus, which is exactly when the
    paper's capacitance argument matters most; the IPC side of that trade
    is what this sweep reports.
    """
    result = ExperimentResult(
        "Sweep W",
        f"IPC vs. window size ({benchmark}, 4-wide)",
        ["window", "base ipc", "seq wakeup ipc", "normalized"],
    )
    points = []
    for size in sizes:
        base = dataclasses.replace(
            FOUR_WIDE, ruu_size=size, lsq_size=max(4, size // 2),
            name=f"4-wide-w{size}",
        )
        points.append((size, base, base.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)))
    runner.prefetch(
        [(benchmark, config, runner.seed, False)
         for _, base, seq in points for config in (base, seq)]
    )
    for size, base, seq in points:
        base_ipc = runner.result(benchmark, base).ipc
        seq_ipc = runner.result(benchmark, seq).ipc
        result.rows.append(
            [size, base_ipc, seq_ipc, seq_ipc / base_ipc if base_ipc else 0.0]
        )
    return result


def width_sweep(
    runner: ExperimentRunner,
    benchmark: str,
    widths: Iterable[int] = (2, 4, 8),
) -> ExperimentResult:
    """Technique cost vs. machine width (the paper contrasts 4 and 8)."""
    result = ExperimentResult(
        "Sweep X",
        f"Sequential wakeup cost vs. width ({benchmark})",
        ["width", "base ipc", "seq wakeup normalized"],
    )
    points = []
    for width in widths:
        base = dataclasses.replace(
            FOUR_WIDE,
            width=width,
            ruu_size=max(16, 16 * width),
            lsq_size=max(8, 8 * width),
            fu=dataclasses.replace(
                FOUR_WIDE.fu,
                int_alu=width,
                fp_alu=max(1, width // 2),
                int_mult=max(1, width // 2),
                fp_mult=max(1, width // 2),
                mem_ports=max(1, width // 2),
            ),
            name=f"{width}-wide-sweep",
        )
        points.append((width, base, base.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP)))
    runner.prefetch(
        [(benchmark, config, runner.seed, False)
         for _, base, seq in points for config in (base, seq)]
    )
    for width, base, seq in points:
        base_ipc = runner.result(benchmark, base).ipc
        seq_ipc = runner.result(benchmark, seq).ipc
        result.rows.append(
            [width, base_ipc, seq_ipc / base_ipc if base_ipc else 0.0]
        )
    return result
