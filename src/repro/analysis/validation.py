"""Validation scorecard: does the reproduction preserve the paper's shapes?

Each check encodes one conclusion of the paper as a testable predicate
over the regenerated experiments.  The scorecard is the automated version
of EXPERIMENTS.md's judgement column: absolute values differ (synthetic
workloads, see DESIGN.md §3) but the *direction and rough magnitude* of
every claim must hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import experiments
from repro.analysis.report import ExperimentResult
from repro.analysis.runner import ExperimentRunner


@dataclass(frozen=True)
class Check:
    """One shape check."""

    name: str
    paper_claim: str
    predicate: Callable[[ExperimentRunner], tuple[bool, str]]


def _averages(result: ExperimentResult) -> list:
    return result.row_for("average")


def _check_timing(runner) -> tuple[bool, str]:
    rows = experiments.timing_claims(runner).rows
    worst = max(abs(measured - paper) / paper for _, measured, paper in rows)
    return worst < 0.01, f"max relative error {worst:.3%}"


def _check_table2_ordering(runner) -> tuple[bool, str]:
    result = experiments.table2(runner)
    ipc4 = {row[0]: row[2] for row in result.rows}
    if "mcf" not in ipc4 or len(ipc4) < 2:
        return True, "subset without mcf: skipped"
    others = [v for k, v in ipc4.items() if k != "mcf"]
    ok = ipc4["mcf"] < min(others)
    return ok, f"mcf={ipc4['mcf']:.2f} vs min(others)={min(others):.2f}"


def _check_fig2_band(runner) -> tuple[bool, str]:
    result = experiments.fig2(runner)
    values = result.column("%2src-format")
    ok = all(5.0 <= v <= 45.0 for v in values)
    return ok, f"range {min(values):.1f}..{max(values):.1f}% (paper 18..36%)"


def _check_fig4_uncommon(runner) -> tuple[bool, str]:
    result = experiments.fig4(runner)
    values = result.column("%0-ready(4w)")
    ok = max(values) <= 40.0 and sum(values) / len(values) <= 25.0
    return ok, f"0-ready mean {sum(values)/len(values):.1f}% (paper 4..16%)"


def _check_fig10_rare(runner) -> tuple[bool, str]:
    result = experiments.fig10(runner)
    values = result.column("%needs-2-reads")
    mean = sum(values) / len(values)
    return mean <= 8.0, f"needs-2-reads mean {mean:.1f}% (paper <4%)"


def _check_fig14_seq_wakeup_cheap(runner) -> tuple[bool, str]:
    average = _averages(experiments.fig14(runner, 4))[1]
    return average >= 0.97, f"seq wakeup 4-wide normalized {average:.4f} (paper 0.996)"


def _check_fig14_beats_tag_elim(runner) -> tuple[bool, str]:
    row = _averages(experiments.fig14(runner, 8))
    seq, tag_elim = row[1], row[2]
    return seq >= tag_elim - 0.01, f"8-wide: seq {seq:.4f} vs tag elim {tag_elim:.4f}"


def _check_fig15_seq_rf_cheap(runner) -> tuple[bool, str]:
    average = _averages(experiments.fig15(runner, 4))[1]
    return average >= 0.97, f"seq RF 4-wide normalized {average:.4f} (paper 0.989)"


def _check_fig16_combined(runner) -> tuple[bool, str]:
    average = _averages(experiments.fig16(runner, 4))[1]
    return 0.93 <= average <= 1.005, f"combined 4-wide {average:.4f} (paper 0.978)"


ALL_CHECKS: tuple[Check, ...] = (
    Check("timing-anchors", "466->374 ps wakeup; 1.71->1.36 ns RF", _check_timing),
    Check("table2-mcf-slowest", "mcf is the lowest-IPC benchmark", _check_table2_ordering),
    Check("fig2-band", "18~36% of instructions are 2-source-format", _check_fig2_band),
    Check("fig4-uncommon", "few 2-source insts have 0 ready operands", _check_fig4_uncommon),
    Check("fig10-rare", "<4% of insts need two RF port reads", _check_fig10_rare),
    Check("fig14-seq-wakeup", "seq wakeup costs ~0.4% IPC", _check_fig14_seq_wakeup_cheap),
    Check("fig14-vs-tag-elim", "seq wakeup >= tag elim on 8-wide", _check_fig14_beats_tag_elim),
    Check("fig15-seq-rf", "seq register access costs ~1.1% IPC", _check_fig15_seq_rf_cheap),
    Check("fig16-combined", "combined techniques cost ~2.2% IPC", _check_fig16_combined),
)


def scorecard(runner: ExperimentRunner) -> ExperimentResult:
    """Run every shape check; returns a PASS/FAIL table."""
    result = ExperimentResult(
        "Scorecard",
        "Shape-preservation checks against the paper's conclusions",
        ["check", "verdict", "detail", "paper claim"],
    )
    # The checks share the base-machine runs; resolve them all through the
    # parallel engine before any check starts pulling results one by one.
    runner.prefetch_base()
    for check in ALL_CHECKS:
        ok, detail = check.predicate(runner)
        result.rows.append(
            [check.name, "PASS" if ok else "FAIL", detail, check.paper_claim]
        )
    return result
