"""Parallel experiment execution engine.

Independent simulation jobs — one ``(benchmark, config, seed, run-length,
shadow)`` tuple each — fan out over the persistent warm worker pool
(:mod:`repro.analysis.pool`), falling back to a per-call
:class:`concurrent.futures.ProcessPoolExecutor` when the pool is disabled
via ``REPRO_POOL=0``.  Results come back **in submission order** regardless
of which worker finishes first, so anything aggregated from them is
byte-identical to a serial run; each job is itself deterministic (seeded
synthetic workloads, no shared state between jobs).

Worker count resolution, in priority order:

1. the explicit ``jobs=`` argument (CLI ``--jobs`` flag lands here);
2. the ``REPRO_JOBS`` environment knob;
3. ``os.cpu_count()``.

``jobs <= 1`` (or a single job) runs inline in this process — no pool, no
pickling, no worker startup cost.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.fastsim import make_processor
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import SimulationResult
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload


def env_int(name: str, default: int) -> int:
    """Integer environment knob; warns (and falls back) on garbage values."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring {name}={raw!r}: not an integer, using default {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``, else the machine's CPU count."""
    return max(1, env_int("REPRO_JOBS", os.cpu_count() or 1))


@dataclass(frozen=True)
class Job:
    """One independent simulation: workload identity + machine + lengths."""

    benchmark: str
    config: MachineConfig
    seed: int
    insts: int
    warmup: int
    #: shadow-predictor table sizes, or None for no shadow bank
    shadow_sizes: tuple[int, ...] | None = None


def execute_job(job: Job) -> SimulationResult:
    """Run one job start to finish (top-level so worker processes can
    unpickle it).

    The job's config carries the already-resolved cycle-loop backend
    (the runner materializes it before building jobs), so worker
    processes never consult the environment themselves.
    """
    workload = SyntheticWorkload(get_profile(job.benchmark), seed=job.seed)
    processor = make_processor(
        workload, job.config, backend=job.config.backend, shadow_sizes=job.shadow_sizes
    )
    return processor.run(max_insts=job.insts, warmup=job.warmup)


def run_jobs(jobs: list[Job], workers: int | None = None) -> list[SimulationResult]:
    """Execute *jobs*, returning results in the same order as *jobs*.

    ``workers=None`` resolves via :func:`default_jobs`.  Submission order
    is preserved no matter how the pool schedules the work, and a job
    that raises re-raises the *first* (submission-order) failure here.

    Multi-job dispatches ride the process-wide warm pool — workers stay
    alive between calls with modules imported and configs memoized, so
    repeat fan-outs skip the ~100 ms spin-up cost.  ``REPRO_POOL=0``
    restores the legacy per-call executor.
    """
    if not jobs:
        return []
    count = workers if workers is not None else default_jobs()
    if count <= 1 or len(jobs) == 1:
        return [execute_job(job) for job in jobs]
    # Deferred import: the pool module imports Job/env_int from here.
    from repro.analysis.pool import get_pool, pool_enabled

    if pool_enabled():
        return get_pool(workers=count).run(jobs)
    max_workers = min(count, len(jobs))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(execute_job, jobs))
