"""Memoizing simulation runner shared by the benchmark harness.

A full figure regeneration needs up to 8 machine variants × 2 widths × 12
benchmarks; base-machine results are shared between figures, so results are
served through three layers: an in-process memo table, a persistent on-disk
JSON cache (:mod:`repro.analysis.cache`), and — only when both miss — a
fresh simulation.  Independent misses can be computed in parallel with
:meth:`ExperimentRunner.prefetch` (:mod:`repro.analysis.parallel`).
See ``docs/PERFORMANCE.md`` for the full picture.  Environment knobs::

    REPRO_INSTS      measured instructions per run   (default 15000)
    REPRO_WARMUP     warmup instructions per run     (default 20000)
    REPRO_SEED       first workload seed             (default 42)
    REPRO_SEEDS      seeds averaged per IPC comparison (default 2)
    REPRO_BENCHMARKS comma-separated benchmark subset (default: all 12)
    REPRO_JOBS       parallel simulation workers     (default: cpu count)
    REPRO_CACHE      "0" disables the on-disk result cache (default on)
    REPRO_CACHE_DIR  cache directory (default <repo>/results/cache)

Normalized-IPC comparisons average over ``REPRO_SEEDS`` workload seeds:
individual runs carry a percent-level scheduling-chaos noise (cache LRU
and replay interleavings), which seed averaging suppresses.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.cache import ResultCache
from repro.analysis.parallel import Job, env_int, run_jobs
from repro.analysis.singleflight import SingleFlight
from repro.fastsim import apply_backend, make_processor
from repro.obs.registry import MetricsRegistry
from repro.pipeline.config import EIGHT_WIDE, FOUR_WIDE, MachineConfig
from repro.pipeline.processor import SimulationResult
from repro.workloads.profiles import SPEC_BENCHMARKS, get_profile
from repro.workloads.synthetic import SyntheticWorkload

#: Figure 7's shadow predictor table sizes.
SHADOW_SIZES = (128, 512, 1024, 4096)

#: Backwards-compatible alias (the engine owns the canonical helper now).
_env_int = env_int


class ExperimentRunner:
    """Runs and memoizes benchmark simulations.

    ``result()`` is a thin read-through: in-memory memo first (same-object
    returns within a session), then the on-disk cache, and a simulation
    only when both miss.  ``prefetch()`` batches the missing runs through
    the parallel engine so later ``result()`` calls are pure lookups.
    """

    def __init__(
        self,
        insts: int | None = None,
        warmup: int | None = None,
        seed: int | None = None,
        benchmarks: tuple[str, ...] | None = None,
        num_seeds: int | None = None,
        jobs: int | None = None,
        cache: ResultCache | None | bool = True,
    ):
        self.insts = insts if insts is not None else env_int("REPRO_INSTS", 15_000)
        self.warmup = warmup if warmup is not None else env_int("REPRO_WARMUP", 20_000)
        self.seed = seed if seed is not None else env_int("REPRO_SEED", 42)
        count = num_seeds if num_seeds is not None else env_int("REPRO_SEEDS", 2)
        self.seeds = tuple(self.seed + index for index in range(max(1, count)))
        if benchmarks is None:
            env = os.environ.get("REPRO_BENCHMARKS", "")
            benchmarks = tuple(b for b in env.split(",") if b) or SPEC_BENCHMARKS
        self.benchmarks = benchmarks
        #: worker count for prefetch batches (None = resolve from env)
        self.jobs = jobs
        if cache is True:
            self.cache: ResultCache | None = ResultCache.from_env()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self._workloads: dict[tuple[str, int], SyntheticWorkload] = {}
        self._results: dict[tuple, SimulationResult] = {}
        #: harness-level observability: where results came from, what was
        #: exported.  Published on every serve (cheap — per result, not
        #: per cycle); read via ``runner.metrics.as_dict()``.
        self.metrics = MetricsRegistry()
        #: concurrent ``result()`` calls for the same key simulate once
        #: (threads sharing this runner, e.g. repro.serve worker threads)
        self._flight = SingleFlight()

    # ------------------------------------------------------------------
    def workload(self, benchmark: str, seed: int | None = None) -> SyntheticWorkload:
        key = (benchmark, seed if seed is not None else self.seed)
        if key not in self._workloads:
            self._workloads[key] = SyntheticWorkload(get_profile(benchmark), seed=key[1])
        return self._workloads[key]

    # ------------------------------------------------------------------
    def _key(self, benchmark: str, config: MachineConfig, seed: int, shadow: bool) -> tuple:
        # config.backend is part of the key even though the backends are
        # bit-identical: a memo hit must return the result of the backend
        # the caller resolved to, so per-backend baselines stay honest.
        return (
            benchmark,
            seed,
            config.name,
            config.width,
            config.backend,
            self.insts,
            self.warmup,
            shadow,
        )

    def _shadow_sizes(self, shadow: bool) -> tuple[int, ...] | None:
        return SHADOW_SIZES if shadow else None

    def result(
        self,
        benchmark: str,
        config: MachineConfig,
        shadow: bool = False,
        seed: int | None = None,
    ) -> SimulationResult:
        """Serve one benchmark simulation: memory -> disk -> compute.

        Concurrent callers (threads) that miss both cache layers for the
        same key are collapsed into one simulation by a singleflight lock:
        a single leader computes, the rest wait and share the result
        (``runner.coalesced`` counts the waits).
        """
        seed = seed if seed is not None else self.seed
        # The runner is a backend boundary: REPRO_BACKEND (then the config
        # field) is materialized here, so the cache fingerprint and memo
        # key both see the resolved choice.
        config = apply_backend(config)
        key = self._key(benchmark, config, seed, shadow)
        found = self._results.get(key)
        if found is not None:
            self.metrics.counter("runner.memo_hits").inc()
            return found
        found, leader = self._flight.do(key, lambda: self._compute(key, benchmark, config, seed, shadow))
        if not leader:
            self.metrics.counter("runner.coalesced").inc()
        return found

    #: per-round wait for another process's publication before the claim
    #: is re-contended (stale claims are broken by the store itself).
    CLAIM_WAIT_S = 20.0

    def _compute(
        self, key: tuple, benchmark: str, config: MachineConfig, seed: int, shadow: bool
    ) -> SimulationResult:
        """Cache-or-simulate under the singleflight lock (leader only)."""
        # Re-check the memo: a previous leader may have landed while this
        # caller was between its own memo miss and winning the flight.
        found = self._results.get(key)
        if found is not None:
            self.metrics.counter("runner.memo_hits").inc()
            return found
        shadow_sizes = self._shadow_sizes(shadow)
        claim = None
        if self.cache is not None:
            run = (benchmark, seed, self.insts, self.warmup, config, shadow_sizes)
            # Cross-process singleflight: among processes sharing this
            # store (serving-tier workers, parallel CI legs), exactly one
            # simulates a given fingerprint; the rest wait for the blob.
            # A claim abandoned by a dead process goes stale and is
            # taken over, so this loop always terminates.  Each wait is
            # capped at the stale horizon: past it the claim is
            # contestable, so there is no point sleeping longer.
            stale = getattr(self.cache.backend, "claim_stale_s", None)
            wait_s = self.CLAIM_WAIT_S
            if isinstance(stale, (int, float)):
                wait_s = max(0.1, min(wait_s, float(stale)))
            while True:
                found = self.cache.load(*run)
                if found is not None:
                    self.metrics.counter("runner.disk_hits").inc()
                    self._results[key] = found
                    return found
                claim = self.cache.claim(*run)
                if claim is not None:
                    break
                self.metrics.counter("runner.claim_waits").inc()
                self.cache.wait_published(*run, timeout=wait_s)
        try:
            processor = make_processor(
                self.workload(benchmark, seed),
                config,
                backend=config.backend,
                shadow_sizes=shadow_sizes,
            )
            found = processor.run(max_insts=self.insts, warmup=self.warmup)
            self.metrics.counter("runner.simulated").inc()
            self._results[key] = found
            if self.cache is not None:
                self.cache.store(
                    benchmark, seed, self.insts, self.warmup, config, shadow_sizes, found
                )
        finally:
            if claim is not None:
                claim.release()
        return found

    # ------------------------------------------------------------------
    def prefetch(
        self,
        requests: list[tuple[str, MachineConfig, int, bool]],
        workers: int | None = None,
    ) -> int:
        """Bulk-resolve ``(benchmark, config, seed, shadow)`` requests.

        Requests already served by the memory or disk layers are skipped;
        the rest fan out over the parallel engine (worker count: explicit
        *workers*, else the runner's ``jobs``, else ``REPRO_JOBS``/CPU
        count).  Returns the number of simulations actually executed.
        Results land in both cache layers, so later ``result()`` calls for
        the same keys are pure lookups — and deterministic job ordering
        makes every aggregate identical to a serial run.
        """
        pending: list[tuple[tuple, Job]] = []
        seen: set[tuple] = set()
        for benchmark, config, seed, shadow in requests:
            config = apply_backend(config)
            key = self._key(benchmark, config, seed, shadow)
            if key in seen or key in self._results:
                continue
            shadow_sizes = self._shadow_sizes(shadow)
            if self.cache is not None:
                found = self.cache.load(
                    benchmark, seed, self.insts, self.warmup, config, shadow_sizes
                )
                if found is not None:
                    self._results[key] = found
                    continue
            seen.add(key)
            pending.append(
                (key, Job(benchmark, config, seed, self.insts, self.warmup, shadow_sizes))
            )
        self.metrics.counter("runner.prefetch_warm_hits").inc(
            len(requests) - len(pending)
        )
        if not pending:
            # Fully-warm sweep: every request was a memo or disk hit, so
            # we never reach run_jobs and the worker pool is never even
            # created (it starts lazily on first dispatch).
            return 0
        workers = workers if workers is not None else self.jobs
        results = run_jobs([job for _, job in pending], workers=workers)
        self.metrics.counter("runner.simulated").inc(len(pending))
        for (key, job), result in zip(pending, results):
            self._results[key] = result
            if self.cache is not None:
                self.cache.store(
                    job.benchmark,
                    job.seed,
                    job.insts,
                    job.warmup,
                    job.config,
                    job.shadow_sizes,
                    result,
                )
        return len(pending)

    def prefetch_base(self, workers: int | None = None) -> int:
        """Warm every base-machine run the standard figures lean on."""
        requests: list[tuple[str, MachineConfig, int, bool]] = []
        for benchmark in self.benchmarks:
            for seed in self.seeds:
                requests.append((benchmark, FOUR_WIDE, seed, False))
                requests.append((benchmark, EIGHT_WIDE, seed, False))
            # Figure 7 / Table 3 read the shadow bank of the first seed.
            requests.append((benchmark, FOUR_WIDE, self.seed, True))
        return self.prefetch(requests, workers=workers)

    # ------------------------------------------------------------------
    def export_run(
        self,
        benchmark: str,
        config: MachineConfig,
        directory: Path | str,
        seed: int | None = None,
        shadow: bool = False,
    ) -> Path:
        """Write the versioned stats export of one run (cache-riding).

        The result is served through the usual memo → disk-cache → compute
        chain, so exporting a run that is already cached never simulates.
        """
        # Deferred: repro.obs.export reaches back into the analysis layer
        # for the shared fingerprint (see repro/obs/__init__.py).
        from repro.obs.export import build_stats_export, write_stats_json

        seed = seed if seed is not None else self.seed
        # Materialize the backend before building the document, so the
        # export's embedded config and fingerprint describe the run that
        # actually happened (result() resolves identically).
        config = apply_backend(config)
        result = self.result(benchmark, config, shadow=shadow, seed=seed)
        document = build_stats_export(
            result,
            config,
            benchmark=benchmark,
            seed=seed,
            insts=self.insts,
            warmup=self.warmup,
            shadow_sizes=self._shadow_sizes(shadow),
        )
        path = write_stats_json(document, directory)
        self.metrics.counter("runner.exports_written").inc()
        return path

    def export_stats(
        self,
        directory: Path | str,
        configs: tuple[MachineConfig, ...] | list[MachineConfig] | None = None,
        seeds: tuple[int, ...] | None = None,
        workers: int | None = None,
    ) -> list[Path]:
        """Export every (benchmark, config, seed) combination's manifest.

        Missing results are bulk-resolved through :meth:`prefetch` first,
        so independent simulations fan out over the parallel engine; the
        export files themselves are deterministic regardless of worker
        count (pinned by the CI determinism job).
        """
        configs = tuple(configs) if configs else (FOUR_WIDE,)
        seeds = tuple(seeds) if seeds else (self.seed,)
        requests = [
            (benchmark, config, seed, False)
            for benchmark in self.benchmarks
            for config in configs
            for seed in seeds
        ]
        self.prefetch(requests, workers=workers)
        return [
            self.export_run(benchmark, config, directory, seed=seed)
            for benchmark, config, seed, _ in requests
        ]

    # ------------------------------------------------------------------
    def base(self, benchmark: str, width: int = 4, shadow: bool = False) -> SimulationResult:
        """Base-machine result at the requested width (first seed)."""
        return self.result(benchmark, FOUR_WIDE if width == 4 else EIGHT_WIDE, shadow)

    def normalized_ipc(self, benchmark: str, config: MachineConfig) -> float:
        """IPC of *config* over the same-width base, averaged across seeds.

        Averaging paired (same-workload) ratios suppresses the percent-level
        scheduling-chaos noise of individual runs.
        """
        base_config = FOUR_WIDE if config.width == 4 else EIGHT_WIDE
        ratios = []
        for seed in self.seeds:
            base = self.result(benchmark, base_config, seed=seed)
            variant = self.result(benchmark, config, seed=seed)
            if base.ipc:
                ratios.append(variant.ipc / base.ipc)
        return sum(ratios) / len(ratios) if ratios else 0.0


_DEFAULT: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """Process-wide shared runner (benchmark modules reuse its cache)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ExperimentRunner()
    return _DEFAULT
