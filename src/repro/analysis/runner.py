"""Memoizing simulation runner shared by the benchmark harness.

A full figure regeneration needs up to 8 machine variants × 2 widths × 12
benchmarks; base-machine results are shared between figures, so results are
memoized by (benchmark, config, run length).  Environment knobs::

    REPRO_INSTS      measured instructions per run   (default 15000)
    REPRO_WARMUP     warmup instructions per run     (default 20000)
    REPRO_SEED       first workload seed             (default 42)
    REPRO_SEEDS      seeds averaged per IPC comparison (default 2)
    REPRO_BENCHMARKS comma-separated benchmark subset (default: all 12)

Normalized-IPC comparisons average over ``REPRO_SEEDS`` workload seeds:
individual runs carry a percent-level scheduling-chaos noise (cache LRU
and replay interleavings), which seed averaging suppresses.
"""

from __future__ import annotations

import os

from repro.pipeline.config import EIGHT_WIDE, FOUR_WIDE, MachineConfig
from repro.pipeline.processor import Processor, SimulationResult
from repro.workloads.profiles import SPEC_BENCHMARKS, get_profile
from repro.workloads.synthetic import SyntheticWorkload

#: Figure 7's shadow predictor table sizes.
SHADOW_SIZES = (128, 512, 1024, 4096)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


class ExperimentRunner:
    """Runs and memoizes benchmark simulations."""

    def __init__(
        self,
        insts: int | None = None,
        warmup: int | None = None,
        seed: int | None = None,
        benchmarks: tuple[str, ...] | None = None,
        num_seeds: int | None = None,
    ):
        self.insts = insts if insts is not None else _env_int("REPRO_INSTS", 15_000)
        self.warmup = warmup if warmup is not None else _env_int("REPRO_WARMUP", 20_000)
        self.seed = seed if seed is not None else _env_int("REPRO_SEED", 42)
        count = num_seeds if num_seeds is not None else _env_int("REPRO_SEEDS", 2)
        self.seeds = tuple(self.seed + index for index in range(max(1, count)))
        if benchmarks is None:
            env = os.environ.get("REPRO_BENCHMARKS", "")
            benchmarks = tuple(b for b in env.split(",") if b) or SPEC_BENCHMARKS
        self.benchmarks = benchmarks
        self._workloads: dict[tuple[str, int], SyntheticWorkload] = {}
        self._results: dict[tuple, SimulationResult] = {}

    # ------------------------------------------------------------------
    def workload(self, benchmark: str, seed: int | None = None) -> SyntheticWorkload:
        key = (benchmark, seed if seed is not None else self.seed)
        if key not in self._workloads:
            self._workloads[key] = SyntheticWorkload(get_profile(benchmark), seed=key[1])
        return self._workloads[key]

    def result(
        self,
        benchmark: str,
        config: MachineConfig,
        shadow: bool = False,
        seed: int | None = None,
    ) -> SimulationResult:
        """Run (or fetch the memoized) simulation of one benchmark."""
        seed = seed if seed is not None else self.seed
        key = (benchmark, seed, config.name, config.width, self.insts, self.warmup, shadow)
        if key not in self._results:
            processor = Processor(
                self.workload(benchmark, seed),
                config,
                shadow_sizes=SHADOW_SIZES if shadow else None,
            )
            self._results[key] = processor.run(max_insts=self.insts, warmup=self.warmup)
        return self._results[key]

    def base(self, benchmark: str, width: int = 4, shadow: bool = False) -> SimulationResult:
        """Base-machine result at the requested width (first seed)."""
        return self.result(benchmark, FOUR_WIDE if width == 4 else EIGHT_WIDE, shadow)

    def normalized_ipc(self, benchmark: str, config: MachineConfig) -> float:
        """IPC of *config* over the same-width base, averaged across seeds.

        Averaging paired (same-workload) ratios suppresses the percent-level
        scheduling-chaos noise of individual runs.
        """
        base_config = FOUR_WIDE if config.width == 4 else EIGHT_WIDE
        ratios = []
        for seed in self.seeds:
            base = self.result(benchmark, base_config, seed=seed)
            variant = self.result(benchmark, config, seed=seed)
            if base.ipc:
                ratios.append(variant.ipc / base.ipc)
        return sum(ratios) / len(ratios) if ratios else 0.0


_DEFAULT: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """Process-wide shared runner (benchmark modules reuse its cache)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ExperimentRunner()
    return _DEFAULT
