"""One function per paper table/figure, returning an ExperimentResult.

Each function documents what the paper reports and emits rows with the
paper's values next to the measured ones wherever the paper gives
per-benchmark numbers.  Absolute values are not expected to match (the
substrate is a synthetic-workload simulator, see DESIGN.md §3); the shape —
who wins, by roughly what factor — is the reproduction target.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult
from repro.analysis.runner import SHADOW_SIZES, ExperimentRunner
from repro.pipeline.config import (
    EIGHT_WIDE,
    FOUR_WIDE,
    MachineConfig,
    RegFileModel,
    SchedulerModel,
)
from repro.timing.regfile_delay import RegisterFileDelayModel
from repro.timing.wakeup_delay import WakeupDelayModel
from repro.workloads.feed import StreamStats
from repro.workloads.profiles import get_profile

#: Stream length used for the machine-independent characterizations.
_STREAM_OPS = 60_000


# ----------------------------------------------------------------------
# Table 1 / Table 2
# ----------------------------------------------------------------------
def table1(runner: ExperimentRunner | None = None) -> ExperimentResult:
    """Table 1: machine configurations."""
    result = ExperimentResult(
        "Table 1",
        "Machine configurations",
        ["parameter", "4-wide", "8-wide"],
    )
    rows = [
        ("fetch/issue/commit width", FOUR_WIDE.width, EIGHT_WIDE.width),
        ("RUU entries", FOUR_WIDE.ruu_size, EIGHT_WIDE.ruu_size),
        ("LSQ entries", FOUR_WIDE.lsq_size, EIGHT_WIDE.lsq_size),
        ("integer ALUs", FOUR_WIDE.fu.int_alu, EIGHT_WIDE.fu.int_alu),
        ("FP ALUs", FOUR_WIDE.fu.fp_alu, EIGHT_WIDE.fu.fp_alu),
        ("int MULT/DIV", FOUR_WIDE.fu.int_mult, EIGHT_WIDE.fu.int_mult),
        ("FP MULT/DIV", FOUR_WIDE.fu.fp_mult, EIGHT_WIDE.fu.fp_mult),
        ("memory ports", FOUR_WIDE.fu.mem_ports, EIGHT_WIDE.fu.mem_ports),
        ("IL1", "64KB 2-way 32B", "64KB 2-way 32B"),
        ("DL1", "64KB 4-way 16B", "64KB 4-way 16B"),
        ("L2", "512KB 4-way 64B", "512KB 4-way 64B"),
        ("memory latency", FOUR_WIDE.mem.memory_latency, EIGHT_WIDE.mem.memory_latency),
    ]
    result.rows = [list(row) for row in rows]
    return result


def _prefetch_base(runner: ExperimentRunner, widths=(4,), shadow: bool = False) -> None:
    """Fan the base-machine runs a figure needs through the parallel engine."""
    configs = {4: FOUR_WIDE, 8: EIGHT_WIDE}
    runner.prefetch(
        [
            (name, configs[width], runner.seed, shadow)
            for name in runner.benchmarks
            for width in widths
        ]
    )


def table2(runner: ExperimentRunner) -> ExperimentResult:
    """Table 2: per-benchmark base IPC on the 4- and 8-wide machines."""
    result = ExperimentResult(
        "Table 2",
        "Benchmarks and base IPC",
        ["benchmark", "input set", "ipc4", "paper ipc4", "ipc8", "paper ipc8"],
        notes=["workloads are synthetic clones; see DESIGN.md §3"],
    )
    _prefetch_base(runner, widths=(4, 8))
    for name in runner.benchmarks:
        paper = get_profile(name).paper
        result.rows.append(
            [
                name,
                paper.input_set,
                runner.base(name, 4).ipc,
                paper.base_ipc_4w,
                runner.base(name, 8).ipc,
                paper.base_ipc_8w,
            ]
        )
    return result


# ----------------------------------------------------------------------
# Figures 2 and 3: machine-independent stream characterization.
# ----------------------------------------------------------------------
def fig2(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 2: percentage of 2-source-format instructions."""
    result = ExperimentResult(
        "Figure 2",
        "2-source-format instructions (paper range: 18~36%, stores separate)",
        ["benchmark", "%2src-format", "%stores", "%other"],
    )
    for name in runner.benchmarks:
        stats = StreamStats.from_stream(runner.workload(name), limit=_STREAM_OPS)
        result.rows.append(
            [
                name,
                100.0 * stats.frac_two_source_format,
                100.0 * stats.frac_stores,
                100.0 * (1.0 - stats.frac_two_source_format - stats.frac_stores),
            ]
        )
    return result


def fig3(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 3: 2-source-format breakdown by unique non-zero sources."""
    result = ExperimentResult(
        "Figure 3",
        "Unique-source breakdown (paper: 6~23% are true 2-source)",
        ["benchmark", "%2-source", "%demoted(zero/dup)", "%nops"],
    )
    for name in runner.benchmarks:
        stats = StreamStats.from_stream(runner.workload(name), limit=_STREAM_OPS)
        result.rows.append(
            [
                name,
                100.0 * stats.frac_two_source,
                100.0 * stats.one_effective_source / max(1, stats.total),
                100.0 * stats.frac_eliminated_nops,
            ]
        )
    return result


# ----------------------------------------------------------------------
# Figure 4 / Figure 6 / Table 3 / Figure 7: scheduler characterization.
# ----------------------------------------------------------------------
def fig4(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 4: ready operands of 2-source instructions at insert."""
    result = ExperimentResult(
        "Figure 4",
        "Ready operands at insert (paper: 4~16% have 0 ready)",
        ["benchmark", "%0-ready(4w)", "%1-ready(4w)", "%2-ready(4w)", "%0-ready(8w)"],
    )
    _prefetch_base(runner, widths=(4, 8))
    for name in runner.benchmarks:
        stats4 = runner.base(name, 4).stats
        stats8 = runner.base(name, 8).stats
        total = max(1, stats4.two_source_dispatched)
        result.rows.append(
            [
                name,
                100.0 * stats4.ready_at_insert[0] / total,
                100.0 * stats4.ready_at_insert[1] / total,
                100.0 * stats4.ready_at_insert[2] / total,
                100.0 * stats8.frac_two_pending,
            ]
        )
    return result


def fig6(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 6: wakeup slack between the two operand wakeups."""
    result = ExperimentResult(
        "Figure 6",
        "Wakeup slack of 2-pending-source insts (paper: <3% simultaneous)",
        ["benchmark", "%slack0(simult)", "%slack1", "%slack2", "%slack3+"],
    )
    _prefetch_base(runner)
    for name in runner.benchmarks:
        stats = runner.base(name, 4).stats
        total = max(1, stats.two_pending_observed)
        slack = stats.wakeup_slack
        three_plus = sum(count for s, count in slack.items() if s >= 3)
        result.rows.append(
            [
                name,
                100.0 * slack[0] / total,
                100.0 * slack[1] / total,
                100.0 * slack[2] / total,
                100.0 * three_plus / total,
            ]
        )
    return result


def table3(runner: ExperimentRunner) -> ExperimentResult:
    """Table 3: wakeup-order stability and last-arriving side split."""
    result = ExperimentResult(
        "Table 3",
        "Wakeup order stability / last-arriving side",
        [
            "benchmark",
            "%same(4w)", "paper", "%left(4w)", "paper(l)",
            "%same(8w)", "paper8", "%left(8w)", "paper8(l)",
        ],
    )
    _prefetch_base(runner, widths=(4, 8))
    for name in runner.benchmarks:
        paper = get_profile(name).paper
        order4 = runner.base(name, 4).stats.order
        order8 = runner.base(name, 8).stats.order
        result.rows.append(
            [
                name,
                100.0 * order4.frac_same, paper.wakeup_order_same_4w,
                100.0 * order4.frac_last_left, paper.last_left_4w,
                100.0 * order8.frac_same, paper.wakeup_order_same_8w,
                100.0 * order8.frac_last_left, paper.last_left_8w,
            ]
        )
    return result


def fig7(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 7: last-arriving predictor accuracy vs. table size."""
    headers = ["benchmark"] + [f"{size}e(4w)" for size in SHADOW_SIZES] + ["%simult"]
    result = ExperimentResult(
        "Figure 7",
        "Bimodal last-arriving predictor accuracy (128..4096 entries)",
        headers,
        notes=["accuracy over non-simultaneous 2-pending wakeups"],
    )
    _prefetch_base(runner, shadow=True)
    for name in runner.benchmarks:
        stats = runner.base(name, 4, shadow=True).stats
        bank = stats.shadow_bank
        table = bank.accuracy_table()
        result.rows.append(
            [name]
            + [100.0 * table[size] for size in SHADOW_SIZES]
            + [100.0 * bank.frac_simultaneous]
        )
    return result


def fig10(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 10: register access characterization of 2-source insts."""
    result = ExperimentResult(
        "Figure 10",
        "Register accesses (paper: <4% of insts need two port reads)",
        ["benchmark", "%back-to-back", "%2-ready", "%non-b2b", "%needs-2-reads"],
        notes=["percentages of all committed instructions, 4-wide base"],
    )
    _prefetch_base(runner)
    for name in runner.benchmarks:
        stats = runner.base(name, 4).stats
        total = max(1, stats.committed)
        result.rows.append(
            [
                name,
                100.0 * stats.rf_back_to_back / total,
                100.0 * stats.rf_two_ready / total,
                100.0 * stats.rf_non_back_to_back / total,
                100.0 * stats.frac_two_rf_reads,
            ]
        )
    return result


# ----------------------------------------------------------------------
# Figures 14 / 15 / 16: the performance evaluation.
# ----------------------------------------------------------------------
def _normalized_rows(runner, variants: dict[str, MachineConfig]) -> list[list]:
    # Every (benchmark, config, seed) cell is independent: resolve them all
    # through the parallel engine up front, then aggregate from the cache.
    bases = {config.width: FOUR_WIDE if config.width == 4 else EIGHT_WIDE
             for config in variants.values()}
    requests = [
        (name, config, seed, False)
        for name in runner.benchmarks
        for seed in runner.seeds
        for config in list(bases.values()) + list(variants.values())
    ]
    runner.prefetch(requests)
    rows = []
    for name in runner.benchmarks:
        row = [name]
        for config in variants.values():
            row.append(runner.normalized_ipc(name, config))
        rows.append(row)
    if rows:
        average = ["average"]
        for index in range(1, len(rows[0])):
            average.append(sum(row[index] for row in rows) / len(rows))
        rows.append(average)
    return rows


def fig14(runner: ExperimentRunner, width: int = 4) -> ExperimentResult:
    """Figure 14: sequential wakeup vs. tag elimination, normalized IPC.

    Paper averages: seq wakeup 0.4%/0.6% degradation (4/8-wide); without a
    predictor 1.6%/2.6%; tag elimination worse, up to 10.6% (crafty, 8w).
    """
    base = FOUR_WIDE if width == 4 else EIGHT_WIDE
    variants = {
        "seq wakeup": base.with_techniques(scheduler=SchedulerModel.SEQ_WAKEUP),
        "tag elim": base.with_techniques(scheduler=SchedulerModel.TAG_ELIM),
        "seq wakeup nopred": base.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, predictor_entries=None
        ),
    }
    result = ExperimentResult(
        "Figure 14",
        f"Sequential wakeup performance, {width}-wide (normalized IPC)",
        ["benchmark", "seq wakeup", "tag elim", "seq wakeup nopred"],
        notes=["1k-entry direct-mapped bimodal last-arriving predictor"],
    )
    result.rows = _normalized_rows(runner, variants)
    return result


def fig15(runner: ExperimentRunner, width: int = 4) -> ExperimentResult:
    """Figure 15: register file configurations, normalized IPC.

    Paper averages: sequential register access loses 1.1%/0.7% (4/8-wide),
    worst case 2.2% (eon, 4-wide).
    """
    base = FOUR_WIDE if width == 4 else EIGHT_WIDE
    variants = {
        "seq RF access": base.with_techniques(regfile=RegFileModel.SEQUENTIAL),
        "1 extra RF stage": base.with_techniques(regfile=RegFileModel.EXTRA_STAGE),
        "reg + crossbar": base.with_techniques(regfile=RegFileModel.CROSSBAR),
    }
    result = ExperimentResult(
        "Figure 15",
        f"Register file performance, {width}-wide (normalized IPC)",
        ["benchmark", "seq RF access", "1 extra RF stage", "reg + crossbar"],
    )
    result.rows = _normalized_rows(runner, variants)
    return result


def fig16(runner: ExperimentRunner, width: int = 4) -> ExperimentResult:
    """Figure 16: combined sequential wakeup + sequential register access.

    Paper: 2.2% average degradation, worst case 4.8% (bzip, 8-wide).
    """
    base = FOUR_WIDE if width == 4 else EIGHT_WIDE
    variants = {
        "combined": base.with_techniques(
            scheduler=SchedulerModel.SEQ_WAKEUP, regfile=RegFileModel.SEQUENTIAL
        ),
    }
    result = ExperimentResult(
        "Figure 16",
        f"Combined techniques, {width}-wide (normalized IPC)",
        ["benchmark", "combined"],
        notes=["only the fast-side now bit can clear seq_reg_access"],
    )
    result.rows = _normalized_rows(runner, variants)
    return result


# ----------------------------------------------------------------------
# Circuit timing claims (Sections 3.3 and 4).
# ----------------------------------------------------------------------
def timing_claims(runner: ExperimentRunner | None = None) -> ExperimentResult:
    """The two circuit-level numbers the paper quotes."""
    wakeup = WakeupDelayModel()
    regfile = RegisterFileDelayModel()
    conventional = wakeup.conventional_delay(64, 4)
    sequential = wakeup.sequential_wakeup_delay(64, 4)
    full, reduced = regfile.paper_anchor()
    result = ExperimentResult(
        "Timing",
        "Circuit-level claims (Sections 3.3 / 4)",
        ["quantity", "measured", "paper"],
    )
    result.rows = [
        ["wakeup conventional (ps)", conventional, 466.0],
        ["wakeup sequential (ps)", sequential, 374.0],
        ["wakeup speedup (%)", 100.0 * (conventional - sequential) / sequential, 24.6],
        ["RF access 24 ports (ns)", full, 1.71],
        ["RF access 16 ports (ns)", reduced, 1.36],
        ["RF access drop (%)", 100.0 * (full - reduced) / full, 20.5],
    ]
    return result


def predictor_designs(runner: ExperimentRunner) -> ExperimentResult:
    """Section 3.2's design-space study: bimodal vs. sophisticated designs.

    The paper examined several last-arriving predictor designs and found a
    simple PC-indexed bimodal matches them; this regenerates that
    comparison at equal table capacity (1k entries), trained on every
    resolved 2-source wakeup order of the base 4-wide machine.
    """
    result = ExperimentResult(
        "Predictor designs",
        "Last-arriving predictor design comparison (accuracy %, 4-wide)",
        ["benchmark", "bimodal", "two-level", "gshare", "static-right"],
        notes=["the paper's conclusion: the simple bimodal design suffices"],
    )
    _prefetch_base(runner, shadow=True)
    for name in runner.benchmarks:
        bank = runner.base(name, 4, shadow=True).stats.design_bank
        table = bank.accuracy_table()
        result.rows.append(
            [name]
            + [100.0 * table[key] for key in ("bimodal", "two-level", "gshare", "static-right")]
        )
    return result


def cost_summary(runner: ExperimentRunner) -> ExperimentResult:
    """The half-price trade in one table: hardware saved vs. IPC paid.

    Condenses the paper's argument: halving the timing-critical structures
    (wakeup bus load, register read ports) buys large delay/energy/area
    reductions for an IPC cost measured in single percents (Figure 16).
    """
    wakeup = WakeupDelayModel()
    regfile = RegisterFileDelayModel()
    combined4 = fig16(runner, width=4).row_for("average")[1]
    combined8 = fig16(runner, width=8).row_for("average")[1]
    result = ExperimentResult(
        "Cost",
        "Half-price architecture: complexity saved vs. IPC paid",
        ["quantity", "conventional", "half-price", "change %"],
    )

    def pct(before, after):
        return 100.0 * (after - before) / before

    wakeup_before = wakeup.conventional_delay(64, 4)
    wakeup_after = wakeup.sequential_wakeup_delay(64, 4)
    energy_before = wakeup.broadcast_energy(64, 2.0)
    energy_after = wakeup.broadcast_energy(64, 1.0)
    access_before, access_after = regfile.paper_anchor()
    # Areas normalized to the conventional configuration.
    area_before = 1.0
    area_after = regfile.relative_area(160, 16) / regfile.relative_area(160, 24)
    result.rows = [
        ["fast-bus comparators / entry", 2, 1, -50.0],
        ["wakeup delay, 64 entries (ps)", wakeup_before, wakeup_after,
         pct(wakeup_before, wakeup_after)],
        ["broadcast energy (rel)", energy_before, energy_after,
         pct(energy_before, energy_after)],
        ["RF read ports (8-wide)", 16, 8, -50.0],
        ["RF access time (ns)", access_before, access_after,
         pct(access_before, access_after)],
        ["RF area (rel)", area_before, area_after, pct(area_before, area_after)],
        ["IPC, 4-wide (normalized)", 1.0, combined4, pct(1.0, combined4)],
        ["IPC, 8-wide (normalized)", 1.0, combined8, pct(1.0, combined8)],
    ]
    return result


#: Registry used by the examples and the benchmark harness.
ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig6": fig6,
    "table3": table3,
    "fig7": fig7,
    "fig10": fig10,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "timing": timing_claims,
    "cost": cost_summary,
    "predictors": predictor_designs,
}
