"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.analysis.runner` — memoizing simulation runner;
* :mod:`repro.analysis.experiments` — one function per table/figure;
* :mod:`repro.analysis.report` — ASCII rendering of experiment results.
"""

from repro.analysis.runner import ExperimentRunner, default_runner
from repro.analysis.report import ExperimentResult, render
from repro.analysis import experiments

__all__ = ["ExperimentRunner", "default_runner", "ExperimentResult", "render", "experiments"]
