"""Process-local singleflight: concurrent duplicate calls compute once.

``SingleFlight.do(key, fn)`` guarantees that among concurrent callers
passing the same *key*, exactly one (the *leader*) executes ``fn``; the
rest block until the leader finishes and receive the same return value
(or re-raise the leader's exception).  Calls with different keys never
block each other, and once a flight lands the key is forgotten — a later
call starts a fresh flight (callers keep their own memo/disk caches in
front of this, e.g. :class:`~repro.analysis.runner.ExperimentRunner`).

This closes the duplicate-work race in ``ExperimentRunner.result()``:
two threads missing the memo and disk layers for the same fingerprint
used to both simulate.  The serving layer's request coalescer
(:mod:`repro.serve`) is the same idea one level up, applied to queued
jobs instead of in-flight thread calls.
"""

from __future__ import annotations

import threading


class _Flight:
    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class SingleFlight:
    """Deduplicates concurrent calls by key (thread-safe, process-local)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[object, _Flight] = {}

    def do(self, key, fn):
        """Return ``(value, leader)`` for this flight.

        ``leader`` is True for the caller that actually executed *fn*.
        Followers observing a leader exception re-raise the same object.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leading = True
            else:
                leading = False
        if not leading:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, False
        try:
            flight.value = fn()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
        return flight.value, True

    def in_flight(self) -> int:
        """Number of keys currently being computed (diagnostics)."""
        with self._lock:
            return len(self._flights)
