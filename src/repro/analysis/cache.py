"""Persistent result cache for simulation runs (store-backed).

Every finished :class:`~repro.pipeline.processor.SimulationResult` can be
stored as one small JSON record and replayed in a later session without
re-simulating.  The cache is a thin domain adapter: it computes the
fingerprint, serializes/deserializes records, and delegates all blob I/O
to a :class:`~repro.analysis.store.ResultStore` (by default a
content-addressed :class:`~repro.analysis.store.DirectoryStore` under
``results/cache/`` — shareable between processes and, on a shared
filesystem, between serving-tier workers).  Records are keyed by a
SHA-256 fingerprint over everything that determines a run's outcome:

* the **timing-model version stamp**
  (:data:`repro.pipeline.processor.TIMING_MODEL_VERSION`) — bumped whenever
  a code change alters simulated timing, which invalidates every existing
  record at once;
* the workload identity (benchmark profile name + seed);
* the run lengths (measured instructions, warmup instructions);
* the **full machine configuration** (``dataclasses.asdict`` of the frozen
  config, enums flattened to their values) — sweep variants that share a
  name but differ in any parameter can never collide;
* the shadow-predictor sizes, when a shadow bank was attached.

Serialization keeps every counter the analysis layer consumes after a run
(IPC inputs, figure counters, predictor-bank accuracy counts).  Predictor
*table contents* and the per-PC wakeup-order history are deliberately not
persisted: they only influence behaviour **during** a simulation, never the
interpretation of a finished one.

Environment knobs::

    REPRO_CACHE          "0"/"off"/"false" disables the disk cache (default on)
    REPRO_CACHE_DIR      cache directory (default <repo>/results/cache)
    REPRO_CLAIM_STALE_S  seconds before an abandoned cross-process claim
                         is broken by the next contender (default 300)
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from collections import Counter
from pathlib import Path

from repro.analysis.store import DirectoryStore, ResultStore, StoreClaim
from repro.core.last_arrival import DesignComparisonBank, ShadowPredictorBank
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import TIMING_MODEL_VERSION, SimulationResult
from repro.pipeline.stats import STAT_COUNTER_FIELDS, SimStats, WakeupOrderStats

#: Bump when the *record format* (not the timing model) changes shape.
#: v2: records are self-validating (payload checksum), so a partially
#: written or bit-rotted file is a miss, never a wrong hit.
CACHE_FORMAT_VERSION = 2


def _json_default(value):
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"not JSON-serializable: {value!r}")  # pragma: no cover


def fingerprint(
    benchmark: str,
    seed: int,
    insts: int,
    warmup: int,
    config: MachineConfig,
    shadow_sizes: tuple[int, ...] | None,
) -> str:
    """Stable digest identifying one simulation's full input space."""
    identity = {
        "model_version": TIMING_MODEL_VERSION,
        "format_version": CACHE_FORMAT_VERSION,
        "benchmark": benchmark,
        "seed": seed,
        "insts": insts,
        "warmup": warmup,
        "shadow_sizes": list(shadow_sizes) if shadow_sizes else None,
        "config": dataclasses.asdict(config),
    }
    payload = json.dumps(identity, sort_keys=True, default=_json_default)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# SimulationResult <-> JSON record
# ----------------------------------------------------------------------

#: SimStats plain-integer counters, serialized verbatim (canonical list
#: lives next to the dataclass so new counters propagate everywhere).
_STAT_COUNTERS = STAT_COUNTER_FIELDS

_ORDER_COUNTERS = ("same_order", "diff_order", "last_left", "last_right", "simultaneous")


def _bank_to_record(bank) -> dict:
    return {
        "samples": bank.samples,
        "predictors": {
            str(key): {"predictions": p.predictions, "correct": p.correct}
            for key, p in bank.predictors.items()
        },
    }


def serialize_result(result: SimulationResult) -> dict:
    """Flatten a result to a JSON-compatible dict."""
    stats = result.stats
    record: dict = {
        "config_name": result.config_name,
        "workload_name": result.workload_name,
        "total_committed": result.total_committed,
        "total_cycles": result.total_cycles,
        "counters": {name: getattr(stats, name) for name in _STAT_COUNTERS},
        "ready_at_insert": {str(k): v for k, v in stats.ready_at_insert.items()},
        "wakeup_slack": {str(k): v for k, v in stats.wakeup_slack.items()},
        "order": {name: getattr(stats.order, name) for name in _ORDER_COUNTERS},
        "shadow_bank": None,
        "design_bank": None,
    }
    if stats.shadow_bank is not None:
        shadow = _bank_to_record(stats.shadow_bank)
        shadow["simultaneous"] = stats.shadow_bank.simultaneous
        record["shadow_bank"] = shadow
    if stats.design_bank is not None:
        record["design_bank"] = _bank_to_record(stats.design_bank)
    return record


def deserialize_result(record: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`serialize_result`."""
    stats = SimStats()
    for name in _STAT_COUNTERS:
        setattr(stats, name, record["counters"][name])
    stats.ready_at_insert = Counter({int(k): v for k, v in record["ready_at_insert"].items()})
    stats.wakeup_slack = Counter({int(k): v for k, v in record["wakeup_slack"].items()})
    order = WakeupOrderStats()
    for name in _ORDER_COUNTERS:
        setattr(order, name, record["order"][name])
    stats.order = order
    shadow = record.get("shadow_bank")
    if shadow is not None:
        sizes = tuple(sorted(int(k) for k in shadow["predictors"]))
        bank = ShadowPredictorBank(sizes)
        bank.samples = shadow["samples"]
        bank.simultaneous = shadow["simultaneous"]
        for key, counts in shadow["predictors"].items():
            predictor = bank.predictors[int(key)]
            predictor.predictions = counts["predictions"]
            predictor.correct = counts["correct"]
        stats.shadow_bank = bank
    design = record.get("design_bank")
    if design is not None:
        bank = DesignComparisonBank()
        bank.samples = design["samples"]
        for name, counts in design["predictors"].items():
            predictor = bank.predictors.get(name)
            if predictor is not None:
                predictor.predictions = counts["predictions"]
                predictor.correct = counts["correct"]
        stats.design_bank = bank
    return SimulationResult(
        config_name=record["config_name"],
        workload_name=record["workload_name"],
        stats=stats,
        total_committed=record["total_committed"],
        total_cycles=record["total_cycles"],
    )


def record_checksum(record: dict) -> str:
    """Self-validation digest over a record's canonical JSON payload.

    Computed over every field except ``checksum`` itself.  A record whose
    stored digest does not match — truncated write, manual edit, bit rot,
    or a partially materialized record directory — is treated as a cache
    miss instead of being served as a (wrong) hit.
    """
    payload = {key: value for key, value in record.items() if key != "checksum"}
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Disk store
# ----------------------------------------------------------------------
def _repo_root() -> Path:
    """Walk up from this file to the directory holding pyproject.toml."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").is_file():
            return parent
    return Path.cwd()


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return Path(env)
    return _repo_root() / "results" / "cache"


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


class ResultCache:
    """Simulation records keyed by input fingerprint, on a ResultStore.

    The domain adapter between the analysis layer (benchmark, seed,
    config, run lengths) and the content-addressed blob store.  All the
    durability guarantees — atomic publication, checksum-verified reads,
    quarantine of torn blobs, cross-process claims — live in the store;
    this class owns fingerprinting and (de)serialization plus the
    hit/miss accounting the runner's metrics surface.
    """

    def __init__(
        self,
        directory: Path | str | None = None,
        store: ResultStore | None = None,
    ):
        if store is not None:
            self.backend = store
        else:
            self.backend = DirectoryStore(
                Path(directory) if directory is not None else default_cache_dir()
            )
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def from_env(cls) -> "ResultCache | None":
        """Build the cache the environment asks for (None = disabled)."""
        return cls() if cache_enabled() else None

    @property
    def directory(self) -> Path | None:
        """The backing directory, when the store has one (diagnostics)."""
        return getattr(self.backend, "root", None)

    # ------------------------------------------------------------------
    def load(
        self,
        benchmark: str,
        seed: int,
        insts: int,
        warmup: int,
        config: MachineConfig,
        shadow_sizes: tuple[int, ...] | None,
    ) -> SimulationResult | None:
        """Return the cached result for these inputs, or None on a miss."""
        digest = fingerprint(benchmark, seed, insts, warmup, config, shadow_sizes)
        record = self.backend.get(digest)
        if record is None:
            self.misses += 1
            return None
        stored_checksum = record.get("checksum")
        if (
            record.get("fingerprint") != digest
            or stored_checksum is None
            or stored_checksum != record_checksum(record)
        ):
            # Corrupt or pre-v2 record that a permissive store served
            # anyway: refuse it (DirectoryStore already quarantines).
            self.misses += 1
            return None
        try:
            result = deserialize_result(record)
        except (KeyError, TypeError, ValueError):
            # Structurally damaged despite a matching checksum is
            # impossible in practice, but never let a cache file crash a
            # run — recompute instead.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(
        self,
        benchmark: str,
        seed: int,
        insts: int,
        warmup: int,
        config: MachineConfig,
        shadow_sizes: tuple[int, ...] | None,
        result: SimulationResult,
    ) -> Path | None:
        """Publish one result; returns the blob path for directory stores."""
        digest = fingerprint(benchmark, seed, insts, warmup, config, shadow_sizes)
        record = serialize_result(result)
        record["fingerprint"] = digest
        record["benchmark"] = benchmark
        record["seed"] = seed
        record["insts"] = insts
        record["warmup"] = warmup
        record["model_version"] = TIMING_MODEL_VERSION
        record["checksum"] = record_checksum(record)
        self.backend.put(digest, record)
        self.stores += 1
        if isinstance(self.backend, DirectoryStore):
            return self.backend._blob_path(digest)
        return None

    # ------------------------------------------------------------------
    # Cross-process singleflight (delegated to the store)
    # ------------------------------------------------------------------
    def claim(
        self,
        benchmark: str,
        seed: int,
        insts: int,
        warmup: int,
        config: MachineConfig,
        shadow_sizes: tuple[int, ...] | None,
    ) -> StoreClaim | None:
        """Try to become the computing process for these inputs."""
        digest = fingerprint(benchmark, seed, insts, warmup, config, shadow_sizes)
        return self.backend.claim(digest)

    def wait_published(
        self,
        benchmark: str,
        seed: int,
        insts: int,
        warmup: int,
        config: MachineConfig,
        shadow_sizes: tuple[int, ...] | None,
        timeout: float,
    ) -> bool:
        """Poll for another process's publication of these inputs."""
        digest = fingerprint(benchmark, seed, insts, warmup, config, shadow_sizes)
        return self.backend.wait(digest, timeout) is not None
