"""ASCII rendering for experiment results (tables and bar charts)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    Attributes:
        exp_id: the paper's identifier ("Table 2", "Figure 14", ...).
        title: short description.
        headers: column names.
        rows: table cells (numbers are formatted by :func:`render`).
        notes: free-form caveats shown under the table.
    """

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list:
        """Values of the named column across all rows."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_for(self, key) -> list:
        """The row whose first cell equals *key*."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(key)


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned ASCII table."""
    table = [result.headers] + [
        [_format_cell(cell) for cell in row] for row in result.rows
    ]
    widths = [max(len(row[col]) for row in table) for col in range(len(result.headers))]
    lines = [f"== {result.exp_id}: {result.title} =="]
    header = "  ".join(h.ljust(w) for h, w in zip(table[0], widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in table[1:]:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_bars(
    title: str, values: dict[str, float], scale: float = 40.0, unit: str = ""
) -> str:
    """Render a labelled horizontal bar chart (for figure-style output)."""
    if not values:
        return title
    peak = max(abs(v) for v in values.values()) or 1.0
    lines = [title]
    label_width = max(len(k) for k in values)
    for key, value in values.items():
        bar = "#" * max(0, round(abs(value) / peak * scale))
        lines.append(f"  {key.ljust(label_width)} |{bar} {value:.3f}{unit}")
    return "\n".join(lines)
