"""Persistent warm worker pool with batched (chunked) dispatch.

:func:`repro.analysis.parallel.run_jobs` historically paid a ~100 ms
fixed cost per fan-out: a fresh ``ProcessPoolExecutor`` per call means
worker spawn + cold module import + full ``MachineConfig`` pickling for
every dispatch, which dwarfs a ~2.4 ms native-backend simulation (see
``benchmarks/bench_simulator_speed.py::test_speed_parallel_fanout_overhead``).
This module keeps the workers *alive* instead:

* **Warm processes.** A :class:`WorkerPool` spawns its workers once
  (lazily, on the first dispatch) and reuses them across every
  subsequent sweep in the process.  Modules are imported and backends
  resolved once per worker lifetime, not once per call.
* **Compact descriptors.** Workers memoize :class:`~repro.pipeline.
  config.MachineConfig` values by a pool-assigned integer id and decoded
  trace feeds by content hash, so repeat dispatches ship small tuples —
  the full config travels only to a worker that has not seen it yet.
* **Adaptive chunking.** Jobs are packed into chunks sized from the
  measured per-job cost (EWMA, targeting ``REPRO_POOL_CHUNK_MS`` of work
  per chunk) so one IPC round-trip amortizes over many short
  simulations while long jobs still spread across workers.
* **Same answers.** Results return in submission order, outputs are
  byte-identical to inline execution (each job runs the exact
  :func:`~repro.analysis.parallel.execute_job` path), and a job that
  raises re-raises the same exception in the caller.
* **Lifecycle.** Lazy start, idle reap after ``REPRO_POOL_IDLE_S`` of
  disuse, crash-replace-and-retry when a worker dies mid-chunk (bounded
  by ``REPRO_POOL_RETRIES``), and an ``atexit`` shutdown hook.

Environment knobs (all optional):

``REPRO_POOL``
    ``0`` disables the warm pool entirely; ``run_jobs`` falls back to
    the legacy per-call ``ProcessPoolExecutor``.  Default ``1``.
``REPRO_POOL_WORKERS``
    Pool size; defaults to :func:`~repro.analysis.parallel.default_jobs`
    (``REPRO_JOBS`` else CPU count).
``REPRO_POOL_CHUNK_MS``
    Target per-chunk work in milliseconds for adaptive chunking
    (default ``40``).
``REPRO_POOL_IDLE_S``
    Reap warm workers after this many seconds without a dispatch
    (default ``120``; ``0`` disables reaping).
``REPRO_POOL_RETRIES``
    How many times a chunk is requeued after a worker crash before its
    jobs fail with :class:`WorkerCrashError` (default ``2``).
``REPRO_POOL_BATCH``
    Consumed by the serving layer: the maximum number of queued jobs a
    server worker drains into one batched execution (default ``8``).

The pool publishes its own :class:`~repro.obs.registry.MetricsRegistry`
(``pool.*`` names) which the serve ``/metrics`` endpoint and the
``repro prefetch`` summary merge in.
"""

from __future__ import annotations

import atexit
import math
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Sequence

from repro.analysis.parallel import Job, default_jobs, env_int
from repro.obs.registry import MetricsRegistry
from repro.pipeline.config import MachineConfig

#: Wire-protocol opcodes (parent -> worker and back).
_OP_CHUNK = "chunk"
_OP_DONE = "done"
_OP_EXIT = "exit"


class WorkerCrashError(RuntimeError):
    """A job's worker died repeatedly; the job could not be completed."""


@dataclass(frozen=True)
class TraceJob:
    """One trace replay: a tracefile reference + machine + run lengths.

    The pool-side analogue of :class:`~repro.analysis.parallel.Job` for
    trace workloads.  Workers memoize the decoded feed by
    ``content_hash``, so a sweep over many configs of one trace decodes
    the tracefile once per worker, not once per job.
    """

    trace: str
    content_hash: str
    config: MachineConfig
    insts: int | None
    warmup: int
    shadow_sizes: tuple[int, ...] | None = None


@dataclass
class Outcome:
    """Per-job result envelope: exactly one of ``value`` / ``error``."""

    ok: bool
    value: object = None
    error: BaseException | None = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _encode_error(error: BaseException) -> bytes:
    """Pickle an exception for transport, degrading to RuntimeError."""
    try:
        return pickle.dumps(error)
    except Exception:
        return pickle.dumps(
            RuntimeError(f"{type(error).__name__}: {error!r} (unpicklable)")
        )


def _decode_error(payload: bytes) -> BaseException:
    try:
        error = pickle.loads(payload)
    except Exception as failure:  # pragma: no cover - defensive
        return RuntimeError(f"worker error could not be decoded: {failure!r}")
    if isinstance(error, BaseException):
        return error
    return RuntimeError(f"worker returned a non-exception error: {error!r}")


def _execute_task(task: tuple, configs: dict, feeds: dict, stats: dict):
    """Run one wire task inside a worker, using its warm memo tables."""
    kind = task[0]
    if kind == "run":
        _, _index, benchmark, config_id, seed, insts, warmup, shadow = task
        from repro.analysis.parallel import execute_job

        job = Job(benchmark, configs[config_id], seed, insts, warmup, shadow)
        return execute_job(job)
    if kind == "trace":
        _, _index, trace, content_hash, config_id, insts, warmup, shadow = task
        from repro.fastsim import make_processor
        from repro.trace import TraceFormatError, load_corpus_feed

        feed = feeds.get(content_hash)
        if feed is None:
            stats["feed_loads"] += 1
            feed = load_corpus_feed(trace)
            if feed.content_hash != content_hash:
                raise TraceFormatError(
                    f"trace {trace!r} has content hash "
                    f"{feed.content_hash[:12]}…, but the job was submitted "
                    f"for {content_hash[:12]}… (stale reference?)"
                )
            feeds[content_hash] = feed
        else:
            stats["feed_hits"] += 1
        config = configs[config_id]
        processor = make_processor(
            feed, config, backend=config.backend, shadow_sizes=shadow
        )
        limit = insts if insts is not None else len(feed.ops)
        return processor.run(max_insts=limit, warmup=warmup)
    raise ValueError(f"unknown pool task kind {kind!r}")


def _worker_main(conn) -> None:
    """Long-lived worker loop: receive chunks, run jobs, send outcomes.

    Warm state lives here: ``configs`` maps pool-assigned ids to
    :class:`MachineConfig` values (shipped once per worker), ``feeds``
    memoizes decoded trace feeds by content hash.
    """
    configs: dict[int, MachineConfig] = {}
    feeds: dict[str, object] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message[0] == _OP_EXIT:
            break
        _, chunk_id, config_delta, tasks = message
        configs.update(config_delta)
        stats = {"feed_hits": 0, "feed_loads": 0}
        results = []
        for task in tasks:
            index = task[1]
            try:
                value = _execute_task(task, configs, feeds, stats)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                return
            except BaseException as error:  # noqa: BLE001 - transported
                results.append((index, False, _encode_error(error)))
            else:
                results.append((index, True, value))
        try:
            conn.send((_OP_DONE, chunk_id, results, stats))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover - already torn down
        pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Parent-side handle: process + pipe + which configs it has seen."""

    process: object
    conn: object
    known_configs: set[int] = field(default_factory=set)
    jobs_done: int = 0


@dataclass
class _Chunk:
    chunk_id: int
    tasks: list[tuple]
    retries: int = 0


class WorkerPool:
    """A persistent pool of warm simulation workers.

    One pool serves the whole process (see :func:`get_pool`); dispatches
    are serialized under a lock, so concurrent callers queue rather than
    oversubscribe the workers.  All public entry points are thread-safe.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        chunk_ms: float | None = None,
        idle_s: float | None = None,
        retries: int | None = None,
    ):
        self.size = max(
            1, workers or env_int("REPRO_POOL_WORKERS", 0) or default_jobs()
        )
        self.chunk_ms = (
            chunk_ms if chunk_ms is not None else env_int("REPRO_POOL_CHUNK_MS", 40)
        )
        self.idle_s = (
            idle_s if idle_s is not None else env_int("REPRO_POOL_IDLE_S", 120)
        )
        self.retries = (
            retries if retries is not None else env_int("REPRO_POOL_RETRIES", 2)
        )
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        # fork (where available) hands workers the parent's already-warm
        # imports for free and matches the legacy executor's semantics;
        # spawn platforms pay one cold import per worker lifetime.
        method = "fork" if "fork" in get_all_start_methods() else "spawn"
        self._context = get_context(method)
        self._workers: list[_Worker] = []
        self._config_ids: dict[MachineConfig, int] = {}
        self._ewma_job_s: float | None = None
        self._next_chunk_id = 0
        self._last_used = time.monotonic()
        self._closed = False
        self._reaper: threading.Thread | None = None
        self._reaper_wake = threading.Event()

    # -- lifecycle -----------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether any worker processes are currently alive."""
        return bool(self._workers)

    def ensure_size(self, workers: int) -> None:
        """Grow the target pool size (never shrinks a live pool)."""
        with self._lock:
            self.size = max(self.size, workers)

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (test hook for crash injection)."""
        return [w.process.pid for w in self._workers]

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        self.registry.counter("pool.worker_starts").inc()
        return _Worker(process=process, conn=parent_conn)

    def _ensure_started(self) -> None:
        while len(self._workers) < self.size:
            self._workers.append(self._spawn_worker())
        if self._reaper is None and self.idle_s > 0:
            self._reaper = threading.Thread(
                target=self._reap_loop, name="repro-pool-reaper", daemon=True
            )
            self._reaper.start()

    def _retire(self, worker: _Worker, *, graceful: bool) -> None:
        if graceful:
            try:
                worker.conn.send((_OP_EXIT,))
            except (BrokenPipeError, OSError):
                pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.terminate()
            worker.process.join(timeout=1.0)

    def _stop_workers(self) -> None:
        """Tear down the worker processes (the pool object stays usable)."""
        for worker in self._workers:
            self._retire(worker, graceful=True)
        self._workers = []

    def stop(self) -> None:
        """Stop all workers now; the next dispatch restarts them."""
        with self._lock:
            self._stop_workers()

    def close(self) -> None:
        """Permanent shutdown: stop workers and the idle reaper."""
        with self._lock:
            self._closed = True
            self._stop_workers()
        self._reaper_wake.set()

    def _reap_loop(self) -> None:
        interval = max(self.idle_s / 2.0, 0.05)
        while not self._closed:
            self._reaper_wake.wait(interval)
            if self._closed:
                return
            if time.monotonic() - self._last_used < self.idle_s:
                continue
            # Never stall a dispatch: skip the reap if a submit holds
            # the lock (it refreshes _last_used on the way out anyway).
            if self._lock.acquire(blocking=False):
                try:
                    if (
                        self._workers
                        and time.monotonic() - self._last_used >= self.idle_s
                    ):
                        self._stop_workers()
                        self.registry.counter("pool.idle_reaps").inc()
                finally:
                    self._lock.release()

    # -- job encoding --------------------------------------------------
    def _config_id(self, config: MachineConfig) -> int:
        config_id = self._config_ids.get(config)
        if config_id is None:
            config_id = len(self._config_ids)
            self._config_ids[config] = config_id
        return config_id

    def _descriptor(self, index: int, job) -> tuple:
        if isinstance(job, Job):
            return (
                "run",
                index,
                job.benchmark,
                self._config_id(job.config),
                job.seed,
                job.insts,
                job.warmup,
                job.shadow_sizes,
            )
        if isinstance(job, TraceJob):
            return (
                "trace",
                index,
                job.trace,
                job.content_hash,
                self._config_id(job.config),
                job.insts,
                job.warmup,
                job.shadow_sizes,
            )
        raise TypeError(f"pool cannot dispatch {type(job).__name__} jobs")

    def _chunk_tasks(self, tasks: list[tuple]) -> deque:
        """Pack tasks into chunks sized from the measured per-job cost."""
        count = len(tasks)
        spread = max(1, math.ceil(count / max(len(self._workers), 1)))
        if self._ewma_job_s is None:
            # No cost signal yet: one chunk per worker keeps everyone busy.
            size = spread
        else:
            target_s = max(self.chunk_ms, 1) / 1000.0
            size = max(1, round(target_s / max(self._ewma_job_s, 1e-6)))
            size = min(size, spread)
        chunks: deque[_Chunk] = deque()
        for start in range(0, count, size):
            chunks.append(_Chunk(self._next_chunk_id, tasks[start : start + size]))
            self._next_chunk_id += 1
        histogram = self.registry.histogram("pool.chunk_size")
        for chunk in chunks:
            histogram.observe(len(chunk.tasks))
        return chunks

    # -- dispatch ------------------------------------------------------
    def _send_chunk(self, worker: _Worker, chunk: _Chunk) -> bool:
        """Ship a chunk (plus any configs the worker lacks); False on crash."""
        delta: dict[int, MachineConfig] = {}
        needed = {task[4] if task[0] == "trace" else task[3] for task in chunk.tasks}
        for config, config_id in self._config_ids.items():
            if config_id in needed and config_id not in worker.known_configs:
                delta[config_id] = config
        try:
            worker.conn.send((_OP_CHUNK, chunk.chunk_id, delta, chunk.tasks))
        except (BrokenPipeError, OSError):
            return False
        worker.known_configs.update(delta)
        self.registry.counter("pool.config_ships").inc(len(delta))
        self.registry.counter("pool.config_ship_skips").inc(len(needed) - len(delta))
        return True

    def _handle_crash(
        self,
        worker: _Worker,
        chunk: _Chunk,
        chunks: deque,
        outcomes: list,
    ) -> _Worker:
        """Replace a dead worker; requeue its chunk or fail its jobs."""
        self.registry.counter("pool.crash_replacements").inc()
        self._retire(worker, graceful=False)
        replacement = self._spawn_worker()
        self._workers[self._workers.index(worker)] = replacement
        if chunk.retries < self.retries:
            chunk.retries += 1
            chunks.appendleft(chunk)
        else:
            for task in chunk.tasks:
                outcomes[task[1]] = Outcome(
                    ok=False,
                    error=WorkerCrashError(
                        f"pool worker died {chunk.retries + 1} times running "
                        f"this chunk (job index {task[1]})"
                    ),
                )
        return replacement

    def submit(self, jobs: Sequence) -> list[Outcome]:
        """Run *jobs* on the warm pool; per-job outcomes in submission order.

        Jobs may be :class:`~repro.analysis.parallel.Job` or
        :class:`TraceJob` values, freely mixed.  A worker crash replaces
        the worker and requeues its chunk up to ``retries`` times; jobs
        still unfinished after that carry a :class:`WorkerCrashError`.
        """
        if not jobs:
            return []
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._last_used = time.monotonic()
            started_at = time.perf_counter()
            reused = sum(1 for w in self._workers if w.jobs_done)
            self._ensure_started()
            outcomes: list[Outcome | None] = [None] * len(jobs)
            tasks = [self._descriptor(i, job) for i, job in enumerate(jobs)]
            chunks = self._chunk_tasks(tasks)
            self.registry.counter("pool.dispatches").inc()
            self.registry.counter("pool.jobs_dispatched").inc(len(jobs))
            self.registry.counter("pool.chunks_sent").inc(len(chunks))
            self.registry.histogram("pool.batch_size").observe(len(jobs))
            self.registry.counter("pool.worker_reuse_hits").inc(reused)
            idle = list(self._workers)
            busy: dict[object, tuple[_Worker, _Chunk, float]] = {}
            while chunks or busy:
                while chunks and idle:
                    worker = idle.pop()
                    chunk = chunks.popleft()
                    if self._send_chunk(worker, chunk):
                        busy[worker.conn] = (worker, chunk, time.perf_counter())
                    else:
                        idle.append(
                            self._handle_crash(worker, chunk, chunks, outcomes)
                        )
                if not busy:
                    continue
                ready = connection.wait(list(busy), timeout=1.0)
                if not ready:
                    # No data and no EOF: look for silently-dead workers.
                    for conn, (worker, chunk, _) in list(busy.items()):
                        if not worker.process.is_alive():  # pragma: no cover
                            busy.pop(conn)
                            idle.append(
                                self._handle_crash(worker, chunk, chunks, outcomes)
                            )
                    continue
                for conn in ready:
                    worker, chunk, sent_at = busy.pop(conn)
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        idle.append(
                            self._handle_crash(worker, chunk, chunks, outcomes)
                        )
                        continue
                    _, _chunk_id, results, stats = message
                    elapsed = time.perf_counter() - sent_at
                    per_job = elapsed / max(len(chunk.tasks), 1)
                    self._ewma_job_s = (
                        per_job
                        if self._ewma_job_s is None
                        else 0.5 * self._ewma_job_s + 0.5 * per_job
                    )
                    self.registry.counter("pool.feed_memo_hits").inc(
                        stats.get("feed_hits", 0)
                    )
                    self.registry.counter("pool.feed_loads").inc(
                        stats.get("feed_loads", 0)
                    )
                    for index, ok, payload in results:
                        if ok:
                            outcomes[index] = Outcome(ok=True, value=payload)
                        else:
                            outcomes[index] = Outcome(
                                ok=False, error=_decode_error(payload)
                            )
                    worker.jobs_done += len(results)
                    idle.append(worker)
            self.registry.timer("pool.dispatch_seconds").add(
                time.perf_counter() - started_at
            )
            self._last_used = time.monotonic()
            return outcomes  # type: ignore[return-value]

    def run(self, jobs: Sequence) -> list:
        """Like :meth:`submit`, but unwrap values and re-raise the first
        failure (in submission order) — the :func:`run_jobs` contract."""
        outcomes = self.submit(jobs)
        for outcome in outcomes:
            if not outcome.ok:
                raise outcome.error
        return [outcome.value for outcome in outcomes]


# ----------------------------------------------------------------------
# Process-wide singleton
# ----------------------------------------------------------------------
_POOL: WorkerPool | None = None
_POOL_LOCK = threading.Lock()


def pool_enabled() -> bool:
    """Whether the warm pool is enabled (``REPRO_POOL`` != 0)."""
    return env_int("REPRO_POOL", 1) != 0


def get_pool(workers: int | None = None) -> WorkerPool:
    """The process-wide pool, created lazily; grows to *workers* if given."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None or _POOL._closed:
            _POOL = WorkerPool(workers)
        elif workers is not None:
            _POOL.ensure_size(workers)
        return _POOL


def maybe_pool() -> WorkerPool | None:
    """The pool if one has been created (and not closed); never creates."""
    pool = _POOL
    if pool is None or pool._closed:
        return None
    return pool


def shutdown_pool() -> None:
    """Close and forget the process-wide pool (atexit hook; idempotent)."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.close()


atexit.register(shutdown_pool)
