"""Issue queue entries and per-operand wakeup state.

An :class:`IQEntry` models one scheduler entry: up to two register source
operands (each with ready/now bits and a fast/slow side assignment), plus an
optional memory dependence (store-to-load forwarding) that real hardware
tracks in the LSQ rather than on the wakeup bus.
"""

from __future__ import annotations

import enum

from repro.core.last_arrival import OperandSide
from repro.isa.opcodes import OpClass
from repro.workloads.trace import DynOp

#: Instruction classes with elevated select priority (the paper's
#: oldest-first policy with loads and branches outranking the rest; the
#: select logic in :mod:`repro.core.select` re-exports this).
PRIORITY_CLASSES = frozenset((OpClass.LOAD, OpClass.BRANCH, OpClass.JUMP))

#: OpClass.idx -> select-key rank (0 = priority class, 1 = the rest).
_RANK_BY_IDX: tuple[int, ...] = tuple(
    0 if op_class in PRIORITY_CLASSES else 1 for op_class in OpClass
)


class EntryState(enum.Enum):
    """Lifecycle of an issue-queue entry."""

    WAITING = "waiting"      # in the scheduler, not yet selected
    ISSUED = "issued"        # selected; replayable until freed
    COMPLETED = "completed"  # executed; result architecturally final
    SQUASHED = "squashed"    # transient: pulled back, about to re-wait


class Operand:
    """One register source operand of an issue queue entry."""

    __slots__ = (
        "tag",
        "side",
        "ready",
        "ready_cycle",
        "ready_at_insert",
        "first_wake_cycle",
        "arrival_cycle",
        "matrix",
    )

    def __init__(self, tag: int | None, side: OperandSide):
        #: producing instruction's tag, or None if the value was already
        #: valid at rename time (architectural value)
        self.tag = tag
        self.side = side
        self.ready = tag is None
        #: cycle the ready bit was (last) set; insert cycle for insert-ready
        self.ready_cycle = -1
        self.ready_at_insert = tag is None
        #: first cycle a wakeup was delivered (stats; never reset by replay)
        self.first_wake_cycle: int | None = None
        #: first cycle the producing tag broadcast (stats; side-independent)
        self.arrival_cycle: int | None = None
        #: Figure 5 dependence matrix delivered with the wakeup (None when
        #: the machinery is off or the operand has no bus comparator)
        self.matrix = None

    def wake(self, cycle: int) -> None:
        self.ready = True
        self.ready_cycle = cycle
        if self.first_wake_cycle is None:
            self.first_wake_cycle = cycle

    def unwake(self) -> None:
        """Clear readiness after the producing broadcast was invalidated."""
        self.ready = False
        self.ready_cycle = -1
        self.matrix = None

    def woke_now(self, cycle: int) -> bool:
        """The Figure 11 ``now`` bit: tag matched in this very cycle."""
        return self.ready and self.ready_cycle == cycle and not self.ready_at_insert


class IQEntry:
    """One instruction in the scheduler window."""

    __slots__ = (
        "op",
        "tag",
        "operands",
        "mem_dep_tag",
        "mem_dep_ready",
        "state",
        "insert_cycle",
        "issue_cycle",
        "complete_cycle",
        "predicted_last",
        "fast_side",
        "seq_reg_access",
        "effective_latency",
        "replays",
        "forwarded",
        "mem_fill_cycle",
        "stat_ready_at_insert",
        "stat_wakeup_recorded",
        "stat_issued_once",
        "epoch",
        "eligible_cycle",
        "in_ready",
        "rf_category",
        "slot",
        "select_key",
        "is_two_source",
    )

    def __init__(
        self,
        op: DynOp,
        tag: int,
        operands: list[Operand],
        insert_cycle: int,
        predicted_last: OperandSide = OperandSide.RIGHT,
    ):
        self.op = op
        self.tag = tag
        self.operands = operands
        #: the operand list is fixed for the entry's lifetime, so this is a
        #: plain attribute rather than a property (hot in wakeup logic)
        self.is_two_source = len(operands) == 2
        self.mem_dep_tag: int | None = None
        self.mem_dep_ready = True
        self.state = EntryState.WAITING
        self.insert_cycle = insert_cycle
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.predicted_last = predicted_last
        #: which operand side sits on the fast wakeup bus (sequential
        #: wakeup) or keeps its comparator (tag elimination)
        self.fast_side = predicted_last
        self.seq_reg_access = False
        self.effective_latency = 0
        self.replays = 0
        #: load got its value from an older in-flight store (LSQ forward)
        self.forwarded = False
        #: absolute cycle the load's data arrives (loads only; set at the
        #: first issue — the line fill stays in flight across replays)
        self.mem_fill_cycle: int | None = None
        # -- statistics captured once, at first events ------------------
        ready_at_insert = 0
        for operand in operands:
            if operand.ready_at_insert:
                ready_at_insert += 1
        self.stat_ready_at_insert = ready_at_insert
        self.stat_wakeup_recorded = False
        self.stat_issued_once = False
        #: incremented on every (re)issue; guards stale scheduled events
        self.epoch = 0
        #: earliest cycle the entry may be selected (post-replay throttle)
        self.eligible_cycle = insert_cycle + 1
        #: whether the entry currently sits in the scheduler's ready set
        self.in_ready = False
        #: Figure 10 category stamped at (final) issue
        self.rf_category: str | None = None
        #: issue slot taken at the most recent issue (Figure 5 column)
        self.slot = -1
        #: precomputed selection-order key (priority class, then age);
        #: immutable over the entry's lifetime, so the per-cycle candidate
        #: sort avoids recomputing it
        self.select_key = (_RANK_BY_IDX[op.op_class.idx], tag)

    # ------------------------------------------------------------------
    @property
    def is_two_pending(self) -> bool:
        """Two operands, neither ready at insert (Figure 4 bottom bars)."""
        return self.is_two_source and self.stat_ready_at_insert == 0

    def operand_on(self, side: OperandSide) -> Operand | None:
        for operand in self.operands:
            if operand.side is side:
                return operand
        return None

    def all_register_operands_ready(self) -> bool:
        # Explicit loop: a generator expression costs a frame per call, and
        # this sits on the wakeup/select critical path.
        for operand in self.operands:
            if not operand.ready:
                return False
        return True

    def pending_operands(self) -> list[Operand]:
        return [operand for operand in self.operands if not operand.ready]

    def reset_for_replay(self, scoreboard_valid) -> None:
        """Return the entry to WAITING after a scheduling replay.

        ``scoreboard_valid(tag, ready_cycle)`` reports whether the broadcast
        that satisfied an operand is still valid; operands satisfied by
        squashed producers lose their ready bits.
        """
        self.state = EntryState.WAITING
        self.issue_cycle = -1
        self.seq_reg_access = False
        self.replays += 1
        for operand in self.operands:
            if operand.ready and operand.tag is not None:
                if not scoreboard_valid(operand.tag):
                    operand.unwake()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"IQEntry(tag={self.tag}, {self.op.opcode}, state={self.state.value}, "
            f"ops={[(o.tag, o.ready) for o in self.operands]})"
        )
