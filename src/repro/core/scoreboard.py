"""Destination-tag scoreboard with consumer tracking and invalidation.

Every in-flight instruction that produces a value owns a *tag*.  The
scoreboard records, per tag:

* when (if ever) the tag's wakeup broadcast was delivered;
* whether the broadcast is still *valid* — a load-latency misprediction or
  a replay invalidates the speculative broadcast until the real data
  arrives;
* which issue-queue operands consume the tag, so invalidation can cascade
  (the Figure 5 dependence-propagation mechanism, in data-structure form).
"""

from __future__ import annotations

from repro.core.iq import IQEntry


class TagRecord:
    """Lifecycle of one destination tag."""

    __slots__ = (
        "producer",
        "broadcast_cycle",
        "data_cycle",
        "valid",
        "consumers",
        "matrix_payload",
    )

    def __init__(self, producer: IQEntry | None):
        self.producer = producer
        #: cycle the wakeup broadcast was delivered (None = not yet)
        self.broadcast_cycle: int | None = None
        #: cycle the value is actually available (None = not yet known)
        self.data_cycle: int | None = None
        #: False after the speculative broadcast was invalidated
        self.valid = False
        self.consumers: list[tuple[IQEntry, int]] = []
        #: Figure 5 matrix carried on the bus with the last broadcast
        self.matrix_payload = None


class Scoreboard:
    """Tag table shared by rename, wakeup and replay."""

    __slots__ = ("_records",)

    def __init__(self):
        self._records: dict[int, TagRecord] = {}

    # ------------------------------------------------------------------
    def allocate(self, tag: int, producer: IQEntry | None) -> TagRecord:
        record = TagRecord(producer)
        self._records[tag] = record
        return record

    def get(self, tag: int) -> TagRecord | None:
        return self._records.get(tag)

    def free(self, tag: int) -> None:
        self._records.pop(tag, None)

    def add_consumer(self, tag: int, entry: IQEntry, op_index: int) -> None:
        record = self._records.get(tag)
        if record is not None:
            record.consumers.append((entry, op_index))

    # ------------------------------------------------------------------
    def mark_broadcast(self, tag: int, cycle: int) -> None:
        record = self._records.get(tag)
        if record is not None:
            record.broadcast_cycle = cycle
            record.valid = True

    def mark_data(self, tag: int, cycle: int) -> None:
        record = self._records.get(tag)
        if record is not None:
            record.data_cycle = cycle

    def invalidate(self, tag: int) -> list[tuple[IQEntry, int]]:
        """Invalidate a tag's broadcast; return its consumers for cascade."""
        record = self._records.get(tag)
        if record is None:
            return []
        record.valid = False
        record.broadcast_cycle = None
        record.data_cycle = None
        return list(record.consumers)

    # ------------------------------------------------------------------
    def is_valid(self, tag: int) -> bool:
        """Is the tag's most recent broadcast still standing?"""
        record = self._records.get(tag)
        # Tags absent from the table belong to retired producers whose
        # values are architectural: always valid.
        return record is None or record.valid

    def data_ready_by(self, tag: int, cycle: int) -> bool:
        """Will the tag's value actually be available at *cycle*?

        Used by the tag-elimination scoreboard check: an operand with no
        comparator must be verified against real data availability.
        """
        record = self._records.get(tag)
        if record is None:
            return True
        return record.valid and record.broadcast_cycle is not None and (
            record.broadcast_cycle <= cycle
        )
