"""Figure 5: dependence-matrix propagation for selective recovery.

The paper explains why tag elimination cannot compose with selective
recovery by showing how selective recovery actually tracks dependences: the
wakeup bus carries, along with each tag, a *matrix* marking the pipeline
position (stage row × issue slot column) of every in-flight ancestor.  A
child merges the matrices of both parents and adds its own position; bits
shift down one row per cycle and phase out when the ancestor reaches its
functional unit.  A mis-scheduling kill names one (row, column) bit; every
source operand whose matrix contains the bit is invalidated.

Here the matrix is represented sparsely as a set of ancestor identities
``(issue_cycle, slot)``: a bit's row is implied by its age (``now -
issue_cycle``), and it phases out once the age exceeds the pipeline depth —
bit-for-bit the behaviour of the shifting matrix, without simulating the
shift.  The processor uses this as its selective-recovery mechanism when
``MachineConfig.use_dependence_matrix`` is set; tests verify it squashes
exactly the same instructions as the scoreboard-cascade implementation.

The paper's incompatibility argument is directly visible in code: an
operand whose comparator was *eliminated* (tag elimination) never receives
a broadcast, so it never merges its parent's matrix — `merged_from_bus` is
the only way dependence information arrives.
"""

from __future__ import annotations

from typing import Iterable


class DependenceMatrix:
    """Sparse ancestor matrix attached to one source operand or entry.

    Attributes:
        depth: pipeline stages between issue and execute (rows); bits older
            than this have phased out.
    """

    __slots__ = ("depth", "_bits")

    def __init__(self, depth: int, bits: Iterable[tuple[int, int]] = ()):
        self.depth = depth
        self._bits: set[tuple[int, int]] = set(bits)

    # ------------------------------------------------------------------
    def add_ancestor(self, issue_cycle: int, slot: int) -> None:
        """Mark an issued ancestor at (cycle, slot)."""
        self._bits.add((issue_cycle, slot))

    def merge(self, other: "DependenceMatrix") -> None:
        """Union another matrix into this one (two-parent merge)."""
        self._bits |= other._bits

    def prune(self, now: int) -> None:
        """Phase out bits whose ancestors have reached their FU."""
        self._bits = {
            bit for bit in self._bits if now - bit[0] <= self.depth
        }

    # ------------------------------------------------------------------
    def matches(self, kill_cycle: int, kill_slot: int) -> bool:
        """Does the kill-bus bit (issue cycle, slot) hit this matrix?"""
        return (kill_cycle, kill_slot) in self._bits

    def snapshot(self) -> "DependenceMatrix":
        """Copy taken when the owner broadcasts (bus payload)."""
        return DependenceMatrix(self.depth, self._bits)

    def clear(self) -> None:
        self._bits.clear()

    def __len__(self) -> int:
        return len(self._bits)

    def __contains__(self, bit: tuple[int, int]) -> bool:
        return bit in self._bits

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"DependenceMatrix(depth={self.depth}, bits={sorted(self._bits)})"
