"""Select logic: oldest-first with load/branch priority, per-slot bubbles.

The paper's scheduler (Section 2.1) selects with an oldest-instruction-first
policy, loads and branches outranking other instruction types, older
instructions first within each priority group — mirroring the base
SimpleScalar model.  Each issue slot has its own select logic, so a
sequential register access disables exactly one slot for one cycle
(Section 4.3, Figure 11b).
"""

from __future__ import annotations

from repro.core.iq import PRIORITY_CLASSES, IQEntry

#: Instruction classes with elevated select priority (defined next to the
#: entry so IQEntry can precompute its sort key without an import cycle).
_PRIORITY_CLASSES = tuple(PRIORITY_CLASSES)


def select_priority(entry: IQEntry) -> tuple[int, int]:
    """Sort key implementing the paper's selection policy.

    The key is precomputed at insert (:attr:`IQEntry.select_key`); the
    per-cycle sort in the processor uses the attribute directly.
    """
    return entry.select_key


class Selector:
    """Issue-slot bookkeeping for one machine width.

    Tracks which slots are disabled in the current cycle (by sequential
    register accesses issued the previous cycle) and hands out free slots
    in order.
    """

    __slots__ = ("width", "_disabled_now", "_disable_next",
                 "slots_taken", "bubbles_scheduled")

    def __init__(self, width: int):
        self.width = width
        self._disabled_now = 0
        self._disable_next = 0
        #: lifetime tallies (published post-run, see ``publish_metrics``)
        self.slots_taken = 0
        self.bubbles_scheduled = 0

    # ------------------------------------------------------------------
    def begin_cycle(self) -> None:
        """Rotate slot-disable state at the start of each cycle."""
        self._disabled_now = self._disable_next
        self._disable_next = 0

    @property
    def available_slots(self) -> int:
        return self.width - self._disabled_now

    def take_slot(self, bubble_next: bool = False) -> int:
        """Claim one issue slot; optionally disable it for the next cycle.

        Returns the claimed slot index, or -1 when every slot this cycle is
        already claimed or disabled.
        """
        if self._disabled_now >= self.width:
            return -1
        slot = self._disabled_now
        self._disabled_now += 1
        self.slots_taken += 1
        if bubble_next:
            self._disable_next += 1
            self.bubbles_scheduled += 1
        return slot

    def order(self, ready_entries: list[IQEntry]) -> list[IQEntry]:
        """Return candidates in selection order."""
        return sorted(ready_entries, key=select_priority)

    def publish_metrics(self, registry, prefix: str = "select") -> None:
        """Copy the select-logic tallies into a MetricsRegistry (post-run)."""
        registry.counter(f"{prefix}.slots_taken").set(self.slots_taken)
        registry.counter(f"{prefix}.bubbles_scheduled").set(self.bubbles_scheduled)
