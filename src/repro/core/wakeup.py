"""Wakeup-logic strategies: conventional, sequential wakeup, tag elimination.

The processor delegates three decisions to the active strategy:

* **side placement** — at insert, which operand sits on the fast wakeup bus
  (sequential wakeup) or keeps its comparator (tag elimination), driven by
  the last-arriving operand predictor;
* **delivery delay** — how many cycles after a tag broadcast each operand's
  comparator observes it (0 on the fast bus, 1 on the slow bus);
* **readiness and issue-time verification** — when an entry may be
  selected, and (for tag elimination) whether an issue was actually legal.

Sequential wakeup never issues an instruction before its operands are
ready, so it needs no verification or recovery; tag elimination does
(Section 3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.iq import IQEntry, Operand
from repro.core.last_arrival import LastArrivalPredictor, OperandSide, StaticLastArrival
from repro.core.scoreboard import Scoreboard
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.pipeline.config import MachineConfig


class WakeupLogic:
    """Base class: conventional wakeup (both comparators on one bus)."""

    name = "base"
    #: does the strategy reduce wakeup bus load capacitance?
    halves_bus_load = False

    def __init__(self, predictor: LastArrivalPredictor | StaticLastArrival | None = None):
        self.predictor = predictor

    # ------------------------------------------------------------------
    def assign_sides(self, entry: IQEntry) -> None:
        """Fix the fast-bus operand at insert time.

        The base scheduler has no fast/slow distinction; keeping the
        predicted side recorded anyway is free and feeds the statistics.
        """
        if self.predictor is not None and entry.is_two_source:
            entry.predicted_last = self.predictor.predict(entry.op.pc)
            entry.fast_side = entry.predicted_last

    def delivery_delay(self, entry: IQEntry, operand: Operand) -> int:
        """Cycles after broadcast at which *operand* sees the tag."""
        return 0

    def entry_ready(self, entry: IQEntry) -> bool:
        # Flattened all_register_operands_ready() + mem_dep_ready: this is
        # the single most-called predicate in the simulator.
        if not entry.mem_dep_ready:
            return False
        for operand in entry.operands:
            if not operand.ready:
                return False
        return True

    def verify_at_issue(self, entry: IQEntry, scoreboard: Scoreboard, cycle: int) -> bool:
        """Return True if the issue is legal (always, for non-speculative
        wakeup schemes)."""
        return True

    # ------------------------------------------------------------------
    def train(self, entry: IQEntry, last_side: OperandSide | None) -> None:
        """Train the predictor with the observed last-arriving side."""
        if self.predictor is None or last_side is None:
            return
        self.predictor.update(entry.op.pc, last_side)


class SequentialWakeup(WakeupLogic):
    """The paper's sequential wakeup (Section 3.3).

    Only the fast-side comparator is wired to the fast wakeup bus; tags are
    latched and re-broadcast one cycle later on the slow bus for the other
    operand.  A correct last-arriving prediction hides the slow bus behind
    the wakeup slack; mispredictions and simultaneous wakeups cost exactly
    one cycle of issue delay.  Nothing is ever issued before its operands
    are ready, so no detection or recovery machinery exists.
    """

    name = "seq_wakeup"
    halves_bus_load = True

    def __init__(self, predictor):
        if predictor is None:
            raise ConfigurationError("sequential wakeup needs a placement policy")
        super().__init__(predictor)

    def assign_sides(self, entry: IQEntry) -> None:
        if entry.is_two_source:
            entry.predicted_last = self.predictor.predict(entry.op.pc)
            entry.fast_side = entry.predicted_last

    def delivery_delay(self, entry: IQEntry, operand: Operand) -> int:
        if not entry.is_two_source:
            return 0  # single-operand entries sit on the fast bus
        return 0 if operand.side is entry.fast_side else 1


class TagElimination(WakeupLogic):
    """Tag elimination (Ernst & Austin, ISCA 2002) — the compared baseline.

    The comparator of the predicted-last operand remains; the other
    operand's comparator is removed.  The entry becomes issue-eligible when
    the remaining comparator fires, *speculating* that the eliminated
    operand is already ready.  A scoreboard check after issue detects
    mispredictions, which cost a non-selective replay.

    Modelling note: the eliminated operand's ready bit is still tracked
    internally (standing in for the scoreboard's knowledge); it is ignored
    by the readiness test until the entry has been replayed once, after
    which the scoreboard services readiness, as in the original scheme.
    """

    name = "tag_elim"
    halves_bus_load = True

    def __init__(self, predictor):
        if predictor is None:
            raise ConfigurationError("tag elimination needs a placement policy")
        super().__init__(predictor)

    def assign_sides(self, entry: IQEntry) -> None:
        if entry.is_two_source:
            entry.predicted_last = self.predictor.predict(entry.op.pc)
            entry.fast_side = entry.predicted_last

    def delivery_delay(self, entry: IQEntry, operand: Operand) -> int:
        # Scoreboard state is modelled by tracking the bit either way; the
        # readiness test below decides whether the bit participates.
        return 0

    def entry_ready(self, entry: IQEntry) -> bool:
        if not entry.mem_dep_ready:
            return False
        if not entry.is_two_source or entry.replays > 0:
            # After a misschedule the scoreboard provides full readiness.
            return entry.all_register_operands_ready()
        # Issue-eligible as soon as the connected comparator fires; the
        # eliminated operand is *speculated* ready (verified after issue).
        connected = entry.operand_on(entry.fast_side)
        return connected.ready

    def verify_at_issue(self, entry: IQEntry, scoreboard: Scoreboard, cycle: int) -> bool:
        if not entry.is_two_source:
            return True
        eliminated = entry.operand_on(entry.fast_side.other)
        if eliminated.ready_at_insert:
            return True
        # The scoreboard checks whether the eliminated operand's value is
        # actually available now.
        return eliminated.ready and scoreboard.is_valid(eliminated.tag)


def make_wakeup_logic(config: "MachineConfig") -> WakeupLogic:
    """Build the wakeup strategy (and predictor) a config asks for."""
    # Imported here to break the core <-> pipeline import cycle.
    from repro.pipeline.config import SchedulerModel

    if config.predictor_entries is None:
        predictor: LastArrivalPredictor | StaticLastArrival = StaticLastArrival()
    else:
        predictor = LastArrivalPredictor(config.predictor_entries)
    if config.scheduler is SchedulerModel.BASE:
        return BaseWakeup(predictor)
    if config.scheduler is SchedulerModel.SEQ_WAKEUP:
        return SequentialWakeup(predictor)
    if config.scheduler is SchedulerModel.TAG_ELIM:
        return TagElimination(predictor)
    raise ConfigurationError(f"unknown scheduler model {config.scheduler}")


#: Alias making the conventional strategy's role explicit in imports.
BaseWakeup = WakeupLogic
