"""The paper's contribution: half-price scheduling and register access.

Modules:

* :mod:`repro.core.last_arrival` — last-arriving operand predictors
  (Section 3.2, Figure 7);
* :mod:`repro.core.iq` — issue queue entries with per-operand wakeup state,
  including the fast/slow side split and the ``now`` bits of Figure 11;
* :mod:`repro.core.scoreboard` — destination tag tracking, consumer lists
  and the invalidation cascade used by scheduling replay;
* :mod:`repro.core.wakeup` — wakeup-logic strategies: conventional,
  sequential wakeup (Section 3.3) and tag elimination (Ernst & Austin);
* :mod:`repro.core.select` — oldest-first select with load/branch priority
  and per-slot select logic (Section 4.3's slot bubbles).
"""

from repro.core.last_arrival import (
    LastArrivalPredictor,
    OperandSide,
    ShadowPredictorBank,
    StaticLastArrival,
)
from repro.core.iq import EntryState, IQEntry, Operand
from repro.core.scoreboard import Scoreboard, TagRecord
from repro.core.wakeup import (
    BaseWakeup,
    SequentialWakeup,
    TagElimination,
    WakeupLogic,
    make_wakeup_logic,
)
from repro.core.select import Selector

__all__ = [
    "LastArrivalPredictor",
    "OperandSide",
    "ShadowPredictorBank",
    "StaticLastArrival",
    "EntryState",
    "IQEntry",
    "Operand",
    "Scoreboard",
    "TagRecord",
    "BaseWakeup",
    "SequentialWakeup",
    "TagElimination",
    "WakeupLogic",
    "make_wakeup_logic",
    "Selector",
]
