"""Per-cycle event calendar backed by a power-of-two ring of buckets.

The processor schedules every future event (tag broadcasts, slow-bus
wakeups, completions, replay kills) at an absolute cycle and drains exactly
one cycle per simulated cycle.  A dict keyed by cycle works but pays a hash
lookup (plus ``setdefault`` list allocation) per event and per drain; since
the scheduling horizon is bounded by the machine's worst-case latency, a
ring of pre-allocated buckets indexed by ``cycle & mask`` is cheaper.

Events scheduled beyond the ring's horizon (possible only with extreme
custom latencies) spill into an overflow dict that is consulted on drain,
so correctness never depends on the horizon estimate.
"""

from __future__ import annotations

_EMPTY: list = []


class EventRing:
    """Cycle-indexed event buckets for a monotonically advancing clock.

    The caller must drain cycles in strictly increasing order and only
    schedule events for cycles later than the one currently being drained
    (both naturally true of the processor's event calendars: every delay
    is at least one cycle).
    """

    __slots__ = ("_mask", "_size", "_buckets", "_overflow")

    def __init__(self, horizon: int):
        size = 1 << max(3, (max(1, horizon) - 1).bit_length())
        self._mask = size - 1
        self._size = size
        self._buckets: list[list] = [[] for _ in range(size)]
        self._overflow: dict[int, list] = {}

    def schedule(self, now: int, cycle: int, item) -> None:
        """Enqueue *item* for *cycle* (must be > *now*)."""
        if cycle - now < self._size:
            self._buckets[cycle & self._mask].append(item)
        else:
            self._overflow.setdefault(cycle, []).append(item)

    def pop(self, cycle: int) -> list:
        """Remove and return every event scheduled for *cycle*.

        Returns the bucket list itself (a fresh list replaces it), so the
        caller may iterate without copying; an empty shared list is
        returned when nothing is due.
        """
        index = cycle & self._mask
        bucket = self._buckets[index]
        if self._overflow:
            extra = self._overflow.pop(cycle, None)
            if extra is not None:
                bucket.extend(extra)
        if not bucket:
            return _EMPTY
        self._buckets[index] = []
        return bucket

    def __bool__(self) -> bool:  # pragma: no cover - debugging nicety
        return bool(self._overflow) or any(self._buckets)
