"""Last-arriving operand predictors (paper Section 3.2).

The paper finds that a PC-indexed, direct-mapped bimodal predictor with
2-bit saturating counters matches more sophisticated designs.  The predictor
answers one question per 2-pending-source instruction: *which operand (left
or right) will arrive last?*  Sequential wakeup places the predicted-last
operand on the fast bus; tag elimination keeps only its comparator.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError


class OperandSide(enum.IntEnum):
    """Operand position in the encoding: left (first) or right (second)."""

    LEFT = 0
    RIGHT = 1

    @property
    def other(self) -> "OperandSide":
        return OperandSide.RIGHT if self is OperandSide.LEFT else OperandSide.LEFT


class StaticLastArrival:
    """Predictor-less policy: the right operand is assumed last-arriving.

    This is the configuration evaluated in the right bars of Figure 14
    ("sequential wakeup without a last-arriving predictor").
    """

    entries = 0

    def __init__(self):
        self.predictions = 0
        self.correct = 0

    def predict(self, pc: int) -> OperandSide:
        return OperandSide.RIGHT

    def update(self, pc: int, last_side: OperandSide) -> None:
        """Static policy: nothing to train."""

    def record_outcome(self, predicted: OperandSide, actual: OperandSide) -> None:
        """Accuracy bookkeeping, shared with the trainable designs."""
        self.predictions += 1
        if predicted is actual:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


class LastArrivalPredictor:
    """PC-indexed direct-mapped bimodal last-arriving operand predictor.

    Each entry is a 2-bit saturating counter; the upper half of the range
    predicts RIGHT.  Counters are initialized to weakly-RIGHT, matching the
    static fallback policy.
    """

    def __init__(self, entries: int = 1024, bits: int = 2):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError("predictor entries must be a power of two")
        if bits < 1:
            raise ConfigurationError("predictor counters need at least one bit")
        self.entries = entries
        self._mask = entries - 1
        self._max = (1 << bits) - 1
        self._mid = self._max // 2
        self._table = [self._mid + 1] * entries
        self.predictions = 0
        self.correct = 0

    def predict(self, pc: int) -> OperandSide:
        if self._table[pc & self._mask] > self._mid:
            return OperandSide.RIGHT
        return OperandSide.LEFT

    def update(self, pc: int, last_side: OperandSide) -> None:
        """Train toward the actually-last operand side."""
        index = pc & self._mask
        value = self._table[index]
        if last_side is OperandSide.RIGHT:
            if value < self._max:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1

    def record_outcome(self, predicted: OperandSide, actual: OperandSide) -> None:
        """Accuracy bookkeeping (used by Figure 7 and the stats module)."""
        self.predictions += 1
        if predicted is actual:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


class TwoLevelLastArrival:
    """Two-level (local-history) last-arriving operand predictor.

    One of the "more sophisticated designs" of Section 3.2: a per-PC
    shift register of recent last-arriving sides indexes a shared pattern
    table of 2-bit counters.  Captures alternating per-PC patterns that a
    bimodal counter cannot, at the cost of two tables.
    """

    def __init__(self, entries: int = 1024, history_bits: int = 4):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError("predictor entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._histories = [0] * entries
        # Shared pattern table, sized like the per-PC table so the designs
        # compare at equal capacity.
        self._pattern = [2] * entries
        self._pattern_mask = entries - 1
        self.predictions = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        history = self._histories[pc & self._mask]
        return ((pc << 4) ^ history) & self._pattern_mask

    def predict(self, pc: int) -> OperandSide:
        return OperandSide.RIGHT if self._pattern[self._index(pc)] > 1 else OperandSide.LEFT

    def update(self, pc: int, last_side: OperandSide) -> None:
        index = self._index(pc)
        value = self._pattern[index]
        if last_side is OperandSide.RIGHT:
            self._pattern[index] = min(3, value + 1)
        else:
            self._pattern[index] = max(0, value - 1)
        slot = pc & self._mask
        self._histories[slot] = (
            (self._histories[slot] << 1) | int(last_side is OperandSide.RIGHT)
        ) & self._history_mask

    def record_outcome(self, predicted: OperandSide, actual: OperandSide) -> None:
        self.predictions += 1
        if predicted is actual:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


class GShareLastArrival:
    """Global-history last-arriving predictor (gshare-style).

    Another Section 3.2 alternative: recent last-arriving outcomes across
    *all* instructions XOR the PC.  Global correlation rarely helps here —
    which operand of an instruction arrives last is a property of its own
    dataflow — and that is the paper's point.
    """

    def __init__(self, entries: int = 1024, history_bits: int = 8):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError("predictor entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table = [2] * entries
        self.predictions = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> OperandSide:
        return OperandSide.RIGHT if self._table[self._index(pc)] > 1 else OperandSide.LEFT

    def update(self, pc: int, last_side: OperandSide) -> None:
        index = self._index(pc)
        value = self._table[index]
        if last_side is OperandSide.RIGHT:
            self._table[index] = min(3, value + 1)
        else:
            self._table[index] = max(0, value - 1)
        self._history = (
            (self._history << 1) | int(last_side is OperandSide.RIGHT)
        ) & self._history_mask

    def record_outcome(self, predicted: OperandSide, actual: OperandSide) -> None:
        self.predictions += 1
        if predicted is actual:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


def make_design_comparison(entries: int = 1024) -> dict[str, object]:
    """The Section 3.2 design-space study: bimodal vs. sophisticated.

    Returns a dict of equally-sized predictors to train side by side; the
    paper's claim is that the bimodal design matches the rest.
    """
    return {
        "bimodal": LastArrivalPredictor(entries),
        "two-level": TwoLevelLastArrival(entries),
        "gshare": GShareLastArrival(entries),
        "static-right": StaticLastArrival(),
    }


class DesignComparisonBank:
    """Equal-capacity predictor *designs* trained in parallel (§3.2).

    Regenerates the paper's design-space observation: the simple bimodal
    predictor matches the sophisticated alternatives, so table simplicity
    wins.  Trained on every resolved 2-source wakeup order.
    """

    def __init__(self, entries: int = 1024):
        self.predictors = make_design_comparison(entries)
        self.samples = 0

    def observe(self, pc: int, last_side: OperandSide | None) -> None:
        """Record one last-arriving outcome (None = simultaneous: skip)."""
        if last_side is None:
            return
        self.samples += 1
        for predictor in self.predictors.values():
            predictor.record_outcome(predictor.predict(pc), last_side)
            predictor.update(pc, last_side)

    def accuracy_table(self) -> dict[str, float]:
        """Accuracy per design name."""
        return {name: p.accuracy for name, p in self.predictors.items()}


class ShadowPredictorBank:
    """A bank of differently-sized predictors trained in parallel.

    Used to regenerate Figure 7 (accuracy vs. table size, 128..4096) from a
    single simulation: every 2-pending-source wakeup trains all predictors.
    Simultaneous wakeups are tallied separately, since the paper counts them
    as either correct or incorrect depending on the consuming logic.
    """

    def __init__(self, sizes: tuple[int, ...] = (128, 512, 1024, 4096)):
        self.predictors = {size: LastArrivalPredictor(size) for size in sizes}
        self.simultaneous = 0
        self.samples = 0

    def observe(self, pc: int, last_side: OperandSide | None) -> None:
        """Record one 2-pending-source wakeup outcome.

        ``last_side`` is None for simultaneous wakeups (no training, as
        neither side was strictly last).
        """
        self.samples += 1
        if last_side is None:
            self.simultaneous += 1
            return
        for predictor in self.predictors.values():
            predictor.record_outcome(predictor.predict(pc), last_side)
            predictor.update(pc, last_side)

    def accuracy_table(self) -> dict[int, float]:
        """Accuracy per table size, over non-simultaneous wakeups."""
        return {size: p.accuracy for size, p in self.predictors.items()}

    @property
    def frac_simultaneous(self) -> float:
        return self.simultaneous / self.samples if self.samples else 0.0
