"""Capture dynamic instruction streams into binary tracefiles."""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

from repro.isa.assembler import Program
from repro.trace.format import TraceWriter
from repro.workloads.feed import EmulatorFeed
from repro.workloads.kernels import kernel_program
from repro.workloads.trace import DynOp


def program_sha256(program: Program) -> str:
    """Content hash of a program's architectural substance.

    Covers the instruction stream and initial data image — the two inputs
    that determine execution — and deliberately excludes labels and source
    text, so reformatting the assembly does not change identity.
    """
    payload = {
        "instructions": [
            [inst.opcode.name, inst.dest, list(inst.srcs), inst.imm, inst.target]
            for inst in program.instructions
        ],
        "data": {str(addr): value for addr, value in sorted(program.data.items())},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def capture_stream(
    stream: Iterable[DynOp],
    path: str | Path,
    *,
    name: str = "trace",
    limit: int | None = None,
    source: dict | None = None,
    program_hash: str | None = None,
) -> dict:
    """Write up to *limit* ops from *stream* to *path*; returns the header."""
    with TraceWriter(
        path, name=name, source=source, program_sha256=program_hash
    ) as writer:
        writer.extend(stream, limit=limit)
    return writer.header()


def capture_program(
    program: Program,
    path: str | Path,
    *,
    name: str = "program",
    limit: int | None = None,
    source: dict | None = None,
) -> dict:
    """Emulate *program* from entry and capture the committed stream."""
    return capture_stream(
        EmulatorFeed(program, name=name),
        path,
        name=name,
        limit=limit,
        source=source,
        program_hash=program_sha256(program),
    )


def capture_kernel(
    kernel: str,
    path: str | Path,
    *,
    name: str | None = None,
    limit: int | None = None,
    **kwargs,
) -> dict:
    """Capture one of the built-in kernels (``repro.workloads.kernels``)."""
    program = kernel_program(kernel, **kwargs)
    source = {"kind": "kernel", "kernel": kernel}
    if kwargs:
        source["kwargs"] = {key: kwargs[key] for key in sorted(kwargs)}
    return capture_program(
        program, path, name=name or kernel, limit=limit, source=source
    )
