"""The shipped trace corpus: named, reproducible real-workload traces.

Every entry is a kernel run captured to a tracefile under
``workloads/traces/`` (override with ``REPRO_TRACE_DIR``).  Capture is
byte-deterministic — the emulator is deterministic and the tracefile
format carries no timestamps — so ``scripts/make_corpus.py`` regenerates
the committed files bit-for-bit and CI verifies the corpus matches its
source.

Committed entries are sized around 60–110k dynamic instructions each:
long enough that sampled simulation is meaningfully cheaper than a full
run, small enough that the compressed files stay a few tens of KB.  The
``vector_sum_1m`` entry (≥1M instructions) is *not* committed; the CI
trace-smoke job captures it from source to prove the sampling accuracy
bound at scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.trace.capture import capture_kernel
from repro.trace.feed import TraceFeed, trace_info
from repro.trace.format import TraceFormatError, read_header


@dataclass(frozen=True)
class CorpusEntry:
    """One named corpus workload: a kernel and its capture parameters."""

    name: str
    kernel: str
    kwargs: dict = field(default_factory=dict)
    committed: bool = True
    note: str = ""


#: The corpus, in listing order.
CORPUS: tuple[CorpusEntry, ...] = (
    CorpusEntry(
        "vector_sum_80k", "vector_sum", {"n": 16_000},
        note="streaming loads, regular loop",
    ),
    CorpusEntry(
        "dotproduct_96k", "dotproduct", {"n": 12_000},
        note="two-source multiply-accumulate",
    ),
    CorpusEntry(
        "sieve_105k", "sieve", {"n": 5_000},
        note="nested loops, strided stores",
    ),
    CorpusEntry(
        "strsearch_76k", "strsearch", {"n": 4_000},
        note="data-dependent inner-loop exits",
    ),
    CorpusEntry(
        "hash_probe_71k", "hash_probe", {"n": 6_000},
        note="randomized table probes",
    ),
    CorpusEntry(
        "bubble_sort_104k", "bubble_sort", {"n": 160},
        note="quadratic compare/swap phases",
    ),
    CorpusEntry(
        "vector_sum_1m", "vector_sum", {"n": 200_000},
        committed=False,
        note="1M-instruction scale proof (captured by CI, not committed)",
    ),
)

CORPUS_BY_NAME: dict[str, CorpusEntry] = {entry.name: entry for entry in CORPUS}


def _repo_root() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").is_file():
            return parent
    return Path.cwd()


def corpus_dir() -> Path:
    """Where corpus tracefiles live (``REPRO_TRACE_DIR`` overrides)."""
    env = os.environ.get("REPRO_TRACE_DIR", "")
    if env:
        return Path(env)
    return _repo_root() / "workloads" / "traces"


def corpus_path(entry: CorpusEntry | str) -> Path:
    name = entry.name if isinstance(entry, CorpusEntry) else entry
    return corpus_dir() / f"{name}.hpt"


def capture_corpus_entry(entry: CorpusEntry, path: Path | None = None) -> dict:
    """(Re)capture one corpus entry; returns the tracefile header."""
    return capture_kernel(
        entry.kernel,
        path if path is not None else corpus_path(entry),
        name=entry.name,
        **entry.kwargs,
    )


def resolve_trace(ref: str) -> Path:
    """Resolve a trace reference — corpus name or filesystem path.

    Corpus names win over paths (they contain no separators or dots, so
    collisions cannot happen in practice).  A known corpus name whose file
    has not been captured yet gets a hint instead of a bare ENOENT.
    """
    entry = CORPUS_BY_NAME.get(ref)
    if entry is not None:
        path = corpus_path(entry)
        if not path.is_file():
            raise TraceFormatError(
                f"corpus trace {ref!r} is not captured at {path}; run "
                f"`repro trace capture {entry.kernel} --corpus {ref}` or "
                "scripts/make_corpus.py"
            )
        return path
    path = Path(ref)
    if not path.is_file():
        known = ", ".join(sorted(CORPUS_BY_NAME))
        raise TraceFormatError(
            f"{ref!r} is neither a corpus trace name nor a tracefile path "
            f"(corpus: {known})"
        )
    return path


def load_corpus_feed(ref: str, *, limit: int | None = None) -> TraceFeed:
    """TraceFeed for a corpus name or tracefile path."""
    return TraceFeed(resolve_trace(ref), limit=limit)


def corpus_listing() -> list[dict]:
    """One row per corpus entry for ``repro workloads`` (header-only I/O)."""
    rows = []
    for entry in CORPUS:
        path = corpus_path(entry)
        row = {
            "name": entry.name,
            "kernel": entry.kernel,
            "kwargs": dict(entry.kwargs),
            "committed": entry.committed,
            "note": entry.note,
            "path": str(path),
        }
        if path.is_file():
            try:
                info = trace_info(path)
            except TraceFormatError as error:
                row["error"] = str(error)
            else:
                row["insts"] = info["insts"]
                row["trace_sha256"] = info["trace_sha256"]
                row["bytes"] = info["bytes"]
        else:
            row["missing"] = True
        rows.append(row)
    return rows


def verify_corpus_entry(entry: CorpusEntry) -> bool:
    """Does the on-disk file exist and parse? (Header-level check.)"""
    path = corpus_path(entry)
    if not path.is_file():
        return False
    try:
        read_header(path)
    except TraceFormatError:
        return False
    return True
