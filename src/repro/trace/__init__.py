"""repro.trace — binary tracefile capture, replay and sampled simulation.

The trace subsystem turns long functional-emulator executions into
portable workloads:

* :mod:`repro.trace.format` — the versioned binary tracefile container
  (delta-encoded records, zlib chunks, per-chunk CRCs, self-describing
  header carrying the trace and program content hashes);
* :mod:`repro.trace.capture` — capture kernels/programs/streams to disk;
* :mod:`repro.trace.feed` — :class:`TraceFeed`, a first-class replay feed
  accepted by all three cycle-loop backends with bit-identical stats;
* :mod:`repro.trace.sampling` — SimPoint-style sampled simulation (BBV
  profiling, deterministic k-means, weighted IPC aggregation);
* :mod:`repro.trace.corpus` — the shipped named corpus under
  ``workloads/traces/``;
* :mod:`repro.trace.run` — cache-integrated full and sampled runs, keyed
  on trace content hashes (never paths).

See ``docs/TRACES.md`` for the format spec and workflow.
"""

from repro.trace.capture import (
    capture_kernel,
    capture_program,
    capture_stream,
    program_sha256,
)
from repro.trace.corpus import (
    CORPUS,
    CORPUS_BY_NAME,
    CorpusEntry,
    capture_corpus_entry,
    corpus_dir,
    corpus_listing,
    corpus_path,
    load_corpus_feed,
    resolve_trace,
)
from repro.trace.feed import TraceFeed, trace_info, trace_token
from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    isa_version,
    read_header,
)
from repro.trace.run import (
    run_full,
    run_sampled,
    sampled_fingerprint,
    trace_fingerprint,
)
from repro.trace.sampling import (
    DEFAULT_DIMS,
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_SAMPLE_SEED,
    DEFAULT_SAMPLE_WARMUP,
    kmeans,
    pick_representatives,
    profile_intervals,
    project_bbv,
    simulate_sampled,
)

__all__ = [
    "CORPUS",
    "CORPUS_BY_NAME",
    "CorpusEntry",
    "DEFAULT_DIMS",
    "DEFAULT_INTERVAL",
    "DEFAULT_K",
    "DEFAULT_SAMPLE_SEED",
    "DEFAULT_SAMPLE_WARMUP",
    "TRACE_FORMAT_VERSION",
    "TraceFeed",
    "TraceFormatError",
    "TraceReader",
    "TraceWriter",
    "capture_corpus_entry",
    "capture_kernel",
    "capture_program",
    "capture_stream",
    "corpus_dir",
    "corpus_listing",
    "corpus_path",
    "isa_version",
    "kmeans",
    "load_corpus_feed",
    "pick_representatives",
    "profile_intervals",
    "program_sha256",
    "project_bbv",
    "read_header",
    "resolve_trace",
    "run_full",
    "run_sampled",
    "sampled_fingerprint",
    "simulate_sampled",
    "trace_fingerprint",
    "trace_info",
    "trace_token",
]
