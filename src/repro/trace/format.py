"""Binary tracefile format for captured dynamic instruction streams.

A *tracefile* persists a long execution of the HPRISC functional emulator
(or any program-order :class:`~repro.workloads.trace.DynOp` stream) in a
compact, versioned, self-describing container so multi-million-instruction
workloads can be shipped, replayed and sampled without re-running the
emulator.  Layout::

    magic (8 bytes)  \x89 H P T \r \n \x1a \n
    u32  header length
    header            canonical JSON (sorted keys, utf-8)
    u32  CRC-32 of the header bytes
    chunk*            [u32 records][u32 raw len][u32 comp len][u32 CRC-32]
                      followed by `comp len` bytes of zlib data
    terminator        a chunk header of four zero words

The header carries everything a reader needs to interpret (or refuse) the
file without decoding a single record: ``format_version``, an
``isa_version`` digest of the opcode table the trace was encoded against,
the per-file opcode string table, the record count, the **program content
hash** (SHA-256 over the traced program's instructions and initial data)
and the **trace content hash** (SHA-256 over the uncompressed record
payload) — the digest the result cache keys file-backed workloads on, so
fingerprints follow content, never paths or mtimes.

Records are delta-encoded: PCs and memory addresses are zigzag-varint
deltas against the previous record, sequential ``next_pc`` collapses into
a flag bit, and register operands are single bytes.  Chunks are
independently zlib-compressed and CRC-checked, so a truncated or tampered
file is rejected with a one-line :class:`TraceFormatError` instead of
being replayed into garbage statistics.

Everything here is stdlib-only and byte-deterministic: capturing the same
workload twice produces identical files, which CI exploits to verify the
committed corpus is reproducible from source.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ReproError
from repro.isa.opcodes import OPCODE_BY_NAME
from repro.workloads.trace import DynOp

#: PNG-style magic: high bit guards 7-bit transports, CRLF/LF pairs guard
#: newline translation, ^Z stops accidental ``type`` on DOS-likes.
MAGIC = b"\x89HPT\r\n\x1a\n"

#: Bump when the container layout or record encoding changes shape.
TRACE_FORMAT_VERSION = 1

#: Records per compressed chunk (the seek/validate granularity).
DEFAULT_CHUNK_RECORDS = 16_384

#: Hard ceiling on the header blob — anything bigger is not one of ours.
_MAX_HEADER_BYTES = 1 << 20

_CHUNK_HEADER = struct.Struct("<IIII")

# Per-record flag bits.
_F_TAKEN = 0x01
_F_TWO_SRC_FMT = 0x02
_F_NOP = 0x04
_F_DEST = 0x08
_F_MEM = 0x10
_F_STORE_DATA = 0x20
_F_TARGET = 0x40
_F_SEQ = 0x80  # next_pc == pc + 1


class TraceFormatError(ReproError):
    """Raised on malformed, truncated or tampered tracefiles."""


def isa_version() -> str:
    """Digest of this build's opcode table (12 hex chars).

    Stamped into every header; a reader whose ISA lost an opcode the file
    uses refuses the file with a clear message rather than mis-decoding.
    """
    payload = ",".join(sorted(OPCODE_BY_NAME))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:12]


# ----------------------------------------------------------------------
# Varint primitives (LEB128 unsigned; zigzag for signed deltas).
# ----------------------------------------------------------------------
def _write_uv(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _write_sv(buf: bytearray, value: int) -> None:
    _write_uv(buf, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _read_uv(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TraceFormatError("record payload ends inside a varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _read_sv(data: bytes, pos: int) -> tuple[int, int]:
    raw, pos = _read_uv(data, pos)
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class TraceWriter:
    """Streaming tracefile writer.

    Records are delta-encoded into an in-memory chunk buffer; full chunks
    are compressed immediately, so memory holds one raw chunk plus the
    compressed stream (a few bytes per instruction).  The header — which
    needs the final record count and content hash — is written at
    :meth:`close`, and the whole file lands via an atomic rename so a
    crashed capture never leaves a half-written tracefile behind.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        name: str = "trace",
        source: dict | None = None,
        program_sha256: str | None = None,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ):
        if chunk_records < 1:
            raise TraceFormatError("chunk_records must be >= 1")
        self.path = Path(path)
        self.name = name
        self.source = source
        self.program_sha256 = program_sha256
        self.chunk_records = chunk_records
        self.count = 0
        self._buf = bytearray()
        self._in_chunk = 0
        self._chunks: list[tuple[int, int, bytes]] = []
        self._sha = hashlib.sha256()
        self._opcodes: list[str] = []
        self._opcode_index: dict[str, int] = {}
        self._prev_pc = 0
        self._prev_addr = 0
        self._closed = False

    # ------------------------------------------------------------------
    def append(self, op: DynOp) -> None:
        """Encode one dynamic instruction."""
        buf = self._buf
        flags = 0
        if op.taken:
            flags |= _F_TAKEN
        if op.is_two_source_format:
            flags |= _F_TWO_SRC_FMT
        if op.is_eliminated_nop:
            flags |= _F_NOP
        if op.dest is not None:
            flags |= _F_DEST
        if op.mem_addr is not None:
            flags |= _F_MEM
        if op.store_data_reg is not None:
            flags |= _F_STORE_DATA
        if op.static_target is not None:
            flags |= _F_TARGET
        if op.next_pc == op.pc + 1:
            flags |= _F_SEQ
        buf.append(flags)
        index = self._opcode_index.get(op.opcode)
        if index is None:
            index = self._opcode_index[op.opcode] = len(self._opcodes)
            self._opcodes.append(op.opcode)
        _write_uv(buf, index)
        _write_sv(buf, op.pc - self._prev_pc)
        self._prev_pc = op.pc
        if not flags & _F_SEQ:
            _write_sv(buf, op.next_pc - (op.pc + 1))
        if flags & _F_DEST:
            buf.append(op.dest)
        buf.append(len(op.srcs))
        buf.extend(op.srcs)
        buf.append(len(op.sched_deps))
        buf.extend(op.sched_deps)
        if flags & _F_STORE_DATA:
            buf.append(op.store_data_reg)
        if flags & _F_MEM:
            _write_sv(buf, op.mem_addr - self._prev_addr)
            self._prev_addr = op.mem_addr
        if flags & _F_TARGET:
            _write_sv(buf, op.static_target - op.pc)
        self.count += 1
        self._in_chunk += 1
        if self._in_chunk >= self.chunk_records:
            self._flush_chunk()

    def extend(self, ops: Iterable[DynOp], limit: int | None = None) -> int:
        """Append up to *limit* ops from *ops*; returns the count taken."""
        taken = 0
        for op in ops:
            if limit is not None and taken >= limit:
                break
            self.append(op)
            taken += 1
        return taken

    def _flush_chunk(self) -> None:
        if not self._buf:
            return
        raw = bytes(self._buf)
        self._sha.update(raw)
        self._chunks.append((self._in_chunk, len(raw), zlib.compress(raw, 6)))
        self._buf.clear()
        self._in_chunk = 0

    # ------------------------------------------------------------------
    def header(self) -> dict:
        """The header as it will be (or was) written."""
        return {
            "format": "repro-tracefile",
            "format_version": TRACE_FORMAT_VERSION,
            "isa_version": isa_version(),
            "name": self.name,
            "insts": self.count,
            "trace_sha256": self._sha.hexdigest(),
            "program_sha256": self.program_sha256,
            "source": self.source,
            "chunk_records": self.chunk_records,
            "opcodes": list(self._opcodes),
        }

    def close(self) -> dict:
        """Flush, write the file atomically, and return the header."""
        if self._closed:
            raise TraceFormatError("writer is already closed")
        self._flush_chunk()
        self._closed = True
        header = self.header()
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        temp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(temp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack("<I", len(blob)))
            handle.write(blob)
            handle.write(struct.pack("<I", zlib.crc32(blob)))
            for records, raw_len, comp in self._chunks:
                handle.write(_CHUNK_HEADER.pack(records, raw_len, len(comp), zlib.crc32(comp)))
                handle.write(comp)
            handle.write(_CHUNK_HEADER.pack(0, 0, 0, 0))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        return header

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:  # leave no temp droppings behind a failed capture
            self.path.with_name(self.path.name + ".tmp").unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
def _read_exact(handle, n: int, path: Path, what: str) -> bytes:
    data = handle.read(n)
    if len(data) != n:
        raise TraceFormatError(f"{path}: truncated tracefile ({what})")
    return data


def read_header(path: str | Path) -> dict:
    """Read and validate only the header (cheap: no record decoding).

    This is what fingerprinting, ``repro workloads`` and ``repro trace
    info`` call — listing a corpus never decompresses a chunk.
    """
    path = Path(path)
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise TraceFormatError(f"{path}: {error.strerror or error}") from None
    with handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceFormatError(f"{path}: not a repro tracefile (bad magic)")
        (length,) = struct.unpack("<I", _read_exact(handle, 4, path, "header length"))
        if length > _MAX_HEADER_BYTES:
            raise TraceFormatError(f"{path}: implausible header length {length}")
        blob = _read_exact(handle, length, path, "header")
        (crc,) = struct.unpack("<I", _read_exact(handle, 4, path, "header checksum"))
        if zlib.crc32(blob) != crc:
            raise TraceFormatError(f"{path}: header checksum mismatch (corrupt file)")
        try:
            header = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise TraceFormatError(f"{path}: header is not valid JSON") from None
    if not isinstance(header, dict) or header.get("format") != "repro-tracefile":
        raise TraceFormatError(f"{path}: not a repro tracefile header")
    version = header.get("format_version")
    if version != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: tracefile format version {version!r} "
            f"(this build reads {TRACE_FORMAT_VERSION})"
        )
    for key in ("name", "insts", "trace_sha256", "opcodes", "chunk_records"):
        if key not in header:
            raise TraceFormatError(f"{path}: header is missing {key!r}")
    unknown = [m for m in header["opcodes"] if m not in OPCODE_BY_NAME]
    if unknown:
        raise TraceFormatError(
            f"{path}: trace uses opcode(s) unknown to this ISA build: {', '.join(unknown)}"
        )
    return header


class TraceReader:
    """Decode a tracefile back into :class:`DynOp` records.

    Iterating yields ops with dense program-order ``seq`` numbers.  Every
    chunk's CRC is verified before decompression and the running content
    hash is verified against the header at end-of-stream, so a bit flip
    anywhere in the body surfaces as one :class:`TraceFormatError` line.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.header = read_header(self.path)

    def __iter__(self) -> Iterator[DynOp]:
        return self.ops()

    def ops(self, limit: int | None = None) -> Iterator[DynOp]:
        header = self.header
        op_infos = [OPCODE_BY_NAME[name] for name in header["opcodes"]]
        op_names = header["opcodes"]
        sha = hashlib.sha256()
        seq = 0
        prev_pc = 0
        prev_addr = 0
        with open(self.path, "rb") as handle:
            # Skip the already-validated header.
            handle.seek(len(MAGIC))
            (length,) = struct.unpack("<I", handle.read(4))
            handle.seek(len(MAGIC) + 4 + length + 4)
            chunk_number = 0
            while True:
                raw_header = _read_exact(handle, _CHUNK_HEADER.size, self.path, "chunk header")
                records, raw_len, comp_len, crc = _CHUNK_HEADER.unpack(raw_header)
                if records == 0 and raw_len == 0 and comp_len == 0 and crc == 0:
                    if handle.read(1):
                        raise TraceFormatError(
                            f"{self.path}: data after the terminator chunk"
                        )
                    break
                chunk_number += 1
                comp = _read_exact(handle, comp_len, self.path, f"chunk {chunk_number}")
                if zlib.crc32(comp) != crc:
                    raise TraceFormatError(
                        f"{self.path}: chunk {chunk_number} CRC mismatch (corrupt or tampered)"
                    )
                try:
                    raw = zlib.decompress(comp)
                except zlib.error:
                    raise TraceFormatError(
                        f"{self.path}: chunk {chunk_number} does not decompress"
                    ) from None
                if len(raw) != raw_len:
                    raise TraceFormatError(
                        f"{self.path}: chunk {chunk_number} length mismatch"
                    )
                sha.update(raw)
                pos = 0
                for _ in range(records):
                    if pos >= len(raw):
                        raise TraceFormatError(
                            f"{self.path}: chunk {chunk_number} ends mid-record"
                        )
                    try:
                        op, pos, prev_pc, prev_addr = _decode_record(
                            raw, pos, seq, prev_pc, prev_addr, op_infos, op_names
                        )
                    except IndexError:
                        raise TraceFormatError(
                            f"{self.path}: chunk {chunk_number} ends mid-record"
                        ) from None
                    yield op
                    seq += 1
                    if limit is not None and seq >= limit:
                        return
                if pos != len(raw):
                    raise TraceFormatError(
                        f"{self.path}: chunk {chunk_number} has trailing garbage"
                    )
        if seq != header["insts"]:
            raise TraceFormatError(
                f"{self.path}: header promises {header['insts']} records, found {seq}"
            )
        if sha.hexdigest() != header["trace_sha256"]:
            raise TraceFormatError(f"{self.path}: trace content hash mismatch (tampered body)")


def _decode_record(raw, pos, seq, prev_pc, prev_addr, op_infos, op_names):
    flags = raw[pos]
    pos += 1
    op_index, pos = _read_uv(raw, pos)
    if op_index >= len(op_infos):
        raise TraceFormatError(f"record {seq}: opcode index {op_index} out of table")
    delta, pos = _read_sv(raw, pos)
    pc = prev_pc + delta
    if flags & _F_SEQ:
        next_pc = pc + 1
    else:
        delta, pos = _read_sv(raw, pos)
        next_pc = pc + 1 + delta
    dest = None
    if flags & _F_DEST:
        dest = raw[pos]
        pos += 1
    n = raw[pos]
    pos += 1
    srcs = tuple(raw[pos : pos + n])
    if len(srcs) != n:
        raise IndexError
    pos += n
    n = raw[pos]
    pos += 1
    deps = tuple(raw[pos : pos + n])
    if len(deps) != n:
        raise IndexError
    pos += n
    store_data = None
    if flags & _F_STORE_DATA:
        store_data = raw[pos]
        pos += 1
    mem_addr = None
    if flags & _F_MEM:
        delta, pos = _read_sv(raw, pos)
        mem_addr = prev_addr + delta
        prev_addr = mem_addr
    target = None
    if flags & _F_TARGET:
        delta, pos = _read_sv(raw, pos)
        target = pc + delta
    op = DynOp(
        seq=seq,
        pc=pc,
        opcode=op_names[op_index],
        op_class=op_infos[op_index].op_class,
        dest=dest,
        srcs=srcs,
        sched_deps=deps,
        store_data_reg=store_data,
        mem_addr=mem_addr,
        taken=bool(flags & _F_TAKEN),
        next_pc=next_pc,
        static_target=target,
        is_two_source_format=bool(flags & _F_TWO_SRC_FMT),
        is_eliminated_nop=bool(flags & _F_NOP),
    )
    return op, pos, pc, prev_addr
