"""Cached trace-run orchestration (full and sampled).

Trace workloads flow through the same content-addressed result store as
benchmark runs, with one deliberate difference in identity: the
fingerprint's workload component is ``tracefile:<trace_sha256>`` — the
*content hash* from the tracefile header — never a filesystem path or
mtime.  Copy a tracefile, re-capture it deterministically, or serve it
from a different worker's checkout: the cache key is identical.  The
``seed`` slot is pinned to 0 (a trace is already a fixed instruction
sequence; there is nothing to reseed).

Full runs reuse the :class:`~repro.analysis.cache.ResultCache` record
format unchanged.  Sampled runs produce a *report* (weights, per-sample
IPCs, coverage) rather than a ``SimulationResult``, so they are published
to the same store as a distinct self-checksummed record kind.
"""

from __future__ import annotations

from repro.analysis.cache import ResultCache, fingerprint, record_checksum
from repro.fastsim import make_processor
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import TIMING_MODEL_VERSION, SimulationResult
from repro.trace.feed import TraceFeed, trace_token
from repro.trace.sampling import (
    DEFAULT_DIMS,
    DEFAULT_INTERVAL,
    DEFAULT_K,
    DEFAULT_SAMPLE_SEED,
    DEFAULT_SAMPLE_WARMUP,
    SAMPLING_REPORT_VERSION,
    simulate_sampled,
)

#: The seed slot of trace fingerprints (a trace has no workload seed).
TRACE_SEED = 0

#: Per-round wait for another process's publication (mirrors the runner).
CLAIM_WAIT_S = 20.0


def trace_fingerprint(
    content_hash: str,
    config: MachineConfig,
    *,
    insts: int | None = None,
    warmup: int = 0,
    shadow_sizes: tuple[int, ...] | None = None,
) -> str:
    """Cache fingerprint for a full trace run.

    ``insts=None`` means "the whole trace" and is encoded as 0 — the
    fingerprint is computable from the wire spec alone, without opening
    the file to learn its length.
    """
    return fingerprint(
        trace_token(content_hash),
        TRACE_SEED,
        insts if insts is not None else 0,
        warmup,
        config,
        shadow_sizes,
    )


def _cache_identity(
    feed: TraceFeed,
    config: MachineConfig,
    insts: int | None,
    warmup: int,
    shadow_sizes: tuple[int, ...] | None,
) -> tuple:
    return (
        trace_token(feed.content_hash),
        TRACE_SEED,
        insts if insts is not None else 0,
        warmup,
        config,
        shadow_sizes,
    )


def _wait_seconds(cache: ResultCache) -> float:
    stale = getattr(cache.backend, "claim_stale_s", None)
    wait_s = CLAIM_WAIT_S
    if isinstance(stale, (int, float)):
        wait_s = max(0.1, min(wait_s, float(stale)))
    return wait_s


def run_full(
    feed: TraceFeed,
    config: MachineConfig,
    *,
    insts: int | None = None,
    warmup: int = 0,
    shadow_sizes: tuple[int, ...] | None = None,
    cache: ResultCache | None = None,
) -> SimulationResult:
    """Simulate a trace end to end, through the result cache.

    Same load → claim → simulate → publish loop as the benchmark runner:
    among processes sharing the store, exactly one simulates a given
    fingerprint, the rest wait for the published blob.  ``config.backend``
    must already be materialized (call ``apply_backend`` at the boundary).
    """
    run = _cache_identity(feed, config, insts, warmup, shadow_sizes)
    claim = None
    if cache is not None:
        wait_s = _wait_seconds(cache)
        while True:
            found = cache.load(*run)
            if found is not None:
                return found
            claim = cache.claim(*run)
            if claim is not None:
                break
            cache.wait_published(*run, timeout=wait_s)
    try:
        processor = make_processor(
            feed, config, backend=config.backend, shadow_sizes=shadow_sizes
        )
        limit = insts if insts is not None else len(feed.ops)
        result = processor.run(max_insts=limit, warmup=warmup)
        if cache is not None:
            cache.store(*run, result)
    finally:
        if claim is not None:
            claim.release()
    return result


# ----------------------------------------------------------------------
# Sampled runs: report records on the same store
# ----------------------------------------------------------------------
def sampled_fingerprint(
    content_hash: str,
    config: MachineConfig,
    *,
    interval: int = DEFAULT_INTERVAL,
    k: int = DEFAULT_K,
    warmup: int = DEFAULT_SAMPLE_WARMUP,
    dims: int = DEFAULT_DIMS,
    seed: int = DEFAULT_SAMPLE_SEED,
    warm_caches: bool = True,
    shadow_sizes: tuple[int, ...] | None = None,
) -> str:
    """Fingerprint for a sampled run's report record.

    Rides the shared :func:`~repro.analysis.cache.fingerprint` by packing
    the sampling plan into the workload-identity string (the plan changes
    the answer, so it must change the key) and the clustering seed into
    the seed slot.
    """
    token = (
        f"{trace_token(content_hash)}"
        f"#sampled:v{SAMPLING_REPORT_VERSION}:i{interval}:k{k}:w{warmup}:d{dims}"
        f":c{1 if warm_caches else 0}"
    )
    return fingerprint(token, seed, 0, warmup, config, shadow_sizes)


def run_sampled(
    feed: TraceFeed,
    config: MachineConfig,
    *,
    interval: int = DEFAULT_INTERVAL,
    k: int = DEFAULT_K,
    warmup: int = DEFAULT_SAMPLE_WARMUP,
    dims: int = DEFAULT_DIMS,
    seed: int = DEFAULT_SAMPLE_SEED,
    warm_caches: bool = True,
    shadow_sizes: tuple[int, ...] | None = None,
    cache: ResultCache | None = None,
) -> dict:
    """Sampled simulation through the result store (report-record kind)."""
    digest = sampled_fingerprint(
        feed.content_hash,
        config,
        interval=interval,
        k=k,
        warmup=warmup,
        dims=dims,
        seed=seed,
        warm_caches=warm_caches,
        shadow_sizes=shadow_sizes,
    )
    claim = None
    if cache is not None:
        wait_s = _wait_seconds(cache)
        while True:
            record = cache.backend.get(digest)
            if record is not None:
                if (
                    record.get("kind") == "trace-sampled"
                    and record.get("fingerprint") == digest
                    and record.get("checksum") == record_checksum(record)
                ):
                    return record["report"]
                record = None  # corrupt/foreign record: recompute
            claim = cache.backend.claim(digest)
            if claim is not None:
                break
            cache.backend.wait(digest, wait_s)
    try:
        report = simulate_sampled(
            feed,
            config,
            interval=interval,
            k=k,
            warmup=warmup,
            dims=dims,
            seed=seed,
            warm_caches=warm_caches,
            shadow_sizes=shadow_sizes,
        )
        if cache is not None:
            record = {
                "kind": "trace-sampled",
                "fingerprint": digest,
                "model_version": TIMING_MODEL_VERSION,
                "report": report,
            }
            record["checksum"] = record_checksum(record)
            cache.backend.put(digest, record)
    finally:
        if claim is not None:
            claim.release()
    return report
