"""SimPoint-style sampled simulation over binary tracefiles.

Long traces are split into fixed-size instruction intervals; each interval
is summarized by a *basic-block vector* (BBV) — how many instructions it
spent in each basic block — hashed down to a fixed number of dimensions
and L1-normalized.  K-means clustering groups intervals with similar BBVs,
one representative interval per cluster (the one closest to its centroid)
is simulated in detail behind a warmup window, and per-cluster CPIs are
combined weighted by cluster size:

    weighted CPI = Σᵢ wᵢ · CPIᵢ        weighted IPC = 1 / weighted CPI

(CPI, not IPC, is averaged: CPI is additive in cycles per instruction, so
weighting CPIs by instruction share reproduces the full-trace ratio.)

This is the methodology of Sherwood et al.'s SimPoint adapted to this
repo's feeds: pure stdlib (hashed projection instead of their random
linear projection, deterministic seeded k-means++), byte-deterministic
reports, and representative windows replayed through any of the three
cycle-loop backends.

**Cache-state reconstruction.**  A short timing warmup cannot rebuild a
large cache working set: a phase that re-reads an array written megabytes
of instructions earlier hits DL1 in the full run but misses to memory in
a cold window, skewing window IPC by 3× on workloads like ``sieve`` and
``strsearch``.  Before each representative window, the sampler therefore
prepends synthetic, dependence-free load ops that replay the prefix's
*distinct data-cache lines in last-access order* (the MRRL idea: for true
LRU, last-access order reproduces the per-set recency stacks exactly).
These run inside the discarded warmup, need no backend support — they
are ordinary feed ops, so the C engine warms identically — and recover
cold-window error from ~47% to <1% on the shipped corpus.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

from repro.errors import ConfigurationError
from repro.fastsim import make_processor
from repro.isa.opcodes import OPCODE_BY_NAME
from repro.pipeline.config import MachineConfig
from repro.trace.feed import TraceFeed, _reseq
from repro.workloads.feed import ReplayFeed
from repro.workloads.trace import DynOp

DEFAULT_INTERVAL = 10_000
DEFAULT_DIMS = 32
DEFAULT_K = 8
DEFAULT_SAMPLE_WARMUP = 2_000
DEFAULT_SAMPLE_SEED = 1
_KMEANS_MAX_ITERS = 50

#: Schema version of the sampling report (bump on shape changes).
SAMPLING_REPORT_VERSION = 1


# ----------------------------------------------------------------------
# Basic-block-vector profiling
# ----------------------------------------------------------------------
def profile_intervals(
    ops: Sequence[DynOp], interval: int
) -> tuple[list[dict[int, int]], list[int]]:
    """Per-interval basic-block vectors and instruction counts.

    A basic block is keyed by its leader PC; every instruction in the block
    credits the leader, so block counts are implicitly weighted by block
    length (the SimPoint convention).  A block ends at any control-flow
    instruction or non-sequential ``next_pc``; the final interval may be
    partial.
    """
    if interval < 1:
        raise ConfigurationError("sampling interval must be >= 1")
    vectors: list[dict[int, int]] = []
    counts: list[int] = []
    bbv: dict[int, int] = {}
    in_interval = 0
    leader: int | None = None
    for op in ops:
        if leader is None:
            leader = op.pc
        bbv[leader] = bbv.get(leader, 0) + 1
        in_interval += 1
        if op.is_control or op.next_pc != op.pc + 1:
            leader = None
        elif leader is not None:
            leader = op.next_pc
        if in_interval >= interval:
            vectors.append(bbv)
            counts.append(in_interval)
            bbv = {}
            in_interval = 0
            leader = None  # next op starts a fresh block attribution
    if in_interval:
        vectors.append(bbv)
        counts.append(in_interval)
    return vectors, counts


def project_bbv(bbv: dict[int, int], dims: int) -> list[float]:
    """Hash a sparse BBV into *dims* signed buckets, L1-normalized.

    Deterministic stand-in for SimPoint's random linear projection: the
    bucket and sign both derive from a CRC-32 of the leader PC, so the same
    trace always maps to the same vector on every platform.
    """
    out = [0.0] * dims
    total = 0
    for leader, count in bbv.items():
        digest = zlib.crc32(struct.pack("<q", leader))
        sign = 1.0 if digest & 0x10000 else -1.0
        out[digest % dims] += sign * count
        total += count
    if total:
        out = [value / total for value in out]
    return out


# ----------------------------------------------------------------------
# Deterministic k-means
# ----------------------------------------------------------------------
def _sq_dist(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def kmeans(
    points: Sequence[Sequence[float]], k: int, seed: int
) -> tuple[list[list[float]], list[int]]:
    """Seeded k-means++ with Lloyd refinement; returns (centroids, labels).

    Fully deterministic for a given ``(points, k, seed)``: initialization
    uses ``random.Random(seed)``, and all ties break toward the lower
    index.  Sized for sampling workloads (hundreds of points, tens of
    dims) — plain python is plenty.
    """
    import random

    if not points:
        raise ConfigurationError("kmeans needs at least one point")
    k = min(k, len(points))
    rng = random.Random(seed)
    # k-means++ seeding: first centre uniform, then proportional to D².
    centroids = [list(points[rng.randrange(len(points))])]
    dists = [_sq_dist(p, centroids[0]) for p in points]
    while len(centroids) < k:
        total = sum(dists)
        if total <= 0.0:
            # all remaining points coincide with a centre; pick any
            index = rng.randrange(len(points))
        else:
            pick = rng.random() * total
            acc = 0.0
            index = len(points) - 1
            for i, d in enumerate(dists):
                acc += d
                if acc >= pick:
                    index = i
                    break
        centroids.append(list(points[index]))
        dists = [min(d, _sq_dist(p, centroids[-1])) for d, p in zip(dists, points)]
    labels = [0] * len(points)
    for _ in range(_KMEANS_MAX_ITERS):
        moved = False
        for i, point in enumerate(points):
            best = min(
                range(len(centroids)), key=lambda c: (_sq_dist(point, centroids[c]), c)
            )
            if best != labels[i]:
                labels[i] = best
                moved = True
        fresh: list[list[float]] = []
        for c in range(len(centroids)):
            members = [points[i] for i in range(len(points)) if labels[i] == c]
            if not members:
                fresh.append(centroids[c])
                continue
            dims = len(members[0])
            fresh.append(
                [sum(m[d] for m in members) / len(members) for d in range(dims)]
            )
        centroids = fresh
        if not moved:
            break
    return centroids, labels


def pick_representatives(
    points: Sequence[Sequence[float]],
    counts: Sequence[int],
    k: int,
    seed: int,
) -> list[tuple[int, float]]:
    """Choose representative intervals and their weights.

    Returns ``[(interval_index, weight), ...]`` sorted by interval index;
    the representative of each cluster is the member closest to the
    centroid (lowest index on ties) and its weight is the cluster's share
    of total instructions.
    """
    centroids, labels = kmeans(points, k, seed)
    total = sum(counts)
    reps: list[tuple[int, float]] = []
    for c in range(len(centroids)):
        members = [i for i in range(len(points)) if labels[i] == c]
        if not members:
            continue
        rep = min(members, key=lambda i: (_sq_dist(points[i], centroids[c]), i))
        weight = sum(counts[i] for i in members) / total
        reps.append((rep, weight))
    reps.sort()
    return reps


# ----------------------------------------------------------------------
# Cache-state reconstruction (MRRL-style warming)
# ----------------------------------------------------------------------
def warming_ops(
    ops: Sequence[DynOp], prefix_len: int, line_bytes: int, max_lines: int
) -> list[DynOp]:
    """Synthetic loads that rebuild the data-cache state of a trace prefix.

    Scans ``ops[:prefix_len]`` for data accesses, keeps the last access to
    each *line_bytes*-aligned line, and emits one dependence-free load per
    line in last-access order (capped to the *max_lines* most recent — any
    older line cannot survive in the hierarchy anyway).  Replaying these
    through the timing model inside the warmup window reconstructs true-LRU
    per-set recency stacks exactly; each op carries the PC of the access it
    stands in for, so the instruction cache picks up incidental warmth too.
    """
    shift = line_bytes.bit_length() - 1
    last: dict[int, int] = {}
    pcs: dict[int, int] = {}
    for index in range(min(prefix_len, len(ops))):
        addr = ops[index].mem_addr
        if addr is not None:
            line = addr >> shift
            last[line] = index
            pcs[line] = ops[index].pc
    recent = sorted(last, key=last.__getitem__)[-max_lines:]
    load = OPCODE_BY_NAME["LDQ"]
    return [
        DynOp(
            seq=0,  # re-sequenced when the window is assembled
            pc=pcs[line],
            opcode="LDQ",
            op_class=load.op_class,
            mem_addr=line << shift,
        )
        for line in recent
    ]


def _warming_capacity(mem) -> tuple[int, int]:
    """(line_bytes, max_lines) for warming, from the hierarchy geometry.

    Lines are deduplicated at DL1 granularity; the cap is the DL1 line
    count plus the L2 capacity expressed in DL1-sized lines — nothing
    older can be resident anywhere.
    """
    line_bytes = mem.dl1.line_bytes
    dl1_lines = mem.dl1.size_bytes // line_bytes
    l2_lines = mem.l2.size_bytes // line_bytes
    return line_bytes, dl1_lines + l2_lines


# ----------------------------------------------------------------------
# Sampled simulation
# ----------------------------------------------------------------------
def simulate_sampled(
    feed: TraceFeed,
    config: MachineConfig,
    *,
    interval: int = DEFAULT_INTERVAL,
    k: int = DEFAULT_K,
    warmup: int = DEFAULT_SAMPLE_WARMUP,
    dims: int = DEFAULT_DIMS,
    seed: int = DEFAULT_SAMPLE_SEED,
    warm_caches: bool = True,
    shadow_sizes: tuple[int, ...] | None = None,
) -> dict:
    """Sampled simulation of a trace; returns the sampling report dict.

    Profiles BBVs over fixed *interval*-instruction windows, clusters them
    into at most *k* groups, simulates one representative window per group
    (behind up to *warmup* replayed warmup instructions plus, with
    *warm_caches*, the cache-state reconstruction loads) on the backend
    already materialized in ``config.backend``, and aggregates a weighted
    IPC.  The report is deterministic for fixed inputs.
    """
    ops = feed.ops
    if not ops:
        raise ConfigurationError("cannot sample an empty trace")
    vectors, counts = profile_intervals(ops, interval)
    points = [project_bbv(v, dims) for v in vectors]
    reps = pick_representatives(points, counts, k, seed)
    line_bytes, max_lines = _warming_capacity(config.mem)
    samples = []
    simulated = 0
    weighted_cpi = 0.0
    for index, weight in reps:
        start = index * interval
        end = start + counts[index]
        warm = min(warmup, start)
        warming: list[DynOp] = []
        if warm_caches and start > warm:
            warming = warming_ops(ops, start - warm, line_bytes, max_lines)
        window = _window_feed(feed, warming, start - warm, end)
        simulated += len(window)
        processor = make_processor(
            window, config, backend=config.backend, shadow_sizes=shadow_sizes
        )
        result = processor.run(max_insts=end - start, warmup=warm + len(warming))
        ipc = result.stats.ipc
        weighted_cpi += weight * (1.0 / ipc)
        samples.append(
            {
                "interval": index,
                "start": start,
                "end": end,
                "warmup": warm,
                "warming_insts": len(warming),
                "weight": round(weight, 12),
                "committed": result.total_committed,
                "cycles": result.total_cycles,
                "ipc": round(ipc, 12),
            }
        )
    total = len(ops)
    return {
        "report_version": SAMPLING_REPORT_VERSION,
        "trace": feed.name,
        "content_hash": feed.content_hash,
        "config": config.name,
        "backend": config.backend,
        "insts": total,
        "interval": interval,
        "k": k,
        "dims": dims,
        "seed": seed,
        "sample_warmup": warmup,
        "warm_caches": warm_caches,
        "intervals": len(vectors),
        "clusters": len(reps),
        "samples": samples,
        "simulated_insts": simulated,
        "coverage": round(simulated / total, 12),
        "weighted_cpi": round(weighted_cpi, 12),
        "weighted_ipc": round(1.0 / weighted_cpi, 12),
    }


def _window_feed(feed: TraceFeed, warming: list[DynOp], start: int, end: int):
    """One representative window: warming loads + the re-sequenced slice."""
    merged = warming + feed.ops[max(0, start) : end]
    window = [_reseq(op, seq) for seq, op in enumerate(merged)]
    return ReplayFeed(
        window, name=f"{feed.name}[{start}:{end}]", pc_address=feed.pc_address
    )
