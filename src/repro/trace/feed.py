"""TraceFeed: replay a binary tracefile as a first-class simulator feed.

A :class:`TraceFeed` is a :class:`~repro.workloads.feed.ReplayFeed` whose
ops come from a tracefile on disk, so it flows through all three cycle-loop
backends (python/vector/native) unchanged — the vector and native engines
pick up the materialized ``ops`` list and cached ``columns()`` exactly as
they do for any replay feed, and stats come out bit-identical.

Identity is the header's ``trace_sha256`` content hash: cache fingerprints
and serve-job routing key on :attr:`content_hash`, never on the filesystem
path or mtime, so copying or re-capturing a trace hits the same cache
entries.
"""

from __future__ import annotations

from pathlib import Path

from repro.isa.assembler import INSTRUCTION_BYTES
from repro.trace.format import TraceReader, read_header
from repro.workloads.feed import ReplayFeed
from repro.workloads.trace import DynOp


class TraceFeed(ReplayFeed):
    """A tracefile materialized for simulation.

    Loading decodes and verifies the whole file (chunk CRCs plus the
    end-of-stream content hash), so a feed that constructs at all is known
    good.  ``limit`` truncates the load for quick looks; note a truncated
    load cannot verify the trailing content hash, so it skips straight to
    the per-chunk CRCs.
    """

    def __init__(self, path: str | Path, *, limit: int | None = None):
        self.path = Path(path)
        reader = TraceReader(self.path)
        self.header = reader.header
        self.content_hash: str = self.header["trace_sha256"]
        if limit is not None and limit < self.header["insts"]:
            ops = list(reader.ops(limit=limit))
        else:
            ops = list(reader.ops())
        super().__init__(ops, name=self.header["name"])

    # Traced PCs are static instruction ids, same as EmulatorFeed's; the
    # instruction-cache model needs byte addresses.
    def pc_address(self, pc: int) -> int:
        return pc * INSTRUCTION_BYTES

    def token(self) -> str:
        """Cache identity for this workload (content hash, not path)."""
        return trace_token(self.content_hash)

    def slice(self, start: int, stop: int, *, name: str | None = None) -> ReplayFeed:
        """A re-sequenced window [start, stop) as an independent feed.

        The backends' column decoder requires ``op.seq`` to equal stream
        position, so sliced ops are cloned with dense seq numbers rather
        than aliased.
        """
        start = max(0, start)
        stop = min(stop, len(self.ops))
        window = [_reseq(op, seq) for seq, op in enumerate(self.ops[start:stop])]
        feed = ReplayFeed(
            window,
            name=name or f"{self.name}[{start}:{stop}]",
            pc_address=self.pc_address,
        )
        return feed


def trace_token(content_hash: str) -> str:
    """The benchmark-identity string for a trace workload."""
    return f"tracefile:{content_hash}"


def _reseq(op: DynOp, seq: int) -> DynOp:
    return DynOp(
        seq=seq,
        pc=op.pc,
        opcode=op.opcode,
        op_class=op.op_class,
        dest=op.dest,
        srcs=op.srcs,
        sched_deps=op.sched_deps,
        store_data_reg=op.store_data_reg,
        mem_addr=op.mem_addr,
        taken=op.taken,
        next_pc=op.next_pc,
        static_target=op.static_target,
        is_two_source_format=op.is_two_source_format,
        is_eliminated_nop=op.is_eliminated_nop,
    )


def trace_info(path: str | Path) -> dict:
    """Header plus file facts for listings (no record decoding)."""
    path = Path(path)
    header = read_header(path)
    return {
        "path": str(path),
        "name": header["name"],
        "insts": header["insts"],
        "trace_sha256": header["trace_sha256"],
        "program_sha256": header.get("program_sha256"),
        "isa_version": header["isa_version"],
        "format_version": header["format_version"],
        "source": header.get("source"),
        "bytes": path.stat().st_size,
    }
