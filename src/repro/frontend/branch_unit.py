"""Branch unit: ties direction predictor, BTB and RAS into one facade.

The timing simulator calls :meth:`BranchUnit.predict` at fetch time and
:meth:`BranchUnit.resolve` when the branch executes.  PCs are instruction
indices (the feed's PC space).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.direction import CombinedPredictor
from repro.frontend.ras import ReturnAddressStack


@dataclass(frozen=True)
class BranchPrediction:
    """Front-end prediction for one control instruction."""

    predicted_taken: bool
    predicted_target: int | None

    def next_pc(self, fallthrough: int) -> int | None:
        """The PC fetch would redirect to (None = unknown target)."""
        if not self.predicted_taken:
            return fallthrough
        return self.predicted_target


class BranchUnit:
    """Combined direction predictor + BTB + RAS (Table 1 configuration)."""

    def __init__(
        self,
        direction: CombinedPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
        ras: ReturnAddressStack | None = None,
    ):
        self.direction = direction or CombinedPredictor()
        self.btb = btb or BranchTargetBuffer()
        self.ras = ras or ReturnAddressStack()
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    def predict(
        self, pc: int, opcode_name: str, static_target: int | None
    ) -> BranchPrediction:
        """Predict direction and target for the control instruction at *pc*.

        ``static_target`` is the decode-time target of direct branches
        (None for register-indirect control flow).
        """
        if opcode_name == "BR":
            return BranchPrediction(True, static_target)
        if opcode_name in ("BEQ", "BNE", "BLT", "BGE"):
            taken = self.direction.predict(pc)
            return BranchPrediction(taken, static_target)
        if opcode_name == "JSR":
            self.ras.push(pc + 1)
            return BranchPrediction(True, self.btb.lookup(pc))
        if opcode_name == "RET":
            target = self.ras.pop()
            if target is None:
                target = self.btb.lookup(pc)
            return BranchPrediction(True, target)
        # JMP and anything else register-indirect: BTB only.
        return BranchPrediction(True, self.btb.lookup(pc))

    def resolve(
        self,
        pc: int,
        opcode_name: str,
        prediction: BranchPrediction,
        actual_taken: bool,
        actual_next_pc: int,
        fallthrough: int,
    ) -> bool:
        """Train predictors with the actual outcome; return True on mispredict."""
        self.predictions += 1
        if opcode_name in ("BEQ", "BNE", "BLT", "BGE"):
            self.direction.update(pc, actual_taken)
        if actual_taken and opcode_name not in ("BEQ", "BNE", "BLT", "BGE", "BR"):
            self.btb.install(pc, actual_next_pc)
        mispredicted = prediction.next_pc(fallthrough) != actual_next_pc
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
