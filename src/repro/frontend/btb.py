"""Branch target buffer: a small set-associative cache of branch targets."""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


class BranchTargetBuffer:
    """Set-associative, LRU-replaced PC -> target map (Table 1: 1k 4-way)."""

    def __init__(self, entries: int = 1024, associativity: int = 4):
        if entries <= 0 or associativity <= 0 or entries % associativity:
            raise ConfigurationError("BTB entries must divide by associativity")
        num_sets = entries // associativity
        if num_sets & (num_sets - 1):
            raise ConfigurationError("BTB set count must be a power of two")
        self.entries = entries
        self.associativity = associativity
        self._set_mask = num_sets - 1
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(num_sets)
        ]
        self.lookups = 0
        self.hits = 0

    def lookup(self, pc: int) -> int | None:
        """Return the stored target for *pc*, or None on a BTB miss."""
        self.lookups += 1
        btb_set = self._sets[pc & self._set_mask]
        target = btb_set.get(pc)
        if target is not None:
            self.hits += 1
            btb_set.move_to_end(pc)
        return target

    def install(self, pc: int, target: int) -> None:
        """Record that the branch at *pc* last went to *target*."""
        btb_set = self._sets[pc & self._set_mask]
        if pc not in btb_set and len(btb_set) >= self.associativity:
            btb_set.popitem(last=False)
        btb_set[pc] = target
        btb_set.move_to_end(pc)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
